//! # pcb — Probabilistic Causal Message Ordering
//!
//! A full reproduction of *"A Probabilistic Causal Message Ordering
//! Mechanism"* (Achour Mostefaoui & Stéphane Weiss, PaCT 2017): a causal
//! broadcast whose timestamps have a **constant size `R` independent of
//! the number of processes**, trading a tunable, predictable probability
//! of out-of-causal-order delivery for the `O(N)` control information
//! that exact causal broadcast provably requires.
//!
//! ## The mechanism in 30 seconds
//!
//! Every process owns `K` entries (a random `K`-combination, derived from
//! a `set_id`) of a shared `R`-entry counter vector. Sending increments
//! the sender's `K` entries and attaches the vector; a receiver holds a
//! message until the sender's entries are at most one ahead of its own
//! view and every other entry is covered. With `R = 100, K = 4` a
//! thousand-process system gets causal delivery with error rates around
//! `10^-5`–`10^-3` per delivery (load-dependent) at 1.25% of a vector
//! clock's size — and processes can join or leave freely, with no
//! reconfiguration.
//!
//! ## Crate map
//!
//! | Crate | What it holds |
//! |---|---|
//! | [`clock`](pcb_clock) | key sets, Algorithm 3 unranking, the `(R,K)` clock, Lamport/plausible/vector instantiations |
//! | [`broadcast`](pcb_broadcast) | the endpoint ([`PcbProcess`]), Algorithms 1–5, baselines, membership |
//! | [`sim`](pcb_sim) | the paper's event-driven evaluation (§5.4), ground-truth oracle, figure sweeps |
//! | [`runtime`](pcb_runtime) | live threaded cluster over crossbeam channels |
//! | [`analysis`](pcb_analysis) | `P_error(R,K,X)`, `K_min = ln2·R/X`, parameter planning |
//! | [`telemetry`](pcb_telemetry) | lifecycle traces, alert explanation, latency histograms, Prometheus text |
//!
//! ## Quickstart
//!
//! ```
//! use pcb::prelude::*;
//!
//! // Dimension the clock: tolerate ~1e-4 covering probability at the
//! // expected concurrency (200 msg/s aggregate × 100 ms latency = 20).
//! let x = pcb::analysis::concurrency(200.0, 0.1);
//! let plan = pcb::analysis::plan_for_target(x, 1e-4, 10_000)?;
//!
//! // Two endpoints drawing random key sets from the planned space.
//! let space = KeySpace::new(plan.r, plan.k)?;
//! let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 7);
//! let mut alice = PcbProcess::new(ProcessId::new(0), assigner.next_set()?);
//! let mut bob = PcbProcess::new(ProcessId::new(1), assigner.next_set()?);
//!
//! // Causal broadcast with constant-size control information.
//! let m = alice.broadcast("set title = 'PaCT17'");
//! for delivery in bob.on_receive(m, 0) {
//!     assert!(!delivery.instant_alert);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pcb_analysis as analysis;
pub use pcb_broadcast as broadcast;
pub use pcb_clock as clock;
pub use pcb_crdt as crdt;
pub use pcb_runtime as runtime;
pub use pcb_sim as sim;
pub use pcb_telemetry as telemetry;

/// One-stop imports for applications.
pub mod prelude {
    pub use pcb_analysis::{error_probability, optimal_k, optimal_k_integer, Plan};
    pub use pcb_broadcast::{
        Delivery, Discipline, Group, Message, MessageId, PcbConfig, PcbProcess, ProbDiscipline,
    };
    pub use pcb_clock::{
        AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProbClock, ProcessId, Timestamp,
        VectorClock,
    };
    pub use pcb_crdt::{Counter, OrSet, Replica, Rga};
    pub use pcb_runtime::{Cluster, ClusterConfig, LatencyModel};
    pub use pcb_sim::{simulate_prob, RunMetrics, SimConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let space = KeySpace::new(8, 2).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 1);
        let keys = assigner.next_set().unwrap();
        let mut p: PcbProcess<()> = PcbProcess::new(ProcessId::new(0), keys);
        let _ = p.broadcast(());
    }
}
