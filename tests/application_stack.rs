//! Full-stack integration: the paper's motivating application
//! (collaborative editing over CRDTs) running on the complete system —
//! planner-dimensioned clocks, causal broadcast endpoints, the live
//! threaded cluster, and the wire codec.

use std::time::Duration;

use pcb::crdt::{Rga, RgaOp, HEAD};
use pcb::prelude::*;

fn op_id(op: &RgaOp) -> pcb::crdt::ElemId {
    match op {
        RgaOp::Insert { id, .. } => *id,
        RgaOp::Delete { id } => *id,
    }
}

#[test]
fn collaborative_editor_over_live_cluster() {
    // Three editors on the live runtime with exact (vector-equivalent)
    // clocks; each applies deliveries to a local RGA. All documents must
    // converge with zero orphans.
    let n = 3;
    let cluster = Cluster::<RgaOp>::start(pcb::runtime::ClusterConfig::exact(n)).unwrap();
    let mut docs: Vec<Rga> = (0..n).map(|i| Rga::new(i as u64 + 1)).collect();

    // Editor 0 types "hi"; the others extend after seeing it.
    let op1 = docs[0].insert_after(HEAD, 'h').unwrap();
    cluster.node(0).broadcast(op1.clone()).unwrap();
    let op2 = docs[0].insert_after(op_id(&op1), 'i').unwrap();
    cluster.node(0).broadcast(op2.clone()).unwrap();

    // Editors 1 and 2 wait for both ops, apply them, then append.
    for (editor, doc) in docs.iter_mut().enumerate().skip(1) {
        for _ in 0..2 {
            let d =
                cluster.node(editor).deliveries().recv_timeout(Duration::from_secs(10)).unwrap();
            doc.apply(d.message.payload());
        }
        assert_eq!(doc.text(), "hi");
        let tail = doc.text().chars().count();
        let op = doc.delete_at(tail - 1).expect("there is a character to delete");
        let _ = op; // editor 1 deletes 'i'; editor 2 deletes whatever is last
        cluster
            .node(editor)
            .broadcast(doc.insert_after(HEAD, char::from(b'0' + editor as u8)).unwrap())
            .unwrap();
    }

    // Editor 0 consumes everything the others broadcast (2 messages).
    for _ in 0..2 {
        let d = cluster.node(0).deliveries().recv_timeout(Duration::from_secs(10)).unwrap();
        docs[0].apply(d.message.payload());
    }
    // All replicas that saw the same set of ops have zero orphans — the
    // causal transport never admitted a child before its parent.
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(doc.orphan_count(), 0, "editor {i} saw a causal violation");
    }
    cluster.shutdown();
}

#[test]
fn planner_sized_clock_carries_crdt_ops() {
    // Dimension a clock for a 1e-3 covering probability at X = 10, then
    // run an OR-Set conversation over endpoints with that exact space.
    let plan = pcb::analysis::plan_for_target(10.0, 1e-3, 100_000).unwrap();
    let space = KeySpace::new(plan.r, plan.k).unwrap();
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 13);

    let mut a = Replica::new(ProcessId::new(0), assigner.next_set().unwrap(), OrSet::new(1));
    let mut b = Replica::new(ProcessId::new(1), assigner.next_set().unwrap(), OrSet::new(2));

    let mut t = 0u64;
    for item in ["x", "y", "z"] {
        let m = a.update(|s| Some(s.add(item))).unwrap();
        assert_eq!(m.timestamp().len(), plan.r, "stamp sized by the planner");
        b.on_receive(m, t);
        t += 1;
    }
    let rm = b.update(|s| s.remove(&"y")).unwrap();
    a.on_receive(rm, t);
    assert_eq!(a.state().digest(), b.state().digest());
    assert_eq!(a.state().len(), 2);
}

#[test]
fn wire_codec_roundtrips_through_an_endpoint_conversation() {
    // Messages can be flattened to bytes mid-flight and reconstructed —
    // what a real UDP/TCP deployment would do — without disturbing the
    // protocol.
    use bytes::Bytes;
    let space = KeySpace::new(32, 3).unwrap();
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 5);
    let mut tx: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
    let mut rx: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());

    let mut delivered = 0;
    for i in 0..20u8 {
        let m = tx.broadcast(Bytes::from(vec![i; usize::from(i)]));
        let frame = pcb::broadcast::encode(&m);
        let restored = pcb::broadcast::decode(frame).unwrap();
        delivered += rx.on_receive(restored, u64::from(i)).len();
    }
    assert_eq!(delivered, 20);
    assert_eq!(rx.pending_len(), 0);
}
