//! Shape checks for the paper's figures at miniature scale: the
//! qualitative claims (who wins, where the optimum and the knees sit)
//! must hold even on quick runs. Full-scale regeneration lives in the
//! `pcb-bench` binaries.

use pcb::prelude::*;
use pcb_sim::runner;

fn cfg(n: usize, seed: u64) -> SimConfig {
    SimConfig {
        n,
        warmup_ms: 300.0,
        duration_ms: 6300.0,
        seed,
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0)
}

/// Violation rate for (R = 100, K) on a small population at the paper's
/// X = 20 concurrency.
fn rate_for_k(k: usize, seed: u64) -> f64 {
    let space = KeySpace::new(100, k).unwrap();
    let m = simulate_prob(&cfg(60, seed), space).unwrap();
    m.violation_rate()
}

#[test]
fn figure3_shape_interior_k_beats_extremes() {
    // The essence of Figure 3: some 1 < K < 10 strictly beats both K = 1
    // (plausible clocks) and K = 10 (over-stamping).
    let k1 = rate_for_k(1, 5);
    let k3 = rate_for_k(3, 5);
    let k4 = rate_for_k(4, 5);
    let k10 = rate_for_k(10, 5);
    let interior = k3.min(k4);
    assert!(interior < k1, "interior K ({interior:.3e}) must beat K=1 ({k1:.3e})");
    assert!(interior < k10, "interior K ({interior:.3e}) must beat K=10 ({k10:.3e})");
}

#[test]
fn figure3_theory_optimum_matches_measured_neighbourhood() {
    // ln(2)·R/X ≈ 3.5. The model's curve is nearly flat over K ∈ {2,3,4}
    // (within 18% of the minimum), so at miniature scale the measured
    // best K must land in that flat neighbourhood, and the extremes must
    // be strictly worse. The full-scale run (fig3 binary) resolves the
    // paper's K = 4.
    let mut rates = Vec::new();
    for k in 1..=6 {
        rates.push((k, rate_for_k(k, 6)));
    }
    let best = rates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).copied().expect("non-empty");
    assert!(
        (2..=4).contains(&best.0),
        "measured optimum K = {} (rate {:.3e}) outside the flat optimum region; \
         full sweep: {rates:?}",
        best.0,
        best.1
    );
    let k1 = rates[0].1;
    let k6 = rates[5].1;
    assert!(best.1 < k1, "optimum must beat K=1 ({k1:.3e})");
    assert!(best.1 < k6, "optimum must beat K=6 ({k6:.3e})");
}

#[test]
fn figure4_shape_knee_below_design_lambda() {
    // Error rate vs λ at fixed N: λ/4 of the design point must err far
    // more; at/above the design point the rate is comparatively flat.
    let n = 60;
    let lambda_design = n as f64 / 200.0 * 1000.0; // X = 20
    let run = |lambda: f64, seed| {
        let c = SimConfig { mean_send_interval_ms: lambda, ..cfg(n, seed) };
        simulate_prob(&c, KeySpace::new(100, 4).unwrap()).unwrap().violation_rate()
    };
    let fast = run(lambda_design / 4.0, 7); // X = 80
    let design = run(lambda_design, 7); // X = 20
    let slow = run(lambda_design * 2.0, 7); // X = 10
    assert!(
        fast > 5.0 * design.max(1e-6),
        "quartered λ must blow up the rate: {fast:.3e} vs {design:.3e}"
    );
    assert!(
        slow <= design * 1.5 + 1e-5,
        "slower sending must not hurt: {slow:.3e} vs {design:.3e}"
    );
}

#[test]
fn figure5_shape_rate_grows_with_n_at_fixed_lambda() {
    // Fixed λ: doubling N doubles the aggregate rate and X, raising the
    // error rate (Figure 5's growth past the estimate).
    let lambda = 300.0; // small N stand-in for the paper's 5000 ms at N=1000
    let run = |n: usize| {
        let c = SimConfig { mean_send_interval_ms: lambda, ..cfg(n, 8) };
        simulate_prob(&c, KeySpace::new(100, 4).unwrap()).unwrap().violation_rate()
    };
    let small = run(30);
    let large = run(90);
    assert!(large > small, "3x N at fixed λ must raise the rate: {large:.3e} vs {small:.3e}");
}

#[test]
fn figure6_shape_rate_flat_when_receive_rate_constant() {
    // Constant aggregate rate: X is constant, so the rate must stay in
    // the same ballpark as N grows (the paper: "it is the concurrency,
    // not N, that matters").
    let run = |n: usize| {
        simulate_prob(&cfg(n, 9), KeySpace::new(100, 4).unwrap()).unwrap().violation_rate()
    };
    let small = run(40);
    let large = run(120);
    assert!(small > 0.0 && large > 0.0, "both points must observe errors");
    let ratio = large / small;
    assert!(
        (0.2..5.0).contains(&ratio),
        "constant-X rates should be within 5x: {small:.3e} vs {large:.3e}"
    );
}

#[test]
fn alert_recall_no_alert_means_no_error_on_late_messages() {
    // §4.2's guarantee, checked globally: Algorithm 4 alerts bound the
    // violations (alerts fire on every covered late arrival, violations
    // are a subset of deliveries enabled by coverings).
    let m = simulate_prob(&cfg(60, 10), KeySpace::new(64, 3).unwrap()).unwrap();
    assert!(m.exact_violations > 0, "need errors for the check to bite");
    assert!(
        m.alg4_alerts >= m.exact_violations / 4,
        "alert volume ({}) must be of the same order as violations ({})",
        m.alg4_alerts,
        m.exact_violations
    );
}

#[test]
fn paper_constants_are_what_the_runner_uses() {
    assert_eq!(runner::PAPER_R, 100);
    assert_eq!(runner::PAPER_K, 4);
    assert_eq!(runner::PAPER_N, 1000);
    assert_eq!(runner::PAPER_LAMBDA_MS, 5000.0);
    assert_eq!(runner::PAPER_RECEIVE_RATE, 200.0);
    let (ns, ks) = pcb_sim::figure3_defaults();
    assert_eq!(ns, vec![500, 1000, 1500, 2000]);
    assert!(ks.contains(&4));
}
