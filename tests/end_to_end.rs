//! Cross-crate integration: planner → clock → protocol → simulator.

use pcb::prelude::*;

fn quick_cfg(n: usize) -> SimConfig {
    SimConfig {
        n,
        warmup_ms: 300.0,
        duration_ms: 4300.0,
        seed: 11,
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0)
}

#[test]
fn planned_configuration_meets_its_target_in_simulation() {
    // Plan for a 1e-2 covering probability at X = 20, then measure: the
    // realized violation rate must stay below the planned bound (the
    // model is an upper bound: it ignores P_nc).
    let x = pcb::analysis::concurrency(200.0, 0.1);
    let plan = pcb::analysis::plan_for_target(x, 1e-2, 100_000).unwrap();
    let space = KeySpace::new(plan.r, plan.k).unwrap();
    let metrics = simulate_prob(&quick_cfg(60), space).unwrap();
    assert!(metrics.deliveries > 10_000);
    assert!(
        metrics.violation_rate() < plan.p_error,
        "measured {} must stay below planned bound {}",
        metrics.violation_rate(),
        plan.p_error
    );
}

#[test]
fn violation_rate_decreases_with_vector_length() {
    // More entries, fewer collisions: R = 16 must err far more than
    // R = 128 at the same K and load.
    let small = simulate_prob(&quick_cfg(60), KeySpace::new(16, 4).unwrap()).unwrap();
    let large = simulate_prob(&quick_cfg(60), KeySpace::new(128, 4).unwrap()).unwrap();
    assert!(small.exact_violations > 0, "R = 16 under X = 20 must err");
    assert!(
        small.violation_rate() > 3.0 * large.violation_rate(),
        "R=16 rate {} should dwarf R=128 rate {}",
        small.violation_rate(),
        large.violation_rate()
    );
}

#[test]
fn violation_rate_increases_with_load() {
    // Same clock, doubled concurrency: more errors (Figure 4's knee).
    let base = quick_cfg(60);
    let loaded =
        SimConfig { mean_send_interval_ms: base.mean_send_interval_ms / 4.0, ..base.clone() };
    let space = KeySpace::new(48, 3).unwrap();
    let calm = simulate_prob(&base, space).unwrap();
    let busy = simulate_prob(&loaded, space).unwrap();
    assert!(
        busy.violation_rate() > calm.violation_rate(),
        "4x the load must raise the rate: {} vs {}",
        busy.violation_rate(),
        calm.violation_rate()
    );
}

#[test]
fn lamport_extreme_is_live_but_erroneous() {
    // (R, K) = (1, 1): the single shared entry is inflated by every send
    // and delivery in the system, so the delivery condition is almost
    // always satisfied — the protocol stays live but degenerates to
    // near-raw arrival order (§5.3: P_error = 1 under concurrency).
    let cfg = quick_cfg(30);
    let lamport = simulate_prob(&cfg, KeySpace::lamport()).unwrap();
    assert_eq!(lamport.stuck, 0, "Lemma 1 liveness at the Lamport extreme");
    let sized = simulate_prob(&cfg, KeySpace::new(100, 4).unwrap()).unwrap();
    assert!(
        lamport.violation_rate() > 5.0 * sized.violation_rate().max(1e-6),
        "Lamport extreme rate {} must dwarf the sized clock's {}",
        lamport.violation_rate(),
        sized.violation_rate()
    );
}

#[test]
fn plausible_clocks_are_the_k1_special_case() {
    // K = 1 (Torres-Rojas plausible clocks) works but errs more than the
    // optimal K at the same R under the paper's load.
    let cfg = quick_cfg(60);
    let plausible = simulate_prob(&cfg, KeySpace::plausible(100).unwrap()).unwrap();
    let tuned = simulate_prob(&cfg, KeySpace::new(100, 3).unwrap()).unwrap();
    assert_eq!(plausible.stuck, 0);
    assert!(
        plausible.violation_rate() > tuned.violation_rate(),
        "K=1 rate {} should exceed K=3 rate {}",
        plausible.violation_rate(),
        tuned.violation_rate()
    );
}

#[test]
fn control_overhead_is_independent_of_population() {
    // The headline property: stamp bytes depend on R, never on N.
    let space = KeySpace::new(100, 4).unwrap();
    let small = simulate_prob(&quick_cfg(30), space).unwrap();
    let large = simulate_prob(&quick_cfg(90), space).unwrap();
    assert_eq!(
        small.control_bytes_per_message(),
        large.control_bytes_per_message(),
        "overhead must not grow with N"
    );
    assert_eq!(small.control_bytes_per_message(), 800.0);
}

#[test]
fn same_seed_same_history_through_the_full_stack() {
    let space = KeySpace::new(64, 3).unwrap();
    let a = simulate_prob(&quick_cfg(40), space).unwrap();
    let b = simulate_prob(&quick_cfg(40), space).unwrap();
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.exact_violations, b.exact_violations);
    assert_eq!(a.eps_max, b.eps_max);
    assert_eq!(a.alg4_alerts, b.alg4_alerts);
}

#[test]
fn endpoint_and_discipline_agree_on_the_protocol() {
    // The full endpoint (PcbProcess) and the lean discipline must make
    // identical delivery decisions on the same message history.
    use pcb::broadcast::{Discipline, ProbDiscipline};

    let space = KeySpace::new(12, 2).unwrap();
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 3);
    let ka = assigner.next_set().unwrap();
    let kb = assigner.next_set().unwrap();

    let mut endpoint_tx: PcbProcess<u32> = PcbProcess::new(ProcessId::new(0), ka.clone());
    let mut disc_rx = ProbDiscipline::new(kb.clone());
    let mut endpoint_rx: PcbProcess<u32> = PcbProcess::new(ProcessId::new(1), kb);

    for i in 0..20 {
        let m = endpoint_tx.broadcast(i);
        let disc_ready = disc_rx.is_deliverable(ProcessId::new(0), &ka, m.timestamp());
        let endpoint_out = endpoint_rx.on_receive(m.clone(), u64::from(i));
        assert_eq!(disc_ready, endpoint_out.len() == 1, "message {i}");
        if disc_ready {
            disc_rx.record_delivery(u64::from(i), ProcessId::new(0), &ka, m.timestamp());
        }
    }
}

#[test]
fn group_membership_feeds_live_endpoints() {
    // Group (membership) + PcbProcess (protocol) + analysis (planning)
    // glue together.
    let x = 10.0;
    let plan = pcb::analysis::plan_for_target(x, 1e-2, 10_000).unwrap();
    let space = KeySpace::new(plan.r, plan.k).unwrap();
    let mut group = Group::new(space, AssignmentPolicy::DistinctRandom, 9);

    let mut procs: Vec<PcbProcess<usize>> = (0..5)
        .map(|_| {
            let (id, keys) = group.join().unwrap();
            PcbProcess::new(id, keys)
        })
        .collect();

    // Round-robin chatter, fully connected, in-order transport.
    let mut delivered = 0usize;
    for round in 0..10 {
        for i in 0..procs.len() {
            let m = procs[i].broadcast(round * 10 + i);
            for (j, p) in procs.iter_mut().enumerate() {
                if j != i {
                    delivered += p.on_receive(m.clone(), round as u64).len();
                }
            }
        }
    }
    assert_eq!(delivered, 10 * 5 * 4, "every broadcast delivered everywhere");
    assert!(procs.iter().all(|p| p.pending_len() == 0));
}
