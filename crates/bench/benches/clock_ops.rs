//! Micro-benchmarks for the §5.2 complexity claims: O(R) send and
//! delivery-test, O(RK) set-id unranking, and the O(N) vector-clock
//! baseline they replace.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use pcb_clock::{
    combinatorics, BinomialTable, KeyAssigner, KeySet, KeySpace, ProbClock, ProcessId, Timestamp,
    VectorClock,
};

const R: usize = 100;
const K: usize = 4;
const N: usize = 1000;

fn paper_space() -> KeySpace {
    KeySpace::new(R, K).expect("paper space")
}

fn sample_keys(seed: u64) -> KeySet {
    let mut assigner =
        KeyAssigner::new(paper_space(), pcb_clock::AssignmentPolicy::UniformRandom, seed);
    assigner.next_set().expect("assignment")
}

fn bench_stamp_send(c: &mut Criterion) {
    let keys = sample_keys(1);
    let mut clock = ProbClock::new(paper_space());
    c.bench_function("clock/prob_stamp_send_r100_k4", |b| {
        b.iter(|| black_box(clock.stamp_send(black_box(&keys))))
    });
}

fn bench_is_deliverable(c: &mut Criterion) {
    let keys = sample_keys(1);
    let mut sender = ProbClock::new(paper_space());
    let ts = sender.stamp_send(&keys);
    let mut rx = ProbClock::new(paper_space());
    rx.record_delivery(&keys);
    c.bench_function("clock/prob_is_deliverable_r100", |b| {
        b.iter(|| black_box(rx.is_deliverable(black_box(&ts), black_box(&keys))))
    });
}

fn bench_record_delivery(c: &mut Criterion) {
    let keys = sample_keys(1);
    let mut rx = ProbClock::new(paper_space());
    c.bench_function("clock/prob_record_delivery_k4", |b| {
        b.iter(|| rx.record_delivery(black_box(&keys)))
    });
}

fn bench_is_covered(c: &mut Criterion) {
    let keys = sample_keys(1);
    let mut sender = ProbClock::new(paper_space());
    let ts = sender.stamp_send(&keys);
    let rx = ProbClock::new(paper_space());
    c.bench_function("clock/prob_is_covered_alg4", |b| {
        b.iter(|| black_box(rx.is_covered(black_box(&ts), black_box(&keys))))
    });
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut sender = VectorClock::new(N);
    let ts = sender.stamp_send(ProcessId::new(0));
    let rx = VectorClock::new(N);
    c.bench_function("clock/vector_is_deliverable_n1000", |b| {
        b.iter(|| black_box(rx.is_deliverable(black_box(&ts), ProcessId::new(0))))
    });
    let mut rx2 = VectorClock::new(N);
    c.bench_function("clock/vector_record_delivery_n1000", |b| {
        b.iter(|| rx2.record_delivery(black_box(&ts), ProcessId::new(0)))
    });
}

fn bench_unrank(c: &mut Criterion) {
    let table = BinomialTable::new(R);
    let total = table.get(R, K);
    c.bench_function("clock/unrank_set_id_r100_k4", |b| {
        let mut id = 0u128;
        b.iter(|| {
            id = (id + 9_973) % total;
            black_box(combinatorics::unrank_with(&table, id, R, K).expect("in range"))
        })
    });
}

fn bench_rank(c: &mut Criterion) {
    let table = BinomialTable::new(R);
    let combo = combinatorics::unrank_with(&table, 1_234_567, R, K).expect("in range");
    c.bench_function("clock/rank_combination_r100_k4", |b| {
        b.iter(|| black_box(combinatorics::rank_with(&table, black_box(&combo), R)))
    });
}

fn bench_overlap(c: &mut Criterion) {
    let a = sample_keys(1);
    let b_keys = sample_keys(2);
    c.bench_function("clock/keyset_overlap_k4", |b| {
        b.iter(|| black_box(a.overlap(black_box(&b_keys))))
    });
}

fn bench_timestamp_dominates(c: &mut Criterion) {
    let a = Timestamp::from_entries((0..R as u64).collect());
    let b_ts = Timestamp::from_entries((0..R as u64).map(|x| x.saturating_sub(1)).collect());
    c.bench_function("clock/timestamp_dominates_r100", |b| {
        b.iter(|| black_box(a.dominates(black_box(&b_ts))))
    });
}

criterion_group!(
    benches,
    bench_stamp_send,
    bench_is_deliverable,
    bench_record_delivery,
    bench_is_covered,
    bench_vector_clock,
    bench_unrank,
    bench_rank,
    bench_overlap,
    bench_timestamp_dominates,
);
criterion_main!(benches);
