//! End-to-end engine throughput on miniature versions of the paper's
//! figure configurations. These benches verify the simulator is fast
//! enough for the full sweeps and compare discipline costs under an
//! identical workload; the *figure data itself* comes from the
//! `fig3..fig6` binaries.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use pcb_clock::KeySpace;
use pcb_sim::{simulate_fifo, simulate_immediate, simulate_prob, simulate_vector, SimConfig};

fn mini_config(n: usize) -> SimConfig {
    SimConfig {
        n,
        warmup_ms: 200.0,
        duration_ms: 2200.0,
        seed: 7,
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0)
}

fn bench_engine_prob(c: &mut Criterion) {
    let cfg = mini_config(40);
    let space = KeySpace::new(100, 4).expect("space");
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_prob_n40_x20", |b| {
        b.iter(|| black_box(simulate_prob(&cfg, space).expect("run")))
    });
    group.finish();
}

fn bench_engine_vector(c: &mut Criterion) {
    let cfg = mini_config(40);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_vector_n40_x20", |b| {
        b.iter(|| black_box(simulate_vector(&cfg).expect("run")))
    });
    group.finish();
}

fn bench_engine_fifo(c: &mut Criterion) {
    let cfg = mini_config(40);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_fifo_n40_x20", |b| {
        b.iter(|| black_box(simulate_fifo(&cfg).expect("run")))
    });
    group.finish();
}

fn bench_engine_immediate(c: &mut Criterion) {
    let cfg = mini_config(40);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_immediate_n40_x20", |b| {
        b.iter(|| black_box(simulate_immediate(&cfg).expect("run")))
    });
    group.finish();
}

fn bench_engine_larger_population(c: &mut Criterion) {
    // Scaling check: N = 120 at the same concurrency.
    let cfg = mini_config(120);
    let space = KeySpace::new(100, 4).expect("space");
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_prob_n120_x20", |b| {
        b.iter(|| black_box(simulate_prob(&cfg, space).expect("run")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_prob,
    bench_engine_vector,
    bench_engine_fifo,
    bench_engine_immediate,
    bench_engine_larger_population,
);
criterion_main!(benches);
