//! Per-operation costs of the design alternatives discussed in
//! DESIGN.md: increment vs merge delivery recording, assignment-policy
//! draw cost, and the K sensitivity of the hot delivery test. The
//! *error-rate* effect of these choices is measured by the `ablations`
//! binary; these benches measure their *time* cost.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use pcb_broadcast::{Discipline, MergeProbDiscipline, ProbDiscipline};
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProcessId};

const R: usize = 100;

fn keys_k(k: usize, seed: u64) -> KeySet {
    let space = KeySpace::new(R, k).expect("space");
    KeyAssigner::new(space, AssignmentPolicy::UniformRandom, seed).next_set().expect("assignment")
}

fn bench_increment_vs_merge(c: &mut Criterion) {
    let sender_keys = keys_k(4, 1);
    let mut sender = ProbDiscipline::new(sender_keys.clone());
    let ts = sender.stamp_send();
    let p = ProcessId::new(0);

    let mut inc = ProbDiscipline::new(keys_k(4, 2));
    c.bench_function("ablation/record_increment_k4", |b| {
        b.iter(|| black_box(inc.record_delivery(0, p, &sender_keys, &ts)))
    });

    let mut mrg = MergeProbDiscipline::new(keys_k(4, 2));
    c.bench_function("ablation/record_merge_r100", |b| {
        b.iter(|| black_box(mrg.record_delivery(0, p, &sender_keys, &ts)))
    });
}

fn bench_assignment_policies(c: &mut Criterion) {
    use criterion::BatchSize;
    let space = KeySpace::new(R, 4).expect("space");
    for (name, policy) in [
        ("uniform", AssignmentPolicy::UniformRandom),
        ("distinct", AssignmentPolicy::DistinctRandom),
        ("round_robin", AssignmentPolicy::RoundRobin),
    ] {
        // Fresh assigner per batch of 64 draws: the distinct policy must
        // never exhaust its C(R,K) pool mid-measurement.
        c.bench_function(&format!("ablation/assign_{name}_x64"), |b| {
            b.iter_batched(
                || KeyAssigner::new(space, policy, 3),
                |mut assigner| {
                    for _ in 0..64 {
                        black_box(assigner.next_set().expect("64 << C(R,K)"));
                    }
                    assigner
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_delivery_test_k_sensitivity(c: &mut Criterion) {
    // §5.2 claims O(R) regardless of K; verify K barely matters.
    for k in [1usize, 4, 16] {
        let sender_keys = keys_k(k, 1);
        let mut sender = ProbDiscipline::new(sender_keys.clone());
        let ts = sender.stamp_send();
        let rx = ProbDiscipline::new(keys_k(k, 2));
        c.bench_function(&format!("ablation/is_deliverable_k{k}"), |b| {
            b.iter(|| black_box(rx.is_deliverable(ProcessId::new(0), &sender_keys, &ts)))
        });
    }
}

criterion_group!(
    benches,
    bench_increment_vs_merge,
    bench_assignment_policies,
    bench_delivery_test_k_sensitivity,
);
criterion_main!(benches);
