//! Pending-heavy benchmark: the unblock cascade that motivated the
//! entry-indexed wake-up engine.
//!
//! A single sender's FIFO chain of `P` messages arrives fully reversed,
//! so every message except the chain head blocks. The cascade is then
//! triggered by delivering the head: each delivery unblocks exactly the
//! next message. The naive restart-scan engine pays `O(P)` per delivery
//! (`O(P²)` per cascade); the wake-up index pays `O(1)` amortized wake
//! work per delivery. Both engines are preloaded once and cloned per
//! iteration so setup cost (itself quadratic for the naive queue) stays
//! out of the measurement.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pcb_broadcast::pending::naive::NaiveQueue;
use pcb_broadcast::{Message, MessageId, WakeupIndex};
use pcb_clock::{KeySet, KeySpace, ProbClock, ProcessId};

const R: usize = 32;
const K: usize = 2;

/// The sender's FIFO chain: `count` messages stamped in sequence.
fn chain(space: KeySpace, count: usize) -> Vec<Message<()>> {
    let keys = std::sync::Arc::new(KeySet::from_entries(space, &[0, 1]).expect("entries in range"));
    let mut sender = ProbClock::new(space);
    (0..count)
        .map(|i| {
            let ts = sender.stamp_send(&keys);
            Message::new(MessageId::new(ProcessId::new(0), i as u64 + 1), keys.clone(), ts, ())
        })
        .collect()
}

/// Preloads the naive queue with the chain minus its head (all blocked),
/// returning the queue, the receiver clock, and the head message.
fn preload_naive(space: KeySpace, count: usize) -> (NaiveQueue<()>, ProbClock, Message<()>) {
    let mut msgs = chain(space, count);
    let head = msgs.remove(0);
    msgs.reverse();
    let mut clock = ProbClock::new(space);
    let mut queue = NaiveQueue::new();
    for m in msgs {
        assert!(queue.on_receive(m, &mut clock).is_empty(), "preload must stay blocked");
    }
    (queue, clock, head)
}

/// Same preload through the wake-up index.
fn preload_indexed(space: KeySpace, count: usize) -> (WakeupIndex<()>, ProbClock, Message<()>) {
    let mut msgs = chain(space, count);
    let head = msgs.remove(0);
    msgs.reverse();
    let clock = ProbClock::new(space);
    let mut index = WakeupIndex::new(R);
    for m in msgs {
        index.insert(0, m, &clock);
    }
    assert_eq!(index.stats().ready_on_arrival, 0, "preload must stay blocked");
    (index, clock, head)
}

/// Runs the full cascade on the indexed engine, returning deliveries.
fn drain_indexed(index: &mut WakeupIndex<()>, clock: &mut ProbClock) -> usize {
    let mut delivered = 0;
    while let Some(m) = index.pop_ready() {
        clock.record_delivery(m.keys());
        let keys: Vec<usize> = m.keys().iter().collect();
        delivered += 1;
        index.on_clock_advance(keys, clock);
    }
    delivered
}

fn bench_unblock_cascade(c: &mut Criterion) {
    let space = KeySpace::new(R, K).expect("space");
    let mut group = c.benchmark_group("pending/unblock_cascade");
    group.measurement_time(Duration::from_secs(2));
    for &p in &[100usize, 1_000, 10_000] {
        let naive_seed = preload_naive(space, p);
        group.bench_function(&format!("naive/{p}"), |b| {
            b.iter_batched(
                || naive_seed.clone(),
                |(mut queue, mut clock, head)| {
                    let delivered = queue.on_receive(head, &mut clock).len();
                    assert_eq!(delivered, black_box(p), "cascade must fully drain");
                },
                BatchSize::LargeInput,
            )
        });
        let indexed_seed = preload_indexed(space, p);
        group.bench_function(&format!("indexed/{p}"), |b| {
            b.iter_batched(
                || indexed_seed.clone(),
                |(mut index, mut clock, head)| {
                    index.insert(0, head, &clock);
                    let delivered = drain_indexed(&mut index, &mut clock);
                    assert_eq!(delivered, black_box(p), "cascade must fully drain");
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unblock_cascade);
criterion_main!(benches);
