//! Endpoint-level benchmarks: broadcast stamping, in-order delivery, the
//! pending-queue flush, and both delivery-error detectors.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pcb_broadcast::{PcbConfig, PcbProcess, RecentListDetector};
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProbClock, ProcessId};

const R: usize = 100;
const K: usize = 4;

fn keys(seed: u64) -> KeySet {
    let space = KeySpace::new(R, K).expect("space");
    KeyAssigner::new(space, AssignmentPolicy::UniformRandom, seed).next_set().expect("assignment")
}

fn bench_broadcast(c: &mut Criterion) {
    let mut p: PcbProcess<u64> = PcbProcess::new(ProcessId::new(0), keys(1));
    let mut i = 0u64;
    c.bench_function("protocol/broadcast_stamp_r100", |b| {
        b.iter(|| {
            i += 1;
            black_box(p.broadcast(i))
        })
    });
}

fn bench_receive_in_order(c: &mut Criterion) {
    c.bench_function("protocol/on_receive_in_order_64", |b| {
        b.iter_batched(
            || {
                let mut tx: PcbProcess<u64> = PcbProcess::new(ProcessId::new(0), keys(1));
                let rx: PcbProcess<u64> = PcbProcess::new(ProcessId::new(1), keys(2));
                let msgs: Vec<_> = (0..64).map(|i| tx.broadcast(i)).collect();
                (rx, msgs)
            },
            |(mut rx, msgs)| {
                for (t, m) in msgs.into_iter().enumerate() {
                    black_box(rx.on_receive(m, t as u64).len());
                }
                rx
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_receive_reversed_flush(c: &mut Criterion) {
    // Worst case for the pending queue: the whole batch arrives reversed
    // and flushes in one cascade.
    c.bench_function("protocol/on_receive_reversed_64", |b| {
        b.iter_batched(
            || {
                let mut tx: PcbProcess<u64> = PcbProcess::new(ProcessId::new(0), keys(1));
                let rx: PcbProcess<u64> = PcbProcess::new(ProcessId::new(1), keys(2));
                let mut msgs: Vec<_> = (0..64).map(|i| tx.broadcast(i)).collect();
                msgs.reverse();
                (rx, msgs)
            },
            |(mut rx, msgs)| {
                let mut delivered = 0usize;
                for (t, m) in msgs.into_iter().enumerate() {
                    delivered += rx.on_receive(m, t as u64).len();
                }
                black_box(delivered)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_detector_alg4(c: &mut Criterion) {
    let k = keys(1);
    let mut sender = ProbClock::new(KeySpace::new(R, K).expect("space"));
    let ts = sender.stamp_send(&k);
    let rx = ProbClock::new(KeySpace::new(R, K).expect("space"));
    c.bench_function("protocol/detector_alg4_check", |b| {
        b.iter(|| black_box(pcb_broadcast::instant_alert(&rx, black_box(&ts), &k)))
    });
}

fn bench_detector_alg5(c: &mut Criterion) {
    let k = keys(1);
    let space = KeySpace::new(R, K).expect("space");
    let mut sender = ProbClock::new(space);
    let ts = sender.stamp_send(&k);
    let mut rx = ProbClock::new(space);
    rx.record_delivery(&k);
    let mut det = RecentListDetector::new(1_000_000);
    // A realistically sized recent list (~X = 20 messages in flight).
    let mut other = ProbClock::new(space);
    for i in 0..20 {
        let w = other.stamp_send(&keys(i + 10));
        det.record(i, w);
    }
    c.bench_function("protocol/detector_alg5_check_l20", |b| {
        b.iter(|| black_box(det.check(100, &rx, black_box(&ts), &k)))
    });
}

fn bench_endpoint_with_recent_list(c: &mut Criterion) {
    let cfg = PcbConfig { recent_window: Some(1000), ..PcbConfig::default() };
    c.bench_function("protocol/on_receive_with_alg5_64", |b| {
        b.iter_batched(
            || {
                let mut tx: PcbProcess<u64> = PcbProcess::new(ProcessId::new(0), keys(1));
                let rx = PcbProcess::with_config(ProcessId::new(1), keys(2), cfg.clone());
                let msgs: Vec<_> = (0..64).map(|i| tx.broadcast(i)).collect();
                (rx, msgs)
            },
            |(mut rx, msgs)| {
                for (t, m) in msgs.into_iter().enumerate() {
                    black_box(rx.on_receive(m, t as u64).len());
                }
                rx
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    use bytes::Bytes;
    let mut p: PcbProcess<Bytes> = PcbProcess::new(ProcessId::new(0), keys(1));
    for _ in 0..50 {
        let _ = p.broadcast(Bytes::new());
    }
    let msg = p.broadcast(Bytes::from_static(b"a realistic small payload"));
    let frame = pcb_broadcast::encode(&msg);
    c.bench_function("protocol/wire_encode_r100", |b| {
        b.iter(|| black_box(pcb_broadcast::encode(black_box(&msg))))
    });
    c.bench_function("protocol/wire_decode_r100", |b| {
        b.iter(|| black_box(pcb_broadcast::decode(black_box(frame.clone())).expect("valid")))
    });
}

criterion_group!(
    benches,
    bench_broadcast,
    bench_receive_in_order,
    bench_receive_reversed_flush,
    bench_detector_alg4,
    bench_detector_alg5,
    bench_endpoint_with_recent_list,
    bench_wire_codec,
);
criterion_main!(benches);
