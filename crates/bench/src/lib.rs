//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary honours two environment variables:
//!
//! * `PCB_SCALE` — multiplier on each run's measured virtual-time window
//!   (default 0.25; `1.0` reproduces the full-length sweeps, `0.05` gives
//!   a fast smoke run);
//! * `PCB_SEED` — master seed (default 1);
//! * `PCB_THREADS` — sweep worker threads (default: all cores; the
//!   `--threads N` command-line flag overrides it; output is
//!   byte-identical at any thread count);
//! * `PCB_CSV_DIR` — if set, each figure also writes `<figN>.csv` there.

use std::path::PathBuf;

/// Scale factor from `PCB_SCALE` (default 0.25).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("PCB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(0.25)
}

/// Seed from `PCB_SEED` (default 1).
#[must_use]
pub fn seed() -> u64 {
    std::env::var("PCB_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Replications per sweep point from `PCB_REPS` (default 3).
#[must_use]
pub fn reps() -> usize {
    std::env::var("PCB_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|r: &usize| *r > 0)
        .unwrap_or(3)
}

/// Worker threads for sweep fan-out: `--threads N` (or `--threads=N`) on
/// the command line, else `PCB_THREADS`, else every available core.
/// Output is byte-identical at any thread count — this only buys time.
#[must_use]
pub fn threads() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return std::cmp::max(n, 1);
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            if let Ok(n) = v.parse() {
                return std::cmp::max(n, 1);
            }
        }
    }
    std::env::var("PCB_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|t: &usize| *t > 0)
        .unwrap_or_else(pcb_sim::pool::default_threads)
}

/// Bundles the environment knobs into the runner's [`pcb_sim::SweepOptions`].
#[must_use]
pub fn sweep_options() -> pcb_sim::SweepOptions {
    pcb_sim::SweepOptions { scale: scale(), seed: seed(), reps: reps(), threads: threads() }
}

/// CSV output directory from `PCB_CSV_DIR`, if set.
#[must_use]
pub fn csv_dir() -> Option<PathBuf> {
    std::env::var_os("PCB_CSV_DIR").map(PathBuf::from)
}

/// Writes `content` as `<name>.csv` under [`csv_dir`] (no-op when unset).
pub fn maybe_write_csv(name: &str, content: &str) {
    if let Some(dir) = csv_dir() {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Prints the standard run banner.
pub fn banner(figure: &str, what: &str) {
    println!("=== {figure}: {what} ===");
    println!(
        "scale = {} (PCB_SCALE), seed = {} (PCB_SEED), reps = {} (PCB_REPS); \
         scale 1.0 ≈ 14 simulated seconds per replication",
        scale(),
        seed(),
        reps()
    );
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn defaults_are_sane() {
        // Env-dependent values still parse into the right ranges.
        assert!(super::scale() > 0.0);
        let _ = super::seed();
        let _ = super::csv_dir();
    }
}
