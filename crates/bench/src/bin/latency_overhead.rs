//! The time axis of the paper's trade-off: causal ordering "has a cost
//! that can be high either in time (message exchanges) or in space (the
//! size of control information)" (§1). This harness measures the *time*
//! side — how long deliveries wait in the pending buffer — across the
//! design space, on one identical workload.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin latency_overhead
//! ```

use pcb_clock::KeySpace;
use pcb_sim::{
    simulate_fifo, simulate_immediate, simulate_prob, simulate_vector, RunMetrics, SimConfig,
};

fn row(name: &str, bytes: usize, m: &RunMetrics) {
    println!(
        "{name:>20} {bytes:>12} {:>12.3e} {:>12.2} {:>12.2} {:>12.2}",
        m.violation_rate(),
        m.blocking_ms.mean(),
        m.blocking_ms.max(),
        m.delay_ms.mean(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner(
        "Latency overhead",
        "pending-buffer blocking across the design space (N = 100, X = 20)",
    );
    let n = 100;
    let cfg = SimConfig {
        n,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale(),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0);

    println!(
        "{:>20} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "discipline", "stamp bytes", "violations", "block mean", "block max", "e2e mean"
    );
    row("no ordering", 0, &simulate_immediate(&cfg)?);
    row("fifo", 8, &simulate_fifo(&cfg)?);
    row("prob (1,1) lamport", 8, &simulate_prob(&cfg, KeySpace::lamport())?);
    row("prob (25,2)", 200, &simulate_prob(&cfg, KeySpace::new(25, 2)?)?);
    row("prob (100,4)", 800, &simulate_prob(&cfg, KeySpace::new(100, 4)?)?);
    row("prob (400,13)", 3200, &simulate_prob(&cfg, KeySpace::new(400, 13)?)?);
    row("vector clock", n * 8, &simulate_vector(&cfg)?);
    println!();
    println!(
        "Blocking grows as the clock gets stricter (stronger ordering holds more messages \
         back); violations shrink. The paper's (R, K) point buys near-vector accuracy at a \
         fraction of both costs — and its stamp stays constant as N grows, while the vector \
         clock's last column would scale with membership."
    );
    Ok(())
}
