//! Causal alert explanation: reconstruct *why* a delivery was flagged.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin trace_explain -- <trace.jsonl> [--alerts]
//! cargo run --release -p pcb-bench --bin trace_explain -- --seed <seed> [n [duration_ms]]
//! cargo run --release -p pcb-bench --bin trace_explain -- --verify
//! ```
//!
//! * File mode replays an existing JSONL trace (from
//!   `simulate_traced` or `Cluster::drain_traces`) and prints the causal
//!   story of every exact-checker violation — or, with `--alerts`, of
//!   every Algorithm 4 alert, including false alarms.
//! * `--seed` re-runs the seeded chaos workload with tracing on (same
//!   engine and colliding clock as `scripts/replay.sh`) and explains the
//!   violations of that run.
//! * `--verify` is the `scripts/verify.sh --trace` stage: over a fixed
//!   seed set it requires every exact-checker violation to be explained
//!   with a named missing predecessor and a non-empty concurrent
//!   covering set, and round-trips the trace through JSONL on the way.

use pcb_clock::KeySpace;
use pcb_sim::{chaos_config, simulate_prob_traced};
use pcb_telemetry::{explain, parse_jsonl, write_jsonl, ExplainMode, ExplainReport, TraceRecord};

/// The paper's colliding clock shape: R=16, K=2 keeps `P_error` high
/// enough that short chaos runs actually produce violations to explain.
const R: usize = 16;
const K: usize = 2;

/// Ring capacity per node — large enough that no record of a short run
/// is dropped (a dropped `Sent` would turn its violations into
/// `skipped_unknown`).
const TRACE_CAPACITY: usize = 1 << 20;

fn traced_chaos_run(
    seed: u64,
    n: usize,
    duration_ms: f64,
) -> Result<Vec<TraceRecord>, Box<dyn std::error::Error>> {
    let mut cfg = chaos_config(seed, n, duration_ms);
    cfg.trace_capacity = TRACE_CAPACITY;
    let space = KeySpace::new(R, K)?;
    let (_, trace) = simulate_prob_traced(&cfg, space)?;
    Ok(trace)
}

fn print_report(report: &ExplainReport, mode: ExplainMode) {
    println!(
        "replayed {} deliveries: {} violations, {} Alg-4 alerts",
        report.deliveries, report.violations, report.alerts4
    );
    if report.skipped_unknown > 0 {
        println!(
            "  (skipped {} flagged deliveries whose Sent fell out of the trace ring)",
            report.skipped_unknown
        );
    }
    if report.explanations.is_empty() {
        let what = match mode {
            ExplainMode::Violations => "violation",
            ExplainMode::Alerts => "Alg-4 alert",
        };
        println!("nothing to explain: no {what} in the trace");
    }
    for e in &report.explanations {
        print!("{e}");
    }
}

/// One verification run: every violation must carry a complete story.
/// Returns `(violations, failures)`.
fn verify_seed(seed: u64) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let trace = traced_chaos_run(seed, 9, 4000.0)?;

    // Round-trip through the serialized form — the report must be built
    // from what a file reader would see, not the in-memory records.
    let jsonl = write_jsonl(&trace);
    let reparsed = parse_jsonl(&jsonl).map_err(|e| format!("JSONL round-trip failed: {e}"))?;
    if reparsed != trace {
        return Err("JSONL round-trip changed the trace".into());
    }

    let report = explain(&reparsed, ExplainMode::Violations);
    if report.skipped_unknown > 0 {
        return Err(format!(
            "seed {seed}: {} violations unexplainable (trace ring overflowed)",
            report.skipped_unknown
        )
        .into());
    }
    let mut failures = 0;
    for e in &report.explanations {
        let complete = !e.missing.is_empty() && e.missing.iter().all(|m| !m.covering.is_empty());
        if !complete {
            failures += 1;
            println!("seed {seed}: incomplete story:");
            print!("{e}");
        }
    }
    Ok((report.violations, failures))
}

fn verify() -> Result<(), Box<dyn std::error::Error>> {
    let seeds: &[u64] = &[3, 17, 41, 0xC0FFEE, 7, 1234];
    let mut total_violations = 0;
    let mut total_failures = 0;
    for &seed in seeds {
        let (violations, failures) = verify_seed(seed)?;
        println!("seed {seed:>8}: {violations} violations, all explained: {}", failures == 0);
        total_violations += violations;
        total_failures += failures;
    }
    if total_violations == 0 {
        return Err("verification vacuous: no seed produced a violation".into());
    }
    if total_failures > 0 {
        return Err(format!(
            "{total_failures} of {total_violations} violations lacked a missing predecessor \
             or a concurrent covering set"
        )
        .into());
    }
    println!("trace_explain --verify: OK ({total_violations} violations, every story complete)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--verify") => {
            pcb_bench::banner("trace_explain", "verify every chaos violation is explainable");
            verify()
        }
        Some("--seed") => {
            let seed: u64 = args.get(1).ok_or("--seed needs a value")?.parse()?;
            let n: usize = args.get(2).map_or(Ok(9), |s| s.parse())?;
            let duration_ms: f64 = args.get(3).map_or(Ok(4000.0), |s| s.parse())?;
            let trace = traced_chaos_run(seed, n, duration_ms)?;
            print_report(&explain(&trace, ExplainMode::Violations), ExplainMode::Violations);
            Ok(())
        }
        Some(path) => {
            let mode = if args.iter().any(|a| a == "--alerts") {
                ExplainMode::Alerts
            } else {
                ExplainMode::Violations
            };
            let text = std::fs::read_to_string(path)?;
            let trace = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
            print_report(&explain(&trace, mode), mode);
            Ok(())
        }
        None => {
            Err("usage: trace_explain <trace.jsonl> [--alerts] | --seed <seed> | --verify".into())
        }
    }
}
