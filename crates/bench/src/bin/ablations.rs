//! Ablations & baselines (DESIGN.md §5):
//!
//! 1. ordering discipline comparison — probabilistic vs vector vs FIFO vs
//!    no ordering, identical workload: violation rate and stamp bytes;
//! 2. increment (paper) vs merge record-delivery variant;
//! 3. key-assignment policies — uniform random vs collision-free vs
//!    round-robin spread;
//! 4. gossip dissemination vs reliable broadcast.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin ablations
//! ```

use pcb_broadcast::{MergeProbDiscipline, ProbDiscipline};
use pcb_clock::{AssignmentPolicy, KeySpace};
use pcb_sim::{
    simulate, simulate_fifo, simulate_immediate, simulate_prob, simulate_vector, Dissemination,
    LatencyDistribution, RunMetrics, SimConfig,
};

fn row(name: &str, bytes: usize, m: &RunMetrics) {
    println!(
        "{name:>22} {bytes:>12} {:>12.3e} {:>12} {:>10}",
        m.violation_rate(),
        m.deliveries,
        m.stuck
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Ablations", "design-choice comparisons on one workload");
    // A loaded mid-size workload: N = 150 at 200 msg/s aggregate (X = 20).
    let n = 150;
    let cfg = SimConfig {
        n,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale(),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0);
    let space = KeySpace::new(100, 4)?;

    println!("=== 1. Ordering disciplines (N = {n}, X = 20) ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "discipline", "stamp bytes", "violations", "deliveries", "stuck"
    );
    row("probabilistic(100,4)", 100 * 8, &simulate_prob(&cfg, space)?);
    row("vector clock", n * 8, &simulate_vector(&cfg)?);
    row("fifo", 8, &simulate_fifo(&cfg)?);
    row("no ordering", 0, &simulate_immediate(&cfg)?);
    println!();

    println!("=== 2. Record-delivery rule: increment (paper) vs merge ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "variant", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let inc = simulate(&cfg, space, |_, keys| ProbDiscipline::new(keys))?;
    let mrg = simulate(&cfg, space, |_, keys| MergeProbDiscipline::new(keys))?;
    row("increment (Alg 2)", 800, &inc);
    row("merge-max", 800, &mrg);
    println!();

    println!("=== 3. Key assignment policies ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "policy", "stamp bytes", "violations", "deliveries", "stuck"
    );
    for (name, policy) in [
        ("uniform random", AssignmentPolicy::UniformRandom),
        ("distinct random", AssignmentPolicy::DistinctRandom),
        ("round robin", AssignmentPolicy::RoundRobin),
    ] {
        let cfg = SimConfig { policy, ..cfg.clone() };
        row(name, 800, &simulate_prob(&cfg, space)?);
    }
    println!();

    println!("=== 4. Dissemination: reliable broadcast vs gossip ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "transport", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let direct = simulate_prob(&cfg, space)?;
    row("direct (reliable)", 800, &direct);
    for fanout in [4, 8, 12] {
        let cfg = SimConfig { dissemination: Dissemination::Gossip { fanout }, ..cfg.clone() };
        let g = simulate_prob(&cfg, space)?;
        row(&format!("gossip fanout={fanout}"), 800, &g);
        println!("{:>22} duplicates = {}, undelivered = {}", "", g.duplicates, g.undelivered);
    }
    println!();

    println!("=== 5. Delay-distribution shape (same mean & variance) ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "distribution", "stamp bytes", "violations", "deliveries", "stuck"
    );
    for (name, dist) in [
        ("gaussian (paper)", LatencyDistribution::Gaussian),
        ("uniform", LatencyDistribution::Uniform),
        ("log-normal", LatencyDistribution::LogNormal),
        ("bimodal (near/far)", LatencyDistribution::Bimodal),
    ] {
        let cfg = SimConfig { latency_distribution: dist, ..cfg.clone() };
        row(name, 800, &simulate_prob(&cfg, space)?);
    }
    println!();
    println!(
        "The §5.3 model only sees the mean (through X); spread and tails act through P_nc — \
         wider or clustered delays reorder more at identical concurrency."
    );
    Ok(())
}
