//! Ablations & baselines (DESIGN.md §5):
//!
//! 1. ordering discipline comparison — probabilistic vs vector vs FIFO vs
//!    no ordering, identical workload: violation rate and stamp bytes;
//! 2. increment (paper) vs merge record-delivery variant;
//! 3. key-assignment policies — uniform random vs collision-free vs
//!    round-robin spread;
//! 4. gossip dissemination vs reliable broadcast.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin ablations
//! ```

use pcb_broadcast::{MergeProbDiscipline, ProbDiscipline};
use pcb_clock::{AssignmentPolicy, KeySpace};
use pcb_sim::pool::run_indexed;
use pcb_sim::{
    simulate, simulate_fifo, simulate_immediate, simulate_prob, simulate_vector, Dissemination,
    LatencyDistribution, RunMetrics, SimConfig,
};

fn row(name: &str, bytes: usize, m: &RunMetrics) {
    println!(
        "{name:>22} {bytes:>12} {:>12.3e} {:>12} {:>10}",
        m.violation_rate(),
        m.deliveries,
        m.stuck
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Ablations", "design-choice comparisons on one workload");
    // A loaded mid-size workload: N = 150 at 200 msg/s aggregate (X = 20).
    let n = 150;
    let cfg = SimConfig {
        n,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale(),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0);
    let space = KeySpace::new(100, 4)?;

    let threads = pcb_bench::threads();

    println!("=== 1. Ordering disciplines (N = {n}, X = 20) ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "discipline", "stamp bytes", "violations", "deliveries", "stuck"
    );
    // Every run in a section is independent and fully seeded by `cfg`:
    // fan them out across workers, report in fixed order.
    let disciplines = run_indexed(threads, 4, |i| match i {
        0 => simulate_prob(&cfg, space),
        1 => simulate_vector(&cfg),
        2 => simulate_fifo(&cfg),
        _ => simulate_immediate(&cfg),
    });
    row("probabilistic(100,4)", 100 * 8, &disciplines[0].clone()?);
    row("vector clock", n * 8, &disciplines[1].clone()?);
    row("fifo", 8, &disciplines[2].clone()?);
    row("no ordering", 0, &disciplines[3].clone()?);
    println!();

    println!("=== 2. Record-delivery rule: increment (paper) vs merge ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "variant", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let variants = run_indexed(threads, 2, |i| match i {
        0 => simulate(&cfg, space, |_, keys| ProbDiscipline::new(keys)),
        _ => simulate(&cfg, space, |_, keys| MergeProbDiscipline::new(keys)),
    });
    row("increment (Alg 2)", 800, &variants[0].clone()?);
    row("merge-max", 800, &variants[1].clone()?);
    println!();

    println!("=== 3. Key assignment policies ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "policy", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let policies = [
        ("uniform random", AssignmentPolicy::UniformRandom),
        ("distinct random", AssignmentPolicy::DistinctRandom),
        ("round robin", AssignmentPolicy::RoundRobin),
    ];
    let policy_runs = run_indexed(threads, policies.len(), |i| {
        let cfg = SimConfig { policy: policies[i].1, ..cfg.clone() };
        simulate_prob(&cfg, space)
    });
    for ((name, _), m) in policies.iter().zip(policy_runs) {
        row(name, 800, &m?);
    }
    println!();

    println!("=== 4. Dissemination: reliable broadcast vs gossip ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "transport", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let fanouts = [4, 8, 12];
    let gossip_runs = run_indexed(threads, fanouts.len() + 1, |i| {
        if i == 0 {
            simulate_prob(&cfg, space)
        } else {
            let cfg = SimConfig {
                dissemination: Dissemination::Gossip { fanout: fanouts[i - 1] },
                ..cfg.clone()
            };
            simulate_prob(&cfg, space)
        }
    });
    row("direct (reliable)", 800, &gossip_runs[0].clone()?);
    for (fanout, g) in fanouts.iter().zip(&gossip_runs[1..]) {
        let g = g.clone()?;
        row(&format!("gossip fanout={fanout}"), 800, &g);
        println!("{:>22} duplicates = {}, undelivered = {}", "", g.duplicates, g.undelivered);
    }
    println!();

    println!("=== 5. Delay-distribution shape (same mean & variance) ===\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "distribution", "stamp bytes", "violations", "deliveries", "stuck"
    );
    let distributions = [
        ("gaussian (paper)", LatencyDistribution::Gaussian),
        ("uniform", LatencyDistribution::Uniform),
        ("log-normal", LatencyDistribution::LogNormal),
        ("bimodal (near/far)", LatencyDistribution::Bimodal),
    ];
    let distribution_runs = run_indexed(threads, distributions.len(), |i| {
        let cfg = SimConfig { latency_distribution: distributions[i].1, ..cfg.clone() };
        simulate_prob(&cfg, space)
    });
    for ((name, _), m) in distributions.iter().zip(distribution_runs) {
        row(name, 800, &m?);
    }
    println!();
    println!(
        "The §5.3 model only sees the mean (through X); spread and tails act through P_nc — \
         wider or clustered delays reorder more at identical concurrency."
    );
    Ok(())
}
