//! Loss-rate sweep (extension): error rate under lossy links with
//! reliable-broadcast retransmission. Loss converts into long, highly
//! variable delays — raising `P_nc` (the chance a message is overtaken)
//! while the covering probability `P_error` stays put, so the violation
//! rate climbs roughly linearly in the loss-induced reorder rate.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin loss_sweep
//! ```

use pcb_clock::KeySpace;
use pcb_sim::{simulate_prob, LossModel, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Loss sweep", "violation rate vs link loss (N = 150, X = 20, RTO = 200 ms)");
    let base = SimConfig {
        n: 150,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale(),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0);
    let space = KeySpace::new(100, 4)?;

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>10}",
        "loss", "violations", "mean delay", "p99-ish (max)", "stuck"
    );
    let loss_rates = [0.0, 1.0, 5.0, 10.0, 20.0, 40.0];
    // Each loss point is an independent seeded run: fan out, print in order.
    let runs = pcb_sim::pool::run_indexed(pcb_bench::threads(), loss_rates.len(), |i| {
        let loss_pct = loss_rates[i];
        let cfg = SimConfig {
            loss: (loss_pct > 0.0)
                .then(|| LossModel { drop_probability: loss_pct / 100.0, retransmit_ms: 200.0 }),
            ..base.clone()
        };
        simulate_prob(&cfg, space)
    });
    for (loss_pct, m) in loss_rates.into_iter().zip(runs) {
        let m = m?;
        println!(
            "{loss_pct:>7}% {:>12.3e} {:>10.1}ms {:>12.1}ms {:>10}",
            m.violation_rate(),
            m.delay_ms.mean(),
            m.delay_ms.max(),
            m.stuck
        );
        assert_eq!(m.stuck, 0, "retransmission keeps the protocol live");
    }
    println!();
    println!("Liveness holds at every loss rate; ordering quality degrades gracefully.");
    Ok(())
}
