//! Figure 4: error rate vs `λ` (mean per-process inter-send interval) at
//! N = 1000, R = 100, K = 4.
//!
//! The paper: stable around the λ = 5000 ms design point, rising quickly
//! below λ = 3000 ms (more concurrency than the clock was sized for).
//!
//! ```text
//! PCB_SCALE=0.25 cargo run --release -p pcb-bench --bin fig4
//! ```

use pcb_sim::{figure4, figure4_defaults, render_csv, render_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Figure 4", "error rate vs λ at N = 1000, R = 100, K = 4");
    let lambdas = figure4_defaults();
    let rows = figure4(pcb_bench::sweep_options(), &lambdas)?;

    println!(
        "{}",
        render_table("Figure 4 — violation rate per delivery", "λ (ms)", &rows, |p| {
            format!("{:.0}", p.lambda_ms)
        })
    );

    let at = |l: f64| rows.iter().find(|r| (r.lambda_ms - l).abs() < 1.0);
    if let (Some(fast), Some(design)) = (at(1000.0), at(5000.0)) {
        println!(
            "λ = 1000 ms rate is {:.1}x the λ = 5000 ms rate (paper: sharp knee below 3000)",
            fast.violation_rate / design.violation_rate.max(1e-12)
        );
    }

    pcb_bench::maybe_write_csv("fig4", &render_csv(&rows));
    Ok(())
}
