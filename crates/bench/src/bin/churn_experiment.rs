//! Churn experiment (extension; paper §1–§2 motivation): error rate and
//! liveness under continuous joins and leaves, which vector clocks cannot
//! even express without global reconfiguration.
//!
//! Joins perform a sync-window state transfer from a random member; leaves
//! are silent. The stamp stays `R` integers throughout.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin churn_experiment
//! ```

use pcb_clock::KeySpace;
use pcb_sim::{simulate_prob, ChurnModel, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Churn", "error rate and liveness under joins/leaves (R = 100, K = 4)");
    let n = 200;
    let base = SimConfig {
        n,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale(),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(200.0);
    let space = KeySpace::new(100, 4)?;

    println!(
        "{:>28} {:>7} {:>7} {:>12} {:>12} {:>8} {:>12}",
        "scenario", "joins", "leaves", "violations", "deliveries", "stuck", "undelivered"
    );
    let run = |name: &str, churn: Option<ChurnModel>| -> Result<(), Box<dyn std::error::Error>> {
        let cfg = SimConfig { churn, ..base.clone() };
        let m = simulate_prob(&cfg, space)?;
        println!(
            "{name:>28} {:>7} {:>7} {:>12.3e} {:>12} {:>8} {:>12}",
            m.joins,
            m.leaves,
            m.violation_rate(),
            m.deliveries,
            m.stuck,
            m.undelivered
        );
        Ok(())
    };

    run("static membership", None)?;
    run("growing (2 joins/s)", Some(ChurnModel::growing(n / 2, 2.0)))?;
    run(
        "churning (joins + leaves)",
        Some(ChurnModel { mean_lifetime_ms: Some(10_000.0), ..ChurnModel::growing(n / 2, 4.0) }),
    )?;
    run(
        "heavy churn (8 joins/s)",
        Some(ChurnModel { mean_lifetime_ms: Some(4000.0), ..ChurnModel::growing(n / 2, 8.0) }),
    )?;

    println!();
    println!(
        "Timestamps stayed {} bytes throughout; joins needed only a state snapshot from one \
         member — no global reconfiguration (contrast: vector clocks must resize everywhere).",
        100 * 8
    );
    Ok(())
}
