//! Figure 3: error rate vs `K` for N ∈ {500, 1000, 1500, 2000} at a
//! constant per-process receive rate of 200 msg/s (R = 100).
//!
//! The paper reports the empirical minimum at `K = 4` against the
//! theoretical `ln(2)·100/20 ≈ 3.5`.
//!
//! ```text
//! PCB_SCALE=0.25 cargo run --release -p pcb-bench --bin fig3
//! ```

use pcb_analysis::optimal_k;
use pcb_sim::{figure3, figure3_defaults, render_csv, render_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Figure 3", "errors vs K, constant 200 msg/s received per node, R = 100");
    let (ns, ks) = figure3_defaults();
    let rows = figure3(pcb_bench::sweep_options(), &ns, &ks)?;

    println!(
        "{}",
        render_table("Figure 3 — violation rate per delivery", "N", &rows, |p| p.n.to_string())
    );

    // Per-N empirical optimum vs theory.
    let x = rows.first().map_or(20.0, |r| r.concurrency);
    println!("theoretical optimum K = ln(2)*100/{x:.0} = {:.2}", optimal_k(100, x));
    for &n in &ns {
        let best = rows
            .iter()
            .filter(|r| r.n == n)
            .min_by(|a, b| a.violation_rate.total_cmp(&b.violation_rate));
        if let Some(best) = best {
            println!("N = {n:>5}: measured best K = {} (rate {:.3e})", best.k, best.violation_rate);
        }
    }

    pcb_bench::maybe_write_csv("fig3", &render_csv(&rows));
    Ok(())
}
