//! Telemetry overhead guard: a disabled trace sink must be (nearly)
//! free on the protocol's hottest path.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin telemetry_overhead
//! ```
//!
//! Runs the `pending_wakeup` bench's reversed-FIFO cascade (`P`
//! messages, every one blocked until the chain head lands) through the
//! wake-up engine twice: the untraced entry points
//! (`insert`/`on_clock_advance`/`pop_ready`) and the hooked ones
//! (`insert_tracked`/`on_clock_advance_with`/`pop_ready_entry`) feeding
//! a **disabled** [`Tracer`]. Rounds interleave and the minimum per
//! variant is compared, so scheduler noise cancels; the hooked path must
//! stay within 5% (plus a small absolute floor for timer noise) of the
//! untraced baseline, and the disabled sink must have recorded nothing.
//! Exits non-zero on either failure — the `scripts/verify.sh --trace`
//! guard for "observability is free when off".

use std::hint::black_box;
use std::time::{Duration, Instant};

use pcb_broadcast::{InsertVerdict, Message, MessageId, WakeupIndex};
use pcb_clock::{KeySet, KeySpace, ProbClock, ProcessId};
use pcb_telemetry::{TraceEvent, Tracer};

const R: usize = 32;
const K: usize = 2;
const P: usize = 10_000;
const ROUNDS: usize = 30;

/// The sender's FIFO chain: `count` messages stamped in sequence
/// (mirrors `benches/pending_wakeup.rs`).
fn chain(space: KeySpace, count: usize) -> Vec<Message<()>> {
    let keys = std::sync::Arc::new(KeySet::from_entries(space, &[0, 1]).expect("entries in range"));
    let mut sender = ProbClock::new(space);
    (0..count)
        .map(|i| {
            let ts = sender.stamp_send(&keys);
            Message::new(MessageId::new(ProcessId::new(0), i as u64 + 1), keys.clone(), ts, ())
        })
        .collect()
}

/// Preloads the index with the chain minus its head, fully reversed so
/// everything blocks, via the untraced `insert`.
fn preload(space: KeySpace, count: usize) -> (WakeupIndex<()>, ProbClock, Message<()>) {
    let mut msgs = chain(space, count);
    let head = msgs.remove(0);
    msgs.reverse();
    let clock = ProbClock::new(space);
    let mut index = WakeupIndex::new(R);
    for m in msgs {
        index.insert(0, m, &clock);
    }
    assert_eq!(index.stats().ready_on_arrival, 0, "preload must stay blocked");
    (index, clock, head)
}

/// One cascade through the untraced entry points.
fn cascade_untraced(mut index: WakeupIndex<()>, mut clock: ProbClock, head: Message<()>) -> usize {
    index.insert(0, head, &clock);
    let mut delivered = 0;
    while let Some(m) = index.pop_ready() {
        clock.record_delivery(m.keys());
        let keys: Vec<usize> = m.keys().iter().collect();
        delivered += 1;
        index.on_clock_advance(keys, &clock);
    }
    delivered
}

/// The same cascade through the tracing hooks with a disabled sink —
/// emitting exactly the events the instrumented `PcbProcess` would.
fn cascade_hooked(
    mut index: WakeupIndex<()>,
    mut clock: ProbClock,
    head: Message<()>,
    tracer: &mut Tracer,
) -> usize {
    match index.insert_tracked(0, head, &clock) {
        InsertVerdict::Ready => {}
        InsertVerdict::Parked { entry, required } => {
            tracer.emit(|| TraceEvent::Parked {
                sender: 0,
                seq: 1,
                entry: entry as u32,
                threshold: required,
            });
        }
    }
    let mut delivered = 0;
    while let Some((arrived, m)) = index.pop_ready_entry() {
        clock.record_delivery(m.keys());
        let (sender, seq) = (m.id().sender().index_u32(), m.id().seq());
        tracer.emit(|| TraceEvent::Delivered {
            sender,
            seq,
            blocked_for: arrived,
            alert4: false,
            alert5: false,
            violation: false,
        });
        let keys: Vec<usize> = m.keys().iter().collect();
        delivered += 1;
        index.on_clock_advance_with(keys, &clock, |woken, entry| {
            let (sender, seq) = (woken.id().sender().index_u32(), woken.id().seq());
            tracer.emit(|| TraceEvent::Woken { sender, seq, entry: entry as u32 });
        });
    }
    delivered
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner(
        "telemetry_overhead",
        "disabled trace sink on the unblock cascade must cost < 5%",
    );
    let space = KeySpace::new(R, K)?;
    let seed = preload(space, P);
    let mut tracer = Tracer::disabled();

    // Warm up both paths once (page in the clones, settle the allocator).
    let (i0, c0, h0) = seed.clone();
    assert_eq!(cascade_untraced(i0, c0, h0), P);
    let (i1, c1, h1) = seed.clone();
    assert_eq!(cascade_hooked(i1, c1, h1, &mut tracer), P);

    let mut best_untraced = Duration::MAX;
    let mut best_hooked = Duration::MAX;
    for _ in 0..ROUNDS {
        let (index, clock, head) = seed.clone();
        let t = Instant::now();
        let delivered = cascade_untraced(index, clock, head);
        best_untraced = best_untraced.min(t.elapsed());
        assert_eq!(black_box(delivered), P);

        let (index, clock, head) = seed.clone();
        let t = Instant::now();
        let delivered = cascade_hooked(index, clock, head, &mut tracer);
        best_hooked = best_hooked.min(t.elapsed());
        assert_eq!(black_box(delivered), P);
    }

    println!(
        "cascade of {P}: untraced {:>10.1?}  hooked(disabled sink) {:>10.1?}  ratio {:.3}",
        best_untraced,
        best_hooked,
        best_hooked.as_secs_f64() / best_untraced.as_secs_f64()
    );

    if !tracer.is_empty() || tracer.dropped() > 0 {
        return Err(format!(
            "disabled tracer recorded events: len {} dropped {}",
            tracer.len(),
            tracer.dropped()
        )
        .into());
    }

    // 5% relative budget plus 50µs absolute floor so sub-millisecond
    // baselines don't fail on timer granularity.
    let budget = best_untraced.mul_f64(1.05) + Duration::from_micros(50);
    if best_hooked > budget {
        return Err(format!(
            "telemetry overhead too high: hooked {best_hooked:?} exceeds budget {budget:?} \
             (untraced {best_untraced:?})"
        )
        .into());
    }
    println!("telemetry_overhead: OK (disabled sink within budget, zero events recorded)");
    Ok(())
}
