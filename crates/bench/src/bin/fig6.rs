//! Figure 6: error rate vs `N` at a *constant* per-process receive rate
//! of 200 msg/s (λ scales with N), R = 100, K = 4.
//!
//! The paper: flat at and above the N = 1000 estimate — it is the
//! concurrency `X`, not `N` itself, that drives the error rate; below the
//! estimate each node sends faster and the rate rises.
//!
//! ```text
//! PCB_SCALE=0.25 cargo run --release -p pcb-bench --bin fig6
//! ```

use pcb_sim::{figure6, figure6_defaults, render_csv, render_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner(
        "Figure 6",
        "error rate vs N at constant 200 msg/s received per node, R = 100, K = 4",
    );
    let ns = figure6_defaults();
    let rows = figure6(pcb_bench::sweep_options(), &ns)?;

    println!(
        "{}",
        render_table("Figure 6 — violation rate per delivery", "N", &rows, |p| p.n.to_string())
    );

    let rates: Vec<f64> = rows.iter().map(|r| r.violation_rate).collect();
    if let (Some(first), Some(last)) = (rates.first(), rates.last()) {
        println!(
            "smallest-N rate {first:.3e} vs largest-N rate {last:.3e} — constant X keeps the \
             curve flat at the high end (paper's conclusion: concurrency, not N, matters)"
        );
    }

    pcb_bench::maybe_write_csv("fig6", &render_csv(&rows));
    Ok(())
}
