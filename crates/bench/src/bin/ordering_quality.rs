//! Ordering-judgment quality across the `(N, R, K)` design space (§2's
//! lineage made quantitative): how often are truly *concurrent* sends
//! falsely judged ordered by the constant-size stamps? Lamport clocks
//! order everything (false-order rate → 1), vector clocks nothing → 0,
//! and the paper's `(R, K)` stamps interpolate.
//!
//! Plausibility is asserted throughout: truly ordered pairs are never
//! judged reversed or concurrent.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin ordering_quality
//! ```

use pcb_clock::{
    compare::{judge, JudgmentQuality},
    AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProbClock, ProcessId, Timestamp, VectorClock,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Sample {
    prob_ts: Timestamp,
    keys: KeySet,
    true_ts: VectorClock,
}

/// Random broadcast history over `n` processes: each step one process
/// delivers a random subset of undelivered messages (respecting nothing —
/// this is about *send* stamps, not delivery order) and then broadcasts.
fn history(
    space: KeySpace,
    policy: AssignmentPolicy,
    n: usize,
    steps: usize,
    seed: u64,
) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assigner = KeyAssigner::new(space, policy, seed ^ 0xABCD);
    let keys: Vec<KeySet> = assigner.assign_n(n).expect("assignment");
    let mut prob: Vec<ProbClock> = (0..n).map(|_| ProbClock::new(space)).collect();
    let mut truth: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
    let mut delivered: Vec<Vec<bool>> = (0..n).map(|_| Vec::new()).collect();
    let mut samples: Vec<(usize, Sample)> = Vec::new();

    for _ in 0..steps {
        let s = rng.random_range(0..n);
        // Deliver a random subset of what s has not yet seen, in send
        // order, but only through the protocol's own guard — exactly as
        // a PcbProcess would admit them.
        for (idx, (origin, sample)) in samples.iter().enumerate() {
            if delivered[s].len() <= idx {
                delivered[s].push(false);
            }
            if *origin != s
                && !delivered[s][idx]
                && rng.random_bool(0.4)
                && prob[s].is_deliverable(&sample.prob_ts, &sample.keys)
            {
                prob[s].record_delivery(&sample.keys);
                truth[s].record_delivery(&sample.true_ts, ProcessId::new(*origin));
                delivered[s][idx] = true;
            }
        }
        let prob_ts = prob[s].stamp_send(&keys[s]);
        let true_ts = truth[s].stamp_send(ProcessId::new(s));
        samples.push((s, Sample { prob_ts, keys: keys[s].clone(), true_ts }));
        for d in &mut delivered {
            d.resize(samples.len(), false);
        }
        let last = samples.len() - 1;
        delivered[s][last] = true; // own message counts as seen
    }
    samples.into_iter().map(|(_, s)| s).collect()
}

fn assess(samples: &[Sample]) -> JudgmentQuality {
    let mut q = JudgmentQuality::default();
    for i in 0..samples.len() {
        for j in i + 1..samples.len() {
            let a = &samples[i];
            let b = &samples[j];
            let truth = a.true_ts.compare(&b.true_ts);
            let judged = judge(&a.prob_ts, &a.keys, &b.prob_ts, &b.keys);
            q.record(truth, judged);
        }
    }
    q
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner(
        "Ordering quality",
        "false-order rate of (R, K) stamps on truly concurrent sends",
    );
    let n = 24;
    let steps = 400;
    println!(
        "{:>18} {:>10} {:>12} {:>14} {:>10}",
        "clock", "pairs", "concurrent", "false-ordered", "rate"
    );
    let configs: &[(&str, usize, usize, AssignmentPolicy)] = &[
        ("lamport (1,1)", 1, 1, AssignmentPolicy::UniformRandom),
        ("plausible (8,1)", 8, 1, AssignmentPolicy::UniformRandom),
        ("plausible (32,1)", 32, 1, AssignmentPolicy::UniformRandom),
        ("prob (16,2)", 16, 2, AssignmentPolicy::UniformRandom),
        ("prob (32,3)", 32, 3, AssignmentPolicy::UniformRandom),
        ("prob (100,4)", 100, 4, AssignmentPolicy::UniformRandom),
        ("vector (24,1)", n, 1, AssignmentPolicy::RoundRobin),
    ];
    let mut last_rate = f64::INFINITY;
    for &(name, r, k, policy) in configs {
        let space = KeySpace::new(r, k)?;
        let samples = history(space, policy, n, steps, pcb_bench::seed());
        let q = assess(&samples);
        assert_eq!(q.ordered_reversed, 0, "plausibility: never reverse true order");
        assert_eq!(q.ordered_missed, 0, "dominance must capture true order");
        println!(
            "{name:>18} {:>10} {:>12} {:>14} {:>10.4}",
            q.total(),
            q.concurrent_correct + q.concurrent_false_order,
            q.concurrent_false_order,
            q.false_order_rate()
        );
        let _ = last_rate;
        last_rate = q.false_order_rate();
    }
    println!();
    println!(
        "Lamport orders (almost) everything, the vector configuration nothing; the paper's \
         stamps buy accuracy with R·K — the same trade the delivery guard exploits."
    );
    Ok(())
}
