//! Figure 5: error rate vs `N` with λ fixed at 5000 ms (aggregate load
//! grows with `N`), R = 100, K = 4.
//!
//! The paper: the error rate climbs quickly once `N` exceeds the design
//! point of 1000 processes.
//!
//! ```text
//! PCB_SCALE=0.25 cargo run --release -p pcb-bench --bin fig5
//! ```

use pcb_sim::{figure5, figure5_defaults, render_csv, render_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("Figure 5", "error rate vs N at λ = 5000 ms, R = 100, K = 4");
    let ns = figure5_defaults();
    let rows = figure5(pcb_bench::sweep_options(), &ns)?;

    println!(
        "{}",
        render_table("Figure 5 — violation rate per delivery", "N", &rows, |p| p.n.to_string())
    );

    let at = |n: usize| rows.iter().find(|r| r.n == n);
    if let (Some(design), Some(big)) = (at(1000), at(2000)) {
        println!(
            "N = 2000 rate is {:.1}x the N = 1000 rate (paper: growth past the estimate)",
            big.violation_rate / design.violation_rate.max(1e-12)
        );
    }

    pcb_bench::maybe_write_csv("fig5", &render_csv(&rows));
    Ok(())
}
