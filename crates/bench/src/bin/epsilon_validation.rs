//! §5.4.1 methodology check: the paper's ε_min/ε_max bounds versus the
//! exact ground-truth violation count, plus Algorithm 4/5 alert rates.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin epsilon_validation
//! ```

use pcb_clock::KeySpace;
use pcb_sim::{epsilon_validation, runner, simulate_prob_detecting, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pcb_bench::banner("§5.4.1", "ε_min / exact / ε_max bracketing and detector precision");

    // A configuration loaded well past the design point so violations are
    // plentiful: small N, constant 200 msg/s receive rate.
    let n = 120;
    let v = epsilon_validation(
        pcb_sim::SweepOptions {
            scale: pcb_bench::scale().max(0.2),
            seed: pcb_bench::seed(),
            reps: 1,
            threads: 1,
        },
        n,
    )?;
    let m = &v.metrics;
    println!(
        "N = {n}, R = {}, K = {}, {} deliveries",
        runner::PAPER_R,
        runner::PAPER_K,
        m.deliveries
    );
    println!();
    println!("{:>22} {:>12} {:>12}", "metric", "count", "per delivery");
    println!("{:>22} {:>12} {:>12.3e}", "ε_min (paper lower)", m.eps_min, m.eps_min_rate());
    println!("{:>22} {:>12} {:>12.3e}", "exact violations", m.exact_violations, m.violation_rate());
    println!("{:>22} {:>12} {:>12.3e}", "ε_max (paper upper)", m.eps_max, m.eps_max_rate());
    println!();
    assert!(v.brackets_exact(), "bounds must bracket the exact count");
    println!("ε_min <= exact <= ε_max holds: the paper's §5.4.1 methodology is validated.");
    println!();

    // Detector precision on the same workload, with the Algorithm 5
    // recent list sized to ~2 propagation delays.
    let cfg = SimConfig {
        n,
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * pcb_bench::scale().max(0.2),
        seed: pcb_bench::seed(),
        track_epsilon: false,
        ..SimConfig::default()
    }
    .with_constant_receive_rate(runner::PAPER_RECEIVE_RATE);
    let space = KeySpace::new(runner::PAPER_R, runner::PAPER_K).expect("paper space");
    let d = simulate_prob_detecting(&cfg, space, 200.0)?;
    println!("=== Detector alert rates (Algorithm 4 vs Algorithm 5, window 200 ms) ===\n");
    println!("{:>22} {:>12} {:>12}", "signal", "count", "per delivery");
    println!("{:>22} {:>12} {:>12.3e}", "Algorithm 4 alerts", d.alg4_alerts, d.alg4_rate());
    println!("{:>22} {:>12} {:>12.3e}", "Algorithm 5 alerts", d.alg5_alerts, d.alg5_rate());
    println!("{:>22} {:>12} {:>12.3e}", "exact violations", d.exact_violations, d.violation_rate());
    println!();
    println!(
        "Algorithm 5 cuts the alert volume {:.1}x while staying conservative.",
        d.alg4_alerts as f64 / (d.alg5_alerts.max(1)) as f64
    );
    println!();

    // The paper sizes L to O(T_propagation); sweep the window to show the
    // sensitivity: too short misses witnesses, longer saturates.
    println!("=== Algorithm 5 recent-list window sweep ===\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "window (ms)", "alg5 alerts", "per delivery", "vs alg4"
    );
    for window_ms in [25.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
        let m = simulate_prob_detecting(&cfg, space, window_ms)?;
        println!(
            "{window_ms:>12} {:>14} {:>14.3e} {:>13.1}x",
            m.alg5_alerts,
            m.alg5_rate(),
            m.alg4_alerts as f64 / (m.alg5_alerts.max(1)) as f64
        );
    }
    println!();
    println!(
        "A window of ~1-2 propagation delays (100-200 ms here) captures the concurrent witnesses; \
         growing it further adds little — matching the paper's O(T_propagation) sizing."
    );
    Ok(())
}
