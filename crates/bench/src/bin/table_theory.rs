//! §5.3 theory table: `P_error(R, K, X)` across `K`, the optimum
//! `K_min = ln(2)·R/X`, and dimensioning examples.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin table_theory
//! ```

use pcb_analysis::{
    best_for_r, causal_reorder_probability, compression_vs_vector_clock, entry_covered_probability,
    error_probability, k_sweep, optimal_k, optimal_k_integer, plan_for_target,
    predicted_violation_rate,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== §5.3 theory: P_error(R, K, X) = (1 - (1 - 1/R)^(K·X))^K ===\n");

    // The paper's working point.
    let (r, x) = (100usize, 20.0f64);
    println!("R = {r}, X = {x} (200 msg/s aggregate × 100 ms propagation)");
    println!(
        "per-entry coverage at K = 4: {:.4} (the Bloom-filter load factor)",
        entry_covered_probability(r, 4, x)
    );
    println!("ideal K = ln(2)·{r}/{x:.0} = {:.3}", optimal_k(r, x));
    println!("best integer K = {}", optimal_k_integer(r, x));
    println!();

    println!("{:>4} {:>14}", "K", "P_error");
    for point in k_sweep(r, 12, x) {
        println!("{:>4} {:>14.5e}", point.k, point.p_error);
    }
    println!();

    println!("=== Optimal K and P_error for other (R, X) points ===\n");
    println!("{:>6} {:>6} {:>4} {:>14}", "R", "X", "K*", "P_error(K*)");
    for &(r, x) in &[(50usize, 20.0f64), (100, 20.0), (200, 20.0), (100, 10.0), (100, 40.0)] {
        let plan = best_for_r(r, x);
        println!("{r:>6} {x:>6.0} {:>4} {:>14.5e}", plan.k, plan.p_error);
    }
    println!();

    println!("=== Dimensioning for a target error at X = 20 ===\n");
    println!("{:>10} {:>6} {:>4} {:>12} {:>18}", "target", "R", "K", "bytes", "vs VC (N=10^4)");
    for target in [1e-2, 1e-3, 1e-4, 1e-5, 1e-6] {
        let plan = plan_for_target(20.0, target, 1_000_000)?;
        println!(
            "{target:>10.0e} {:>6} {:>4} {:>12} {:>17.1}x",
            plan.r,
            plan.k,
            plan.wire_bytes,
            compression_vs_vector_clock(&plan, 10_000)
        );
    }
    println!();

    println!("sanity: P_error(100, 4, 20) = {:.5}", error_probability(100, 4, 20.0));
    println!();

    println!("=== P <= P_nc · P_error: first-principles end-to-end estimate ===\n");
    let sigma_total = (20.0f64 * 20.0 + 20.0 * 20.0).sqrt();
    let p_nc = causal_reorder_probability(100.0, 0.0, sigma_total);
    println!("P_nc (causal pair, zero think time, σ_tot = {sigma_total:.1} ms): {p_nc:.4}");
    println!(
        "predicted violation rate at the §5.4.3 point: {:.3e} (measured ≈ 3.4e-4; the \
         pending buffer absorbs part of the reorders, so measurements sit below this \
         estimate — same decade)",
        predicted_violation_rate(100, 4, 200.0, 100.0, sigma_total)
    );
    Ok(())
}
