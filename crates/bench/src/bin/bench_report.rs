//! Machine-readable performance snapshot: measures the hot paths this
//! repo optimizes and writes them to a JSON trajectory file so each PR's
//! numbers are comparable to the last.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin bench_report -- \
//!     [--out BENCH_pr6.json] [--threads N] [--check]
//! ```
//!
//! Sections:
//!
//! * `throughput` — endpoint msgs/s through `PcbProcess` broadcast +
//!   delivery (stamp, wake-up engine, dedup, detectors all included);
//! * `wire` — bytes/msg of the v2 full-vector frame vs the v3 delta
//!   chain at `R = 100`, `K ∈ {1..8}`, steady state (cadence 32);
//! * `sweep` — wall-clock of one figure-3 sweep at 1 thread vs
//!   `--threads` workers (output is byte-identical either way);
//! * `batch` — contended multi-producer wire ingest: 8 delta-encoded
//!   senders into one `Endpoint::handle_wire_batch` receiver, scaling
//!   table at 1/2/4/8 threads vs the sequential `handle_wire` loop,
//!   with a determinism smoke (bit-identical deliveries at every thread
//!   count) that runs on any machine;
//! * `pending_wakeup` — per-arrival latency and work counters of the
//!   entry-indexed wake-up engine on its reversed-FIFO worst case.
//!
//! With `--check` the run enforces the regression thresholds from
//! `scripts/verify.sh --perf` and exits non-zero on any violation:
//! delta ≤ 0.35× full at `(100, 4)`; 8-thread sweep ≥ 4× 1-thread and
//! 8-thread batch ingest ≥ 4× sequential (both gates only on ≥ 8 cores,
//! otherwise printed as an explicit `SKIPPED (n cores)` marker); wake-up
//! engine still waking ≤ 1.05 waiters per delivery with unit fan-out on
//! the FIFO chain (the PR 1 numbers).

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use pcb_broadcast::endpoint::{Endpoint, Output};
use pcb_broadcast::{wire, DeltaEncoder, Message, MessageId, PcbConfig, PcbProcess, WakeupIndex};
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProbClock, ProcessId};
use pcb_sim::{runner, SweepOptions};

/// A steady-state single-sender stream at `(r, k)`: every third send is
/// preceded by a foreign delivery so stamps move outside the sender's
/// own key set too.
fn stream(r: usize, k: usize, n: usize) -> Vec<Message<Bytes>> {
    let space = KeySpace::new(r, k).expect("valid space");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 7);
    let keys_a = assigner.next_set().expect("keys");
    let keys_b = assigner.next_set().expect("keys");
    let mut a = PcbProcess::new(ProcessId::new(0), keys_a);
    let mut b = PcbProcess::new(ProcessId::new(1), keys_b);
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                let m = b.broadcast(Bytes::new());
                let _ = a.on_receive(m, i as u64);
            }
            a.broadcast(Bytes::from(vec![i as u8; i % 5]))
        })
        .collect()
}

/// Mean frame size over the steady-state tail (frames `warmup..n`).
fn mean_tail(sizes: &[usize], warmup: usize) -> f64 {
    let tail = &sizes[warmup.min(sizes.len())..];
    tail.iter().sum::<usize>() as f64 / tail.len().max(1) as f64
}

struct WirePoint {
    k: usize,
    full_bytes: f64,
    delta_bytes: f64,
}

impl WirePoint {
    fn ratio(&self) -> f64 {
        self.delta_bytes / self.full_bytes
    }
}

/// Bytes/msg for v2 full frames vs the v3 delta chain at `(100, k)`.
fn wire_point(k: usize) -> WirePoint {
    const N: usize = 256;
    const WARMUP: usize = 64;
    let msgs = stream(100, k, N);
    let full: Vec<usize> = msgs.iter().map(|m| wire::encode(m).len()).collect();
    let mut encoder = DeltaEncoder::default();
    let delta: Vec<usize> = msgs.iter().map(|m| encoder.encode(m).len()).collect();
    WirePoint { k, full_bytes: mean_tail(&full, WARMUP), delta_bytes: mean_tail(&delta, WARMUP) }
}

/// Endpoint throughput: broadcast `n` messages on one process and
/// deliver them (in order) on another; msgs/s over the whole pipeline.
fn throughput(n: usize) -> f64 {
    let space = KeySpace::new(100, 4).expect("paper space");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 11);
    let mut sender: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(0), assigner.next_set().expect("keys"));
    let mut receiver: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(1), assigner.next_set().expect("keys"));
    let payload = Bytes::from(vec![0u8; 32]);
    let start = Instant::now();
    let mut delivered = 0usize;
    for i in 0..n {
        let m = sender.broadcast(payload.clone());
        delivered += receiver.on_receive(m, i as u64).len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(delivered, n, "in-order FIFO chain delivers everything");
    n as f64 / secs
}

/// Wall-clock of one small figure-3 sweep at the given thread count,
/// plus the rendered CSV — the sweep's full observable output — so runs
/// at different thread counts can be diffed byte-for-byte.
fn sweep_secs(threads: usize) -> (usize, f64, String) {
    let opts =
        SweepOptions { scale: 0.1 * pcb_bench::scale().max(0.25), seed: 5, reps: 2, threads };
    let ns = [150, 200];
    let ks = [2, 4, 6, 8];
    let jobs = ns.len() * ks.len() * opts.reps;
    let start = Instant::now();
    let points = runner::figure3(opts, &ns, &ks).expect("sweep runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(points.len(), ns.len() * ks.len());
    (jobs, secs, pcb_sim::render_csv(&points))
}

const BATCH_SENDERS: usize = 8;
const BATCH_CHUNK: usize = 512;

/// One row of the batch-ingest scaling table.
struct BatchRow {
    threads: usize,
    msgs_per_sec: f64,
    speedup: f64,
}

struct BatchScaling {
    frames: usize,
    seq_msgs_per_sec: f64,
    rows: Vec<BatchRow>,
}

/// A contended multi-producer wire trace: `BATCH_SENDERS` independent
/// senders over the shared `(100, 4)` space, each with its own delta
/// chain, interleaved round-robin. Senders never observe each other, so
/// every frame is deliverable on arrival — the bench measures pure
/// decode + pre-scan + delivery throughput, not blocking.
fn batch_trace(msgs_per_sender: usize) -> (Vec<(u64, Bytes)>, pcb_clock::KeySet) {
    let space = KeySpace::new(100, 4).expect("paper space");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 13);
    let mut senders: Vec<PcbProcess<Bytes>> = (0..BATCH_SENDERS)
        .map(|i| PcbProcess::new(ProcessId::new(i), assigner.next_set().expect("keys")))
        .collect();
    let receiver_keys = assigner.next_set().expect("keys");
    let mut encoders: Vec<DeltaEncoder> =
        (0..BATCH_SENDERS).map(|_| DeltaEncoder::new(32)).collect();
    let payload = Bytes::from(vec![0u8; 32]);
    let mut frames = Vec::with_capacity(BATCH_SENDERS * msgs_per_sender);
    for round in 0..msgs_per_sender {
        for (s, sender) in senders.iter_mut().enumerate() {
            let m = sender.broadcast(payload.clone());
            frames.push(((round * BATCH_SENDERS + s) as u64, encoders[s].encode(&m)));
        }
    }
    (frames, receiver_keys)
}

fn batch_receiver(keys: &pcb_clock::KeySet) -> Endpoint<Bytes> {
    // Recovery disabled: the bench isolates the ingest path.
    Endpoint::new(ProcessId::new(BATCH_SENDERS), keys.clone(), PcbConfig::default(), None)
}

fn delivery_ids(outs: &[Output<Bytes>]) -> Vec<MessageId> {
    outs.iter()
        .filter_map(|o| match o {
            Output::Deliver(d) => Some(d.message.id()),
            _ => None,
        })
        .collect()
}

/// Sequential `handle_wire` loop vs `handle_wire_batch` at 1/2/4/8
/// threads; asserts bit-identical deliveries at every thread count (the
/// determinism smoke that runs on any machine, any core count).
fn batch_scaling(msgs_per_sender: usize) -> BatchScaling {
    let (frames, receiver_keys) = batch_trace(msgs_per_sender);

    let mut seq = batch_receiver(&receiver_keys);
    let start = Instant::now();
    let mut seq_ids = Vec::with_capacity(frames.len());
    for (at, frame) in &frames {
        let outs = seq.handle_wire(frame.clone(), *at).expect("in-order chain decodes");
        seq_ids.extend(delivery_ids(&outs));
    }
    let seq_secs = start.elapsed().as_secs_f64();
    assert_eq!(seq_ids.len(), frames.len(), "independent senders: all deliverable on arrival");
    let seq_msgs_per_sec = frames.len() as f64 / seq_secs;

    let rows = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let mut ep = batch_receiver(&receiver_keys);
            ep.set_parallel(threads);
            let start = Instant::now();
            let mut ids = Vec::with_capacity(frames.len());
            for chunk in frames.chunks(BATCH_CHUNK) {
                let (outs, errors) = ep.handle_wire_batch(chunk);
                assert!(errors.is_empty(), "in-order chain decodes");
                ids.extend(delivery_ids(&outs));
            }
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(ids, seq_ids, "batch ingest at {threads} threads diverged");
            BatchRow { threads, msgs_per_sec: frames.len() as f64 / secs, speedup: seq_secs / secs }
        })
        .collect();
    BatchScaling { frames: frames.len(), seq_msgs_per_sec, rows }
}

struct Wakeup {
    arrivals: usize,
    ns_per_arrival: f64,
    gap_checks: u64,
    wakeups: u64,
    max_wake_fanout: u64,
}

/// The wake-up engine's worst case from PR 1: a single-sender FIFO
/// chain arriving fully reversed. The indexed engine wakes exactly one
/// waiter per delivery here; any regression shows up both in the work
/// counters and in the per-arrival latency.
fn pending_wakeup(n: usize) -> Wakeup {
    let space = KeySpace::new(8, 2).expect("valid space");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 3);
    let mut sender: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(0), assigner.next_set().expect("keys"));
    let mut arrivals: Vec<Message<Bytes>> =
        (0..n).map(|i| sender.broadcast(Bytes::from(vec![i as u8; 8]))).collect();
    arrivals.reverse();

    let mut clock = ProbClock::new(space);
    let mut index = WakeupIndex::new(clock.len());
    let mut delivered = 0usize;
    let start = Instant::now();
    for (t, m) in arrivals.iter().enumerate() {
        index.insert(t as u64, m.clone(), &clock);
        while let Some(d) = index.pop_ready() {
            clock.record_delivery(d.keys());
            let advanced: Vec<usize> = d.keys().iter().collect();
            delivered += 1;
            index.on_clock_advance(advanced, &clock);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(delivered, n, "the reversed chain fully delivers");
    let stats = index.stats();
    Wakeup {
        arrivals: n,
        ns_per_arrival: secs * 1e9 / n as f64,
        gap_checks: stats.gap_checks,
        wakeups: stats.wakeups,
        max_wake_fanout: stats.max_wake_fanout,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pr6.json".to_string());
    let threads = pcb_bench::threads();
    let cores = pcb_sim::pool::default_threads();

    pcb_bench::banner("bench_report", "perf trajectory snapshot (wire, sweep, wake-up)");

    eprintln!("measuring endpoint throughput ...");
    let msgs_per_sec = throughput(20_000);

    eprintln!("measuring wire sizes at R = 100, K = 1..8 ...");
    let wire_points: Vec<WirePoint> = (1..=8).map(wire_point).collect();
    let ratio_at_k4 = wire_points[3].ratio();

    eprintln!("timing the figure-3 sweep at 1 vs {threads} thread(s) ...");
    let (jobs, secs_1, csv_1) = sweep_secs(1);
    let (_, secs_n, csv_n) = sweep_secs(threads);
    let speedup = secs_1 / secs_n;
    assert_eq!(csv_1, csv_n, "sweep output diverged at {threads} threads");
    // The determinism smoke must exercise real fan-out even on a small
    // machine, where `threads` defaults to 1: force a 4-way run too.
    let smoke_threads = threads.max(4);
    if smoke_threads != threads {
        let (_, _, csv_smoke) = sweep_secs(smoke_threads);
        assert_eq!(csv_1, csv_smoke, "sweep output diverged at {smoke_threads} threads");
    }
    println!("sweep determinism smoke: OK (byte-identical at 1/{threads}/{smoke_threads} threads)");

    eprintln!("measuring batched wire ingest at 1/2/4/8 threads ...");
    let batch = batch_scaling(2_500);
    let batch_speedup_at_8 =
        batch.rows.iter().find(|r| r.threads == 8).map(|r| r.speedup).unwrap_or(0.0);
    println!("batch determinism smoke: OK (bit-identical deliveries at 1/2/4/8 threads)");

    eprintln!("measuring the pending-wakeup cascade ...");
    let wakeup = pending_wakeup(2000);
    let wakeups_per_delivery = wakeup.wakeups as f64 / wakeup.arrivals as f64;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"throughput\": {{ \"messages\": 20000, \"msgs_per_sec\": {msgs_per_sec:.0} }},"
    );
    let _ = writeln!(json, "  \"wire\": {{");
    let _ = writeln!(json, "    \"r\": 100,");
    let _ = writeln!(json, "    \"full_every\": 32,");
    let _ = writeln!(json, "    \"ratio_at_k4\": {ratio_at_k4:.4},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in wire_points.iter().enumerate() {
        let comma = if i + 1 < wire_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"k\": {}, \"full_bytes_per_msg\": {:.1}, \"delta_bytes_per_msg\": {:.1}, \"ratio\": {:.4} }}{comma}",
            p.k, p.full_bytes, p.delta_bytes, p.ratio()
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"sweep\": {{ \"jobs\": {jobs}, \"wall_secs_1_thread\": {secs_1:.3}, \"wall_secs_n_threads\": {secs_n:.3}, \"speedup\": {speedup:.2} }},"
    );
    let _ = writeln!(json, "  \"batch\": {{");
    let _ = writeln!(json, "    \"senders\": {BATCH_SENDERS},");
    let _ = writeln!(json, "    \"frames\": {},", batch.frames);
    let _ = writeln!(json, "    \"chunk\": {BATCH_CHUNK},");
    let _ = writeln!(json, "    \"seq_msgs_per_sec\": {:.0},", batch.seq_msgs_per_sec);
    let _ = writeln!(json, "    \"rows\": [");
    for (i, r) in batch.rows.iter().enumerate() {
        let comma = if i + 1 < batch.rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"threads\": {}, \"msgs_per_sec\": {:.0}, \"speedup\": {:.2} }}{comma}",
            r.threads, r.msgs_per_sec, r.speedup
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"pending_wakeup\": {{ \"arrivals\": {}, \"ns_per_arrival\": {:.0}, \"gap_checks\": {}, \"wakeups\": {}, \"wakeups_per_delivery\": {wakeups_per_delivery:.3}, \"max_wake_fanout\": {} }}",
        wakeup.arrivals, wakeup.ns_per_arrival, wakeup.gap_checks, wakeup.wakeups, wakeup.max_wake_fanout
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json)?;
    println!("{json}");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        if ratio_at_k4 > 0.35 {
            failures.push(format!("delta ratio at (100,4) is {ratio_at_k4:.3}, budget is 0.35"));
        }
        if cores >= 8 && threads >= 8 && speedup < 4.0 {
            failures.push(format!("sweep speedup at {threads} threads is {speedup:.2}x, need 4x"));
        } else if cores < 8 {
            println!("sweep speedup gate: SKIPPED ({cores} cores < 8)");
        }
        if cores >= 8 && batch_speedup_at_8 < 4.0 {
            failures.push(format!(
                "batch ingest speedup at 8 threads is {batch_speedup_at_8:.2}x, need 4x"
            ));
        } else if cores < 8 {
            println!("batch speedup gate: SKIPPED ({cores} cores < 8)");
        }
        if wakeups_per_delivery > 1.05 || wakeup.max_wake_fanout > 1 {
            failures.push(format!(
                "wake-up engine regressed: {wakeups_per_delivery:.3} wakeups/delivery \
                 (fanout {}), PR 1 delivers 1.000 (fanout 1)",
                wakeup.max_wake_fanout
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            return Err("perf check failed".into());
        }
        println!("perf check: OK");
    }
    Ok(())
}
