//! Deterministic chaos soak: generate a [`pcb_sim::FaultPlan`] from a
//! seed, run it under both the probabilistic and the exact (vector)
//! discipline, and fail loudly if the cluster does not converge or the
//! safety oracle records an undetected causal violation.
//!
//! ```text
//! cargo run --release -p pcb-bench --bin chaos_soak -- [seed [n [duration_ms]]] [--threads T]
//! ```
//!
//! Every run prints the plan in its replayable text form; to re-run a
//! failing plan bit-identically, pass the same seed again (or use
//! `scripts/replay.sh <seed>`). With no arguments the soak sweeps a
//! small fixed seed set — the `scripts/verify.sh --chaos` stage.

use pcb_clock::KeySpace;
use pcb_sim::{chaos_run, chaos_run_vector, ChaosOutcome};

fn report(label: &str, outcome: &ChaosOutcome) {
    let m = &outcome.metrics;
    println!(
        "  {label:<8} delivered {:>7}  undelivered {:>3}  stuck {:>3}  crashes {}  \
         restores {}  refetched {:>5}  dropped {:>5}  dup {:>4}  corrupt {:>4}",
        m.deliveries,
        m.undelivered,
        m.stuck,
        m.crashes,
        m.recovery.snapshot_restores,
        m.recovery.refetched,
        m.partition_dropped + m.link_dropped,
        m.duplicate_frames,
        m.corrupted_frames,
    );
}

fn soak(seed: u64, n: usize, duration_ms: f64, prob: ChaosOutcome, vector: ChaosOutcome) -> bool {
    println!("seed {seed} (n = {n}, {duration_ms} ms):");
    for line in prob.plan.to_text().lines() {
        println!("    | {line}");
    }
    report("prob", &prob);
    report("vector", &vector);

    // The exact discipline is the safety yardstick: it must converge with
    // zero causal violations and zero oracle misses. The probabilistic
    // discipline must converge too; its (rare) violations are the paper's
    // point, but every one must have been flagged by a detector.
    let mut ok = true;
    if !vector.converged() || vector.metrics.exact_violations > 0 {
        println!("  FAIL: vector run did not converge cleanly");
        ok = false;
    }
    if vector.metrics.undetected_violations > 0 || prob.metrics.undetected_violations > 0 {
        println!("  FAIL: the safety oracle saw a violation no detector alerted on");
        ok = false;
    }
    if !prob.converged() {
        println!("  FAIL: probabilistic run did not converge");
        ok = false;
    }
    ok
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Positional args, with the shared --threads flag filtered out.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    while let Some(pos) = args.iter().position(|a| a.starts_with("--threads")) {
        args.remove(pos);
        if pos < args.len() && !args[pos].starts_with("--") && args[pos].parse::<usize>().is_ok() {
            args.remove(pos); // the flag's separate value
        }
    }
    let n: usize = args.get(1).map_or(Ok(9), |s| s.parse())?;
    let duration_ms: f64 = args.get(2).map_or(Ok(4000.0), |s| s.parse())?;
    let seeds: Vec<u64> = match args.first() {
        Some(s) => vec![s.parse()?],
        None => vec![3, 17, 41, 0xC0FFEE],
    };

    pcb_bench::banner("Chaos soak", "seeded fault plans, replayed under prob and vector");
    // Each (seed, discipline) run is independent and fully determined by
    // its seed: fan them out, then report in seed order.
    let space = KeySpace::new(100, 4)?;
    let runs = pcb_sim::pool::run_indexed(pcb_bench::threads(), seeds.len() * 2, |job| {
        let seed = seeds[job / 2];
        if job % 2 == 0 {
            chaos_run(seed, n, duration_ms, space)
        } else {
            chaos_run_vector(seed, n, duration_ms)
        }
    });
    let mut all_ok = true;
    for (i, &seed) in seeds.iter().enumerate() {
        let prob = runs[i * 2].clone()?;
        let vector = runs[i * 2 + 1].clone()?;
        all_ok &= soak(seed, n, duration_ms, prob, vector);
    }
    if !all_ok {
        return Err("chaos soak failed — replay with scripts/replay.sh <seed>".into());
    }
    println!("chaos soak: OK");
    Ok(())
}
