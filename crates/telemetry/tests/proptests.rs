//! Property tests: histogram merge semantics and trace serialization.

use pcb_telemetry::{parse_jsonl, write_jsonl, Hist, TraceEvent, TraceRecord};
use proptest::prelude::*;

fn hist_of(xs: &[f64]) -> Hist {
    let mut h = Hist::new();
    for &x in xs {
        h.push(x);
    }
    h
}

/// One random trace record, all nine event kinds reachable.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let fields = (
        0u8..9,                                            // kind selector
        (0u64..1 << 40, 0u32..1024),                       // (time, node)
        (0u32..1024, 1u64..1 << 40),                       // message id (sender, seq)
        collection::vec((0u32..256, 0u64..1 << 30), 0..4), // keys + key_vals
        (0u32..256, 0u64..1 << 30),                        // (entry, threshold)
        (any::<bool>(), any::<bool>(), any::<bool>()),     // delivery flags
        0u32..1 << 20,                                     // suspects
    );
    fields.prop_map(|(kind, (time, node), (sender, seq), kv, (entry, threshold), flags, sus)| {
        let keys: Vec<u32> = kv.iter().map(|&(k, _)| k).collect();
        let key_vals: Vec<u64> = kv.iter().map(|&(_, v)| v).collect();
        let event = match kind {
            0 => TraceEvent::Sent { sender, seq, keys, key_vals },
            1 => TraceEvent::Received { sender, seq },
            2 => TraceEvent::Parked { sender, seq, entry, threshold },
            3 => TraceEvent::Woken { sender, seq, entry },
            4 => TraceEvent::Delivered {
                sender,
                seq,
                blocked_for: threshold,
                alert4: flags.0,
                alert5: flags.1,
                violation: flags.2,
            },
            5 => TraceEvent::Alert { alg: if flags.0 { 4 } else { 5 }, sender, seq, suspects: sus },
            6 => TraceEvent::Refetched { sender, seq },
            7 => TraceEvent::SnapshotTaken,
            _ => TraceEvent::SnapshotRestored,
        };
        TraceRecord { time, node, event }
    })
}

proptest! {
    /// Merging two histograms preserves the total count, the exact sum,
    /// and the exact min/max.
    #[test]
    fn merge_preserves_count_sum_extrema(
        a in collection::vec(1e-6f64..1e6, 0..200),
        b in collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let union: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = hist_of(&union);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.sum() - direct.sum()).abs() <= 1e-9 * direct.sum().abs());
        if merged.count() > 0 {
            prop_assert_eq!(merged.min(), direct.min());
            prop_assert_eq!(merged.max(), direct.max());
        }
    }

    /// Merge is bucket-exact: merging the parts gives bit-identical
    /// quantiles to pushing the union into one histogram.
    #[test]
    fn merge_equals_union(
        a in collection::vec(1e-6f64..1e6, 1..200),
        b in collection::vec(1e-6f64..1e6, 1..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = hist_of(&union);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q).to_bits(), direct.quantile(q).to_bits());
        }
    }

    /// Quantiles never escape the exact `[min, max]` envelope and are
    /// monotone in `q`.
    #[test]
    fn quantiles_bounded_and_monotone(
        xs in collection::vec(1e-6f64..1e6, 1..300),
        mut qs in collection::vec(0.001f64..1.0, 2..8),
    ) {
        let h = hist_of(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(0.0f64, f64::max);
        qs.sort_by(f64::total_cmp);
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for &v in &vals {
            prop_assert!(v >= lo && v <= hi, "quantile {v} outside [{lo}, {hi}]");
        }
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]), "quantiles not monotone: {vals:?}");
    }

    /// A quantile estimate brackets the true order statistic: never
    /// below it, at most one sub-bucket (25%) above.
    #[test]
    fn quantile_tracks_order_statistic(
        mut xs in collection::vec(1e-6f64..1e6, 1..300),
        q in 0.001f64..1.0,
    ) {
        let h = hist_of(&xs);
        xs.sort_by(f64::total_cmp);
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        let truth = xs[rank - 1];
        let est = h.quantile(q);
        prop_assert!(
            est >= truth && est <= truth * 1.2500001,
            "quantile({q}) = {est} vs order statistic {truth}"
        );
    }

    /// Every trace event survives the JSONL round trip bit-exactly.
    #[test]
    fn jsonl_round_trips(records in collection::vec(arb_record(), 0..50)) {
        let text = write_jsonl(&records);
        let back = parse_jsonl(&text).expect("own output must parse");
        prop_assert_eq!(back, records);
    }
}
