//! Per-node trace sinks: a fixed-capacity ring behind a nullable handle.
//!
//! Cost model, from cheapest to dearest:
//!
//! * **feature `trace` off** — [`Tracer::emit`] has an empty body; the
//!   event-constructing closure is never called, so instrumentation
//!   compiles to nothing (the compile-time no-op guarantee).
//! * **runtime-disabled** (`Tracer::disabled()` or capacity 0) — one
//!   `Option` null-check per emit; the closure is still never called, so
//!   no event is built and nothing allocates.
//! * **enabled** — the closure builds the event and the ring stores it;
//!   on overflow the *oldest* record is dropped and a counter ticks, so
//!   a bounded ring under sustained traffic keeps the most recent window.

use std::collections::VecDeque;

use crate::event::{TraceEvent, TraceRecord};

/// The live sink state (only exists for enabled tracers).
#[derive(Debug, Clone)]
struct Ring {
    node: u32,
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
    now: u64,
}

impl Ring {
    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord { time: self.now, node: self.node, event });
    }
}

/// A node's handle on its trace ring; `None` inside means disabled.
///
/// The tracer carries its own notion of "now" ([`Tracer::advance`]) so
/// call sites without a clock in scope (e.g. `broadcast` in the protocol
/// core) still stamp events with the last observed time.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Box<Ring>>);

impl Tracer {
    /// A sink that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A ring sink for `node` holding at most `capacity` records
    /// (capacity 0 means disabled).
    #[must_use]
    pub fn ring(node: u32, capacity: usize) -> Self {
        if capacity == 0 {
            return Tracer(None);
        }
        Tracer(Some(Box::new(Ring {
            node,
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            now: 0,
        })))
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |r| r.buf.len())
    }

    /// Whether nothing is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by ring overflow since the last [`Tracer::drain`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |r| r.dropped)
    }

    /// Advances the tracer's clock (monotone: stale times are ignored).
    pub fn advance(&mut self, now: u64) {
        if let Some(ring) = self.0.as_deref_mut() {
            ring.now = ring.now.max(now);
        }
    }

    /// Emits an event at the tracer's current time. The closure only runs
    /// when the sink is enabled, so building the event costs nothing on
    /// the disabled path.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        #[cfg(feature = "trace")]
        if let Some(ring) = self.0.as_deref_mut() {
            let event = f();
            ring.push(event);
        }
        #[cfg(not(feature = "trace"))]
        let _ = f;
    }

    /// [`Tracer::advance`] then [`Tracer::emit`] in one call.
    #[inline]
    pub fn emit_at(&mut self, now: u64, f: impl FnOnce() -> TraceEvent) {
        self.advance(now);
        self.emit(f);
    }

    /// Removes and returns everything held, oldest first, resetting the
    /// overflow counter. The tracer stays enabled.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        match self.0.as_deref_mut() {
            Some(ring) => {
                ring.dropped = 0;
                ring.buf.drain(..).collect()
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn received(sender: u32, seq: u64) -> TraceEvent {
        TraceEvent::Received { sender, seq }
    }

    #[test]
    fn disabled_never_builds_events() {
        let mut t = Tracer::disabled();
        t.advance(5);
        t.emit(|| panic!("closure must not run on the disabled path"));
        assert!(!t.enabled());
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        assert!(!Tracer::ring(3, 0).enabled());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn records_carry_node_and_time() {
        let mut t = Tracer::ring(7, 8);
        t.emit_at(100, || received(1, 1));
        t.advance(50); // stale: clock must not go backwards
        t.emit(|| received(1, 2));
        let out = t.drain();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].time, out[0].node), (100, 7));
        assert_eq!(out[1].time, 100);
        assert!(t.is_empty(), "drain empties the ring");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut t = Tracer::ring(0, 2);
        for seq in 1..=5 {
            t.emit_at(seq, || received(9, seq));
        }
        assert_eq!(t.dropped(), 3);
        let out = t.drain();
        let seqs: Vec<u64> = out
            .iter()
            .map(|r| match r.event {
                TraceEvent::Received { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![4, 5], "most recent window survives");
        assert_eq!(t.dropped(), 0, "drain resets the overflow counter");
    }
}
