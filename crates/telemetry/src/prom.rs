//! Prometheus-style text exposition: a small writer plus a validator.
//!
//! The writer produces the text format scrapers expect (`# HELP` /
//! `# TYPE` headers followed by `name{label="value"} 1234` samples); the
//! validator checks a produced page line-by-line so tests and the verify
//! gate can assert "parses as Prometheus text format" without a scraper.

use std::fmt::Write as _;

/// Incremental builder for one exposition page.
///
/// ```
/// use pcb_telemetry::PromWriter;
/// let mut w = PromWriter::new();
/// w.header("pcb_node_sent_total", "counter", "Messages broadcast by the node.");
/// w.sample("pcb_node_sent_total", &[("node", "0")], 42.0);
/// let text = w.into_text();
/// assert!(pcb_telemetry::validate(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty page.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits the `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`, `summary`,
    /// `untyped`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line with the given labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished page.
    #[must_use]
    pub fn into_text(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Splits `name{labels}` into the name and the raw label body (if any),
/// returning `None` on malformed bracing.
fn split_labels(s: &str) -> Option<(&str, Option<&str>)> {
    match s.find('{') {
        None => Some((s, None)),
        Some(open) => {
            let close = s.rfind('}')?;
            if close != s.len() - 1 || close < open {
                return None;
            }
            Some((&s[..open], Some(&s[open + 1..close])))
        }
    }
}

/// Validates one `k="v"` label pair list (trailing comma allowed).
fn validate_labels(body: &str, lineno: usize) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '=' in {{{body}}}"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("line {lineno}: bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("line {lineno}: label value must be quoted"));
        }
        // Scan the quoted value honouring backslash escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &after[i + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("line {lineno}: expected ',' between labels"));
        }
    }
    Ok(())
}

/// Checks that `text` is well-formed Prometheus exposition text: every
/// non-comment line is `name[{labels}] value [timestamp]` with a legal
/// metric name, legal label syntax, and a parseable value, and every
/// `# HELP`/`# TYPE` header names a legal metric (TYPE with a known
/// kind). Returns the first problem found.
pub fn validate(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: bad metric name in HELP"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: bad metric name in TYPE"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
            }
            // Other '#' lines are free-form comments.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(|c: char| c.is_ascii_whitespace()) {
            Some(split) if !line[..split].contains('{') || line[..split].ends_with('}') => {
                (&line[..split], line[split..].trim_start())
            }
            _ => {
                // Label values may contain spaces: split after the closing
                // brace instead.
                match line.rfind('}') {
                    Some(close) => (&line[..=close], line[close + 1..].trim_start()),
                    None => return Err(format!("line {lineno}: sample line without value")),
                }
            }
        };
        let Some((name, labels)) = split_labels(name_part) else {
            return Err(format!("line {lineno}: malformed label braces"));
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if let Some(body) = labels {
            validate_labels(body, lineno)?;
        }
        let mut fields = rest.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {lineno}: missing sample value"));
        };
        if !valid_value(value) {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {lineno}: bad timestamp {ts:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {lineno}: trailing tokens after timestamp"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let mut w = PromWriter::new();
        w.header("pcb_node_delivered_total", "counter", "Messages delivered.");
        w.sample("pcb_node_delivered_total", &[("node", "0")], 12.0);
        w.sample("pcb_node_delivered_total", &[("node", "1")], 9.0);
        w.header("pcb_node_pending", "gauge", "Messages blocked in the pending set.");
        w.sample("pcb_node_pending", &[], 3.0);
        let text = w.into_text();
        assert!(validate(&text).is_ok(), "{text}");
        assert!(text.contains("pcb_node_delivered_total{node=\"0\"} 12"));
    }

    #[test]
    fn labels_with_spaces_and_escapes_validate() {
        let mut w = PromWriter::new();
        w.sample("x_total", &[("name", "a b"), ("quote", "say \"hi\"")], 1.5);
        assert!(validate(&w.into_text()).is_ok());
    }

    #[test]
    fn special_values_and_timestamps_validate() {
        assert!(validate("x_total 1e-3\ny_total +Inf\nz_total 4 1712345678\n").is_ok());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate("9bad_name 1\n").is_err());
        assert!(validate("x_total\n").is_err());
        assert!(validate("x_total abc\n").is_err());
        assert!(validate("x_total{node=0} 1\n").is_err(), "unquoted label value");
        assert!(validate("x_total{node=\"0\" 1\n").is_err(), "unclosed brace");
        assert!(validate("# TYPE x_total widget\n").is_err(), "unknown type");
        assert!(validate("x_total 1 2 3\n").is_err(), "trailing tokens");
    }
}
