//! Observability layer for the probabilistic causal broadcast stack.
//!
//! The protocol's headline property is *explainable* probabilistic error:
//! an Algorithm 4/5 alert means "this delivery may have jumped a missing
//! message whose `K` entries were covered by concurrent traffic". This
//! crate turns that from a counter tick into visible events:
//!
//! * [`event`] — the typed lifecycle vocabulary (`Sent`, `Received`,
//!   `Parked`, `Woken`, `Delivered`, `Alert`, `Refetched`,
//!   `SnapshotTaken`/`SnapshotRestored`);
//! * [`ring`] — per-node fixed-capacity ring sinks ([`Tracer`]) with a
//!   compile-time no-op path when the `trace` feature is disabled and a
//!   single-branch path when disabled at runtime;
//! * [`jsonl`] — dependency-free JSONL serialization and parsing so
//!   traces survive the process that produced them;
//! * [`hist`] — log-bucketed, mergeable latency histograms (p50/p90/p99)
//!   replacing mean-only accumulators;
//! * [`prom`] — Prometheus-style text exposition (writer + validator);
//! * [`explain`] — replays a trace and reconstructs, for each flagged
//!   delivery, the causal story: the missing predecessor, the concurrent
//!   messages whose `K`-entry increments covered it, and the in-flight
//!   count `X` at that instant.
//!
//! The crate is deliberately leaf-level (no dependencies): every layer of
//! the stack — protocol core, simulator, live runtime, benches — can
//! instrument itself without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod explain;
pub mod hist;
pub mod jsonl;
pub mod prom;
pub mod ring;

pub use event::{TraceEvent, TraceRecord};
pub use explain::{explain, Covering, ExplainMode, ExplainReport, Explanation, MissingStory};
pub use hist::Hist;
pub use jsonl::{parse_jsonl, parse_line, write_jsonl, write_record, ParseError};
pub use prom::{validate, PromWriter};
pub use ring::Tracer;
