//! Trace replay and causal alert explanation.
//!
//! The paper's Algorithm 4 alert (and the simulator's exact-checker
//! violation flag) says *that* a delivery may have jumped a missing
//! predecessor; this module reconstructs *which* one and *why* it was
//! invisible. Replaying `Sent`/`Delivered`/`Snapshot*` records rebuilds,
//! per node, exactly the state the protocol had: the `R`-entry clock, the
//! per-entry increment log (who advanced each entry to which value), the
//! delivered set, and a true vector timestamp per message (derived purely
//! from event order — no oracle data rides in the trace). For each
//! flagged delivery `m` at node `k` the replay then names:
//!
//! * the **missing predecessors** — every `(sender, seq)` in `m`'s causal
//!   past not yet delivered at `k`;
//! * per missing predecessor `p`, the **covering messages** — deliveries
//!   at `k` concurrent with `p` whose increments advanced `p`'s `K`
//!   entries, i.e. the concrete Bloom-filter collision that let the guard
//!   pass without `p` (values up to `p`'s own stamp heights);
//! * the **in-flight count `X`** at that instant — sent but undelivered-
//!   at-`k` messages, the `X` in `P_error = (1-(1-1/R)^{K·X})^K`.
//!
//! Crash recovery is honoured: `SnapshotTaken` checkpoints the replay
//! state and `SnapshotRestored` rolls back to it and re-applies the
//! node's own WAL'd sends, mirroring the engine's restore path, so
//! post-recovery flags replay against the same state the checker saw.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::event::{TraceEvent, TraceRecord};

/// Which deliveries to explain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// Every delivery the exact checker flagged (`violation` set) —
    /// simulator traces.
    Violations,
    /// Every delivery with an Algorithm 4 alert (`alert4` set) — works on
    /// live traces, where no oracle exists and alerts may be false
    /// alarms.
    Alerts,
}

/// One concurrent message that advanced a covered entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Covering {
    /// Originating node of the covering message.
    pub sender: u32,
    /// Its sequence number.
    pub seq: u64,
    /// The clock entry its delivery advanced.
    pub entry: u32,
    /// The entry value after that delivery's increment.
    pub value: u64,
}

/// One missing predecessor and the traffic that masked it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingStory {
    /// Originating node of the missing message.
    pub sender: u32,
    /// Its sequence number.
    pub seq: u64,
    /// When it was sent (absent if its `Sent` fell out of the ring).
    pub sent_time: Option<u64>,
    /// Its `K` clock entries (empty if unknown).
    pub keys: Vec<u32>,
    /// Concurrent deliveries at the explaining node whose increments
    /// covered those entries.
    pub covering: Vec<Covering>,
}

/// The reconstructed causal story of one flagged delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// Node the delivery happened at.
    pub node: u32,
    /// Delivery time (trace units).
    pub time: u64,
    /// Originating node of the delivered message.
    pub sender: u32,
    /// Its sequence number.
    pub seq: u64,
    /// Algorithm 4 alert flag on the delivery.
    pub alert4: bool,
    /// Algorithm 5 alert flag on the delivery.
    pub alert5: bool,
    /// Exact-checker violation flag on the delivery.
    pub violation: bool,
    /// Missing predecessors with their covering sets (empty for a false
    /// alarm: nothing was actually missing).
    pub missing: Vec<MissingStory>,
    /// Concurrent deliveries that advanced the delivered message's *own*
    /// sender entries up to its stamp heights — the coverage Algorithm 4
    /// reacted to, meaningful even when nothing is missing.
    pub self_covering: Vec<Covering>,
    /// Messages in flight (sent, not yet delivered here) at the instant
    /// of delivery — the measured `X` of the error model.
    pub inflight_x: u32,
}

impl Explanation {
    /// Total covering messages across all missing predecessors.
    #[must_use]
    pub fn covering_total(&self) -> usize {
        self.missing.iter().map(|m| m.covering.len()).sum()
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut flags = Vec::new();
        if self.violation {
            flags.push("exact violation");
        }
        if self.alert4 {
            flags.push("Alg-4 alert");
        }
        if self.alert5 {
            flags.push("Alg-5 alert");
        }
        writeln!(
            f,
            "p{}#{} delivered at node {} (t={}) [{}], in-flight X = {}",
            self.sender,
            self.seq,
            self.node,
            self.time,
            flags.join(", "),
            self.inflight_x
        )?;
        if self.missing.is_empty() {
            writeln!(
                f,
                "  no causal predecessor was missing — false alarm from concurrent traffic:"
            )?;
            for c in &self.self_covering {
                writeln!(
                    f,
                    "    p{}#{} advanced entry {} to {} (covering p{}'s key entries)",
                    c.sender, c.seq, c.entry, c.value, self.sender
                )?;
            }
        }
        for m in &self.missing {
            let sent = match m.sent_time {
                Some(t) => format!("sent t={t}"),
                None => "send not in trace".to_string(),
            };
            writeln!(
                f,
                "  missing predecessor p{}#{} ({}, keys {:?}):",
                m.sender, m.seq, sent, m.keys
            )?;
            if m.covering.is_empty() {
                writeln!(f, "    (no concurrent increment recorded on its entries)")?;
            }
            for c in &m.covering {
                writeln!(
                    f,
                    "    covered on entry {} by concurrent p{}#{} (advanced it to {})",
                    c.entry, c.sender, c.seq, c.value
                )?;
            }
        }
        Ok(())
    }
}

/// The outcome of explaining a whole trace.
#[derive(Debug, Clone, Default)]
pub struct ExplainReport {
    /// One entry per flagged delivery, in trace order.
    pub explanations: Vec<Explanation>,
    /// Deliveries replayed.
    pub deliveries: u64,
    /// Deliveries with the violation flag.
    pub violations: u64,
    /// Deliveries with the Algorithm 4 flag.
    pub alerts4: u64,
    /// Flagged deliveries that could not be explained because the
    /// message's `Sent` record was not in the trace (ring overflow).
    pub skipped_unknown: u64,
    /// `SnapshotRestored` records with no prior checkpoint in the trace.
    pub skipped_restores: u64,
}

/// A message's reconstructed identity card.
struct MsgInfo {
    sender: u32,
    seq: u64,
    sent_time: u64,
    keys: Vec<u32>,
    key_vals: Vec<u64>,
    /// True vector timestamp (indexed by node id), derived at `Sent`.
    tvc: Vec<u64>,
}

/// Replay state of one node.
#[derive(Clone, Default)]
struct NodeState {
    /// The `R`-entry probabilistic clock.
    clock: Vec<u64>,
    /// Per entry: `(message index, value after its increment)`, in
    /// delivery order.
    entry_log: Vec<Vec<(usize, u64)>>,
    /// Messages delivered here (own sends count as delivered).
    delivered: HashSet<(u32, u64)>,
    /// True vector clock (indexed by node id).
    tvc: Vec<u64>,
    /// Own sends observed so far (the WAL'd durable sequence).
    sent: u64,
}

fn grow(v: &mut Vec<u64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0);
    }
}

impl NodeState {
    fn apply_own_send(&mut self, node: u32, seq: u64, msg_idx: Option<usize>, msgs: &[MsgInfo]) {
        grow(&mut self.tvc, node as usize + 1);
        self.tvc[node as usize] += 1;
        self.delivered.insert((node, seq));
        if let Some(idx) = msg_idx {
            for &x in &msgs[idx].keys {
                let e = x as usize;
                grow(&mut self.clock, e + 1);
                if self.entry_log.len() <= e {
                    self.entry_log.resize_with(e + 1, Vec::new);
                }
                self.clock[e] += 1;
                self.entry_log[e].push((idx, self.clock[e]));
            }
        }
    }

    fn apply_delivery(&mut self, msg_idx: usize, msgs: &[MsgInfo]) {
        let m = &msgs[msg_idx];
        self.delivered.insert((m.sender, m.seq));
        grow(&mut self.tvc, m.tvc.len());
        for (mine, theirs) in self.tvc.iter_mut().zip(&m.tvc) {
            *mine = (*mine).max(*theirs);
        }
        for &x in &m.keys {
            let e = x as usize;
            grow(&mut self.clock, e + 1);
            if self.entry_log.len() <= e {
                self.entry_log.resize_with(e + 1, Vec::new);
            }
            self.clock[e] += 1;
            self.entry_log[e].push((msg_idx, self.clock[e]));
        }
    }
}

/// Whether message `c` is in the causal past of `p` (per reconstructed
/// true vector timestamps).
fn in_past(p: &MsgInfo, c: &MsgInfo) -> bool {
    p.tvc.get(c.sender as usize).copied().unwrap_or(0) >= c.seq
}

/// Collects concurrent increments at `st` on `keys`, up to `key_vals`
/// bounds, excluding `exclude_idx` and anything in `relative_to`'s past.
fn covering_on(
    st: &NodeState,
    msgs: &[MsgInfo],
    keys: &[u32],
    key_vals: &[u64],
    relative_to: &MsgInfo,
    exclude_idx: usize,
) -> Vec<Covering> {
    let mut out = Vec::new();
    for (i, &x) in keys.iter().enumerate() {
        let e = x as usize;
        let bound = key_vals.get(i).copied().unwrap_or(u64::MAX);
        let Some(log) = st.entry_log.get(e) else { continue };
        for &(c_idx, value) in log {
            if value > bound || c_idx == exclude_idx {
                continue;
            }
            let c = &msgs[c_idx];
            if in_past(relative_to, c) {
                continue;
            }
            out.push(Covering { sender: c.sender, seq: c.seq, entry: x, value });
        }
    }
    out
}

/// Replays a merged trace and explains every flagged delivery.
///
/// `records` must be time-sorted with each node's emission order
/// preserved on ties (what the simulator's and cluster's trace drains
/// produce). Flagged deliveries whose `Sent` record is absent (ring
/// overflow) are counted in [`ExplainReport::skipped_unknown`] rather
/// than mis-explained.
#[must_use]
pub fn explain(records: &[TraceRecord], mode: ExplainMode) -> ExplainReport {
    let mut report = ExplainReport::default();
    let mut msgs: Vec<MsgInfo> = Vec::new();
    let mut by_id: HashMap<(u32, u64), usize> = HashMap::new();
    let mut nodes: HashMap<u32, NodeState> = HashMap::new();
    let mut checkpoints: HashMap<u32, NodeState> = HashMap::new();

    for rec in records {
        match &rec.event {
            TraceEvent::Sent { sender, seq, keys, key_vals } => {
                let st = nodes.entry(rec.node).or_default();
                grow(&mut st.tvc, *sender as usize + 1);
                // tvc[self] tracks the send count; assignment self-heals
                // over gaps left by ring overflow.
                st.tvc[*sender as usize] = *seq;
                st.sent = st.sent.max(*seq);
                st.delivered.insert((*sender, *seq));
                let idx = msgs.len();
                msgs.push(MsgInfo {
                    sender: *sender,
                    seq: *seq,
                    sent_time: rec.time,
                    keys: keys.clone(),
                    key_vals: key_vals.clone(),
                    tvc: st.tvc.clone(),
                });
                by_id.insert((*sender, *seq), idx);
                // The send stamped its own entries: the sender's clock at
                // those entries *is* the stamp (assignment mirrors
                // `stamp_send`, staying exact across restores).
                for (i, &x) in keys.iter().enumerate() {
                    let e = x as usize;
                    grow(&mut st.clock, e + 1);
                    if st.entry_log.len() <= e {
                        st.entry_log.resize_with(e + 1, Vec::new);
                    }
                    st.clock[e] = key_vals.get(i).copied().unwrap_or(st.clock[e] + 1);
                    st.entry_log[e].push((idx, st.clock[e]));
                }
            }
            TraceEvent::Delivered { sender, seq, blocked_for: _, alert4, alert5, violation } => {
                report.deliveries += 1;
                report.violations += u64::from(*violation);
                report.alerts4 += u64::from(*alert4);
                let selected = match mode {
                    ExplainMode::Violations => *violation,
                    ExplainMode::Alerts => *alert4,
                };
                let Some(&idx) = by_id.get(&(*sender, *seq)) else {
                    // Unknown message (its Sent fell out of the ring):
                    // keep the delivered set honest, skip the story.
                    if selected {
                        report.skipped_unknown += 1;
                    }
                    nodes.entry(rec.node).or_default().delivered.insert((*sender, *seq));
                    continue;
                };
                let st = nodes.entry(rec.node).or_default();
                if selected {
                    let m = &msgs[idx];
                    let mut missing = Vec::new();
                    for (l, &need_raw) in m.tvc.iter().enumerate() {
                        let l = l as u32;
                        let need =
                            if l == m.sender { need_raw.saturating_sub(1) } else { need_raw };
                        for s in 1..=need {
                            if st.delivered.contains(&(l, s)) {
                                continue;
                            }
                            let (sent_time, keys, covering) = match by_id.get(&(l, s)) {
                                Some(&p_idx) => {
                                    let p = &msgs[p_idx];
                                    let cov =
                                        covering_on(st, &msgs, &p.keys, &p.key_vals, p, p_idx);
                                    (Some(p.sent_time), p.keys.clone(), cov)
                                }
                                None => (None, Vec::new(), Vec::new()),
                            };
                            missing.push(MissingStory {
                                sender: l,
                                seq: s,
                                sent_time,
                                keys,
                                covering,
                            });
                        }
                    }
                    let self_covering = covering_on(st, &msgs, &m.keys, &m.key_vals, m, idx);
                    let inflight_x = msgs
                        .iter()
                        .enumerate()
                        .filter(|(i, c)| {
                            *i != idx
                                && c.sent_time <= rec.time
                                && !st.delivered.contains(&(c.sender, c.seq))
                        })
                        .count() as u32;
                    report.explanations.push(Explanation {
                        node: rec.node,
                        time: rec.time,
                        sender: *sender,
                        seq: *seq,
                        alert4: *alert4,
                        alert5: *alert5,
                        violation: *violation,
                        missing,
                        self_covering,
                        inflight_x,
                    });
                }
                st.apply_delivery(idx, &msgs);
            }
            TraceEvent::SnapshotTaken => {
                let st = nodes.entry(rec.node).or_default().clone();
                checkpoints.insert(rec.node, st);
            }
            TraceEvent::SnapshotRestored => {
                let Some(cp) = checkpoints.get(&rec.node) else {
                    report.skipped_restores += 1;
                    continue;
                };
                let st = nodes.entry(rec.node).or_default();
                // Roll back to the checkpoint, then replay the WAL'd own
                // sends the crash wiped from volatile state — exactly the
                // engine's restore path.
                let durable = st.sent;
                let mut fresh = cp.clone();
                for s in (cp.sent + 1)..=durable {
                    let idx = by_id.get(&(rec.node, s)).copied();
                    fresh.apply_own_send(rec.node, s, idx, &msgs);
                }
                fresh.sent = durable;
                *st = fresh;
            }
            TraceEvent::Received { .. }
            | TraceEvent::Parked { .. }
            | TraceEvent::Woken { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::Refetched { .. } => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { time, node, event }
    }

    /// Hand-built collision: node 0 sends m1 on entries {0,1}; node 1
    /// delivers it and sends m2 (so m1 ∈ past(m2)) on entries {2,3};
    /// node 2 first delivers two concurrent messages covering entries 0
    /// and 1, then delivers m2 while m1 is still missing — a violation
    /// whose story must name m1 and the two covering messages.
    fn collision_trace() -> Vec<TraceRecord> {
        vec![
            // Concurrent senders 3 and 4 cover m1's entries at node 2.
            rec(
                10,
                3,
                TraceEvent::Sent { sender: 3, seq: 1, keys: vec![0, 5], key_vals: vec![1, 1] },
            ),
            rec(
                11,
                4,
                TraceEvent::Sent { sender: 4, seq: 1, keys: vec![1, 6], key_vals: vec![1, 1] },
            ),
            rec(
                20,
                0,
                TraceEvent::Sent { sender: 0, seq: 1, keys: vec![0, 1], key_vals: vec![1, 1] },
            ),
            // Node 1 delivers m1 and replies.
            rec(
                30,
                1,
                TraceEvent::Delivered {
                    sender: 0,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            rec(
                31,
                1,
                TraceEvent::Sent { sender: 1, seq: 1, keys: vec![2, 3], key_vals: vec![1, 1] },
            ),
            // Node 2: concurrent coverage first, then the jump.
            rec(
                40,
                2,
                TraceEvent::Delivered {
                    sender: 3,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            rec(
                41,
                2,
                TraceEvent::Delivered {
                    sender: 4,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            rec(
                50,
                2,
                TraceEvent::Delivered {
                    sender: 1,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: true,
                },
            ),
        ]
    }

    #[test]
    fn violation_story_names_missing_and_covering() {
        let report = explain(&collision_trace(), ExplainMode::Violations);
        assert_eq!(report.deliveries, 4);
        assert_eq!(report.violations, 1);
        assert_eq!(report.skipped_unknown, 0);
        assert_eq!(report.explanations.len(), 1);
        let e = &report.explanations[0];
        assert_eq!((e.node, e.sender, e.seq), (2, 1, 1));
        assert_eq!(e.missing.len(), 1, "exactly m1 is missing");
        let story = &e.missing[0];
        assert_eq!((story.sender, story.seq), (0, 1));
        assert_eq!(story.sent_time, Some(20));
        let mut coverers: Vec<(u32, u32)> =
            story.covering.iter().map(|c| (c.sender, c.entry)).collect();
        coverers.sort_unstable();
        assert_eq!(coverers, vec![(3, 0), (4, 1)], "both concurrent covers are named");
        // m1 was sent at t=20 and never delivered at node 2: in flight.
        assert!(e.inflight_x >= 1);
        let text = e.to_string();
        assert!(text.contains("missing predecessor p0#1"), "{text}");
        assert!(text.contains("covered on entry 0 by concurrent p3#1"), "{text}");
    }

    #[test]
    fn causal_past_is_excluded_from_covering() {
        // m1's own sender increments (from its Sent at node 0) are logged
        // at node 0, not node 2, and node 1's delivery of m1 is at node
        // 1 — so nothing in m1's past can appear; this asserts the
        // related invariant that m2 itself never covers its own missing
        // predecessor at node 2.
        let report = explain(&collision_trace(), ExplainMode::Violations);
        let story = &report.explanations[0].missing[0];
        assert!(story.covering.iter().all(|c| (c.sender, c.seq) != (1, 1)));
        assert!(story.covering.iter().all(|c| (c.sender, c.seq) != (0, 1)));
    }

    #[test]
    fn alerts_mode_explains_false_alarms() {
        // Same shape, but the flagged delivery carries alert4 without a
        // violation and nothing is actually missing: node 2 delivers m1
        // late, after concurrent traffic covered its entries.
        let mut t = collision_trace();
        t.truncate(3); // keep the three Sents
        t.push(rec(
            40,
            2,
            TraceEvent::Delivered {
                sender: 3,
                seq: 1,
                blocked_for: 0,
                alert4: false,
                alert5: false,
                violation: false,
            },
        ));
        t.push(rec(
            41,
            2,
            TraceEvent::Delivered {
                sender: 4,
                seq: 1,
                blocked_for: 0,
                alert4: false,
                alert5: false,
                violation: false,
            },
        ));
        t.push(rec(
            50,
            2,
            TraceEvent::Delivered {
                sender: 0,
                seq: 1,
                blocked_for: 0,
                alert4: true,
                alert5: false,
                violation: false,
            },
        ));
        let report = explain(&t, ExplainMode::Alerts);
        assert_eq!(report.explanations.len(), 1);
        let e = &report.explanations[0];
        assert!(e.missing.is_empty(), "false alarm: nothing missing");
        let mut covers: Vec<(u32, u32)> =
            e.self_covering.iter().map(|c| (c.sender, c.entry)).collect();
        covers.sort_unstable();
        assert_eq!(covers, vec![(3, 0), (4, 1)], "the covering traffic is still named");
        assert!(e.to_string().contains("false alarm"), "{e}");
    }

    #[test]
    fn snapshot_restore_rolls_back_delivered_state() {
        // Node 2 snapshots, delivers m_a, then restores: m_a must count
        // as missing again for a later flagged delivery that depends on
        // it.
        let t = vec![
            rec(5, 2, TraceEvent::SnapshotTaken),
            rec(
                10,
                3,
                TraceEvent::Sent { sender: 3, seq: 1, keys: vec![0, 1], key_vals: vec![1, 1] },
            ),
            rec(
                20,
                2,
                TraceEvent::Delivered {
                    sender: 3,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            // Node 1 delivers m_a and replies (m_a ∈ past(reply)).
            rec(
                25,
                1,
                TraceEvent::Delivered {
                    sender: 3,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            rec(
                26,
                1,
                TraceEvent::Sent { sender: 1, seq: 1, keys: vec![2, 3], key_vals: vec![1, 1] },
            ),
            // Crash + restore wipes node 2's delivery of m_a...
            rec(30, 2, TraceEvent::SnapshotRestored),
            // Concurrent cover for m_a's entries arrives post-restore.
            rec(
                35,
                4,
                TraceEvent::Sent { sender: 4, seq: 1, keys: vec![0, 1], key_vals: vec![1, 1] },
            ),
            rec(
                40,
                2,
                TraceEvent::Delivered {
                    sender: 4,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: false,
                },
            ),
            // ...so delivering the reply now jumps m_a again.
            rec(
                50,
                2,
                TraceEvent::Delivered {
                    sender: 1,
                    seq: 1,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: true,
                },
            ),
        ];
        let report = explain(&t, ExplainMode::Violations);
        assert_eq!(report.skipped_restores, 0);
        assert_eq!(report.explanations.len(), 1);
        let e = &report.explanations[0];
        assert_eq!(e.missing.len(), 1);
        assert_eq!((e.missing[0].sender, e.missing[0].seq), (3, 1));
        // Only the post-restore cover survives the rollback.
        assert_eq!(e.missing[0].covering.len(), 2, "p4#1 on entries 0 and 1");
        assert!(e.missing[0].covering.iter().all(|c| c.sender == 4));
    }

    #[test]
    fn own_send_replay_after_restore_restores_the_wal() {
        // Node 0 snapshots, sends twice, restores: its send count and
        // clock must survive (the WAL replay), so a fresh send continues
        // the sequence rather than reusing stamp heights.
        let t = vec![
            rec(5, 0, TraceEvent::SnapshotTaken),
            rec(
                10,
                0,
                TraceEvent::Sent { sender: 0, seq: 1, keys: vec![0, 1], key_vals: vec![1, 1] },
            ),
            rec(
                20,
                0,
                TraceEvent::Sent { sender: 0, seq: 2, keys: vec![0, 1], key_vals: vec![2, 2] },
            ),
            rec(30, 0, TraceEvent::SnapshotRestored),
            rec(
                40,
                0,
                TraceEvent::Sent { sender: 0, seq: 3, keys: vec![0, 1], key_vals: vec![3, 3] },
            ),
            // Node 1 delivers only #3 — #1 and #2 are missing, and the
            // trace must still know them after the restore.
            rec(
                50,
                1,
                TraceEvent::Delivered {
                    sender: 0,
                    seq: 3,
                    blocked_for: 0,
                    alert4: false,
                    alert5: false,
                    violation: true,
                },
            ),
        ];
        let report = explain(&t, ExplainMode::Violations);
        assert_eq!(report.explanations.len(), 1);
        let missing: Vec<u64> = report.explanations[0].missing.iter().map(|m| m.seq).collect();
        assert_eq!(missing, vec![1, 2]);
    }

    #[test]
    fn unknown_sent_is_skipped_not_misexplained() {
        let t = vec![rec(
            50,
            1,
            TraceEvent::Delivered {
                sender: 0,
                seq: 9,
                blocked_for: 0,
                alert4: false,
                alert5: false,
                violation: true,
            },
        )];
        let report = explain(&t, ExplainMode::Violations);
        assert!(report.explanations.is_empty());
        assert_eq!(report.skipped_unknown, 1);
    }
}
