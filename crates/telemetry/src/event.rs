//! The typed lifecycle-event vocabulary.
//!
//! Events are deliberately self-contained plain data — message identity
//! is the raw `(sender, seq)` pair and clock coordinates are raw entry
//! indices/values — so the crate stays dependency-free and a trace can be
//! interpreted long after the process (and its key assignment) is gone.
//! The [`crate::explain`] replayer reconstructs true vector timestamps
//! purely from `Sent`/`Delivered` ordering; nothing heavier needs to ride
//! on the wire.

/// One lifecycle event at one node.
///
/// Message-bearing variants identify the message by its origin:
/// `sender` is the originating node id and `seq` its per-sender sequence
/// number (1-based), matching `MessageId` display form `p<sender>#<seq>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The node broadcast a message.
    Sent {
        /// Originating node (equals the record's `node`).
        sender: u32,
        /// Per-sender sequence number, starting at 1.
        seq: u64,
        /// The sender's `K` clock entries.
        keys: Vec<u32>,
        /// Stamp values on those entries *after* the send increment —
        /// `key_vals[i]` is the stamp at entry `keys[i]`.
        key_vals: Vec<u64>,
    },
    /// A message arrived (post-dedup, pre-classification).
    Received {
        /// Originating node of the message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
    },
    /// The message's delivery guard failed; it parked on one clock entry.
    Parked {
        /// Originating node of the message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
        /// The clock entry (wake channel) it waits on.
        entry: u32,
        /// The value that entry must reach to re-check the guard.
        threshold: u64,
    },
    /// A delivery advanced the entry a parked message waited on.
    Woken {
        /// Originating node of the message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
        /// The entry whose advance woke it.
        entry: u32,
    },
    /// The message was handed to the application.
    Delivered {
        /// Originating node of the message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
        /// Time spent blocked in the pending set (trace time units).
        blocked_for: u64,
        /// Algorithm 4 (instant coverage) alert raised.
        alert4: bool,
        /// Algorithm 5 (recent-list witness) alert raised.
        alert5: bool,
        /// Ground-truth causal violation (simulator oracle only; always
        /// `false` in live traces, which have no oracle).
        violation: bool,
    },
    /// A detector fired on a delivery (one event per algorithm).
    Alert {
        /// Which detector: 4 (instant) or 5 (recent list).
        alg: u8,
        /// Originating node of the delivered message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
        /// Concurrency proxy: messages still pending at this node when
        /// the alert fired.
        suspects: u32,
    },
    /// A missing message was re-fetched via anti-entropy.
    Refetched {
        /// Originating node of the message.
        sender: u32,
        /// Its sequence number.
        seq: u64,
    },
    /// The node checkpointed its durable state.
    SnapshotTaken,
    /// The node restored from its last checkpoint (crash recovery).
    SnapshotRestored,
}

impl TraceEvent {
    /// The event's JSONL tag.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Sent { .. } => "Sent",
            TraceEvent::Received { .. } => "Received",
            TraceEvent::Parked { .. } => "Parked",
            TraceEvent::Woken { .. } => "Woken",
            TraceEvent::Delivered { .. } => "Delivered",
            TraceEvent::Alert { .. } => "Alert",
            TraceEvent::Refetched { .. } => "Refetched",
            TraceEvent::SnapshotTaken => "SnapshotTaken",
            TraceEvent::SnapshotRestored => "SnapshotRestored",
        }
    }
}

/// A timestamped event at a node.
///
/// `time` is whatever clock the emitting layer runs on — virtual
/// microseconds in the simulator, wall-clock milliseconds since the
/// cluster epoch in the live runtime. Merged traces must be sorted by
/// `time` with each node's emission order preserved on ties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Emission time (layer-defined unit).
    pub time: u64,
    /// The node the event happened at.
    pub node: u32,
    /// The event itself.
    pub event: TraceEvent,
}
