//! Dependency-free JSONL serialization for trace records.
//!
//! One record per line, as a flat object tagged by `"event"`:
//!
//! ```text
//! {"time":2000,"node":1,"event":"Parked","sender":0,"seq":2,"entry":4,"threshold":2}
//! ```
//!
//! The parser accepts the subset of JSON this writer produces — objects,
//! arrays, strings with simple escapes, booleans, `null`, and
//! *non-negative integers* (trace values are all unsigned; floats would
//! silently lose `u64` precision, so they are rejected instead).

use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceRecord};

/// A parse failure: the offending line (1-based) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line: 1, msg: msg.into() })
}

/// Serializes one record as a single JSON line (no trailing newline).
#[must_use]
pub fn write_record(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"time\":{},\"node\":{},\"event\":\"{}\"",
        rec.time,
        rec.node,
        rec.event.name()
    );
    match &rec.event {
        TraceEvent::Sent { sender, seq, keys, key_vals } => {
            let _ = write!(s, ",\"sender\":{sender},\"seq\":{seq},\"keys\":");
            write_u64_array(&mut s, keys.iter().map(|&k| u64::from(k)));
            s.push_str(",\"key_vals\":");
            write_u64_array(&mut s, key_vals.iter().copied());
        }
        TraceEvent::Received { sender, seq } | TraceEvent::Refetched { sender, seq } => {
            let _ = write!(s, ",\"sender\":{sender},\"seq\":{seq}");
        }
        TraceEvent::Parked { sender, seq, entry, threshold } => {
            let _ = write!(
                s,
                ",\"sender\":{sender},\"seq\":{seq},\"entry\":{entry},\"threshold\":{threshold}"
            );
        }
        TraceEvent::Woken { sender, seq, entry } => {
            let _ = write!(s, ",\"sender\":{sender},\"seq\":{seq},\"entry\":{entry}");
        }
        TraceEvent::Delivered { sender, seq, blocked_for, alert4, alert5, violation } => {
            let _ = write!(
                s,
                ",\"sender\":{sender},\"seq\":{seq},\"blocked_for\":{blocked_for},\
                 \"alert4\":{alert4},\"alert5\":{alert5},\"violation\":{violation}"
            );
        }
        TraceEvent::Alert { alg, sender, seq, suspects } => {
            let _ = write!(
                s,
                ",\"alg\":{alg},\"sender\":{sender},\"seq\":{seq},\"suspects\":{suspects}"
            );
        }
        TraceEvent::SnapshotTaken | TraceEvent::SnapshotRestored => {}
    }
    s.push('}');
    s
}

fn write_u64_array(s: &mut String, vals: impl Iterator<Item = u64>) {
    s.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
}

/// Serializes records as JSONL (one line each, trailing newline).
#[must_use]
pub fn write_jsonl(records: &[TraceRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 96);
    for rec in records {
        s.push_str(&write_record(rec));
        s.push('\n');
    }
    s
}

// --- Minimal JSON value parser -----------------------------------------

/// The JSON subset the trace format uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) => err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return err("floating-point numbers are not part of the trace format");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<u64>() {
            Ok(v) => Ok(Json::Num(v)),
            Err(_) => err(format!("number out of range at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| ParseError { line: 1, msg: "unterminated escape".into() })?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        other => return err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError { line: 1, msg: "invalid UTF-8".into() })?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// --- Record reconstruction ---------------------------------------------

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, ParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError { line: 1, msg: format!("missing field \"{key}\"") })
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, ParseError> {
    match field(obj, key)? {
        Json::Num(v) => Ok(*v),
        _ => err(format!("field \"{key}\" must be an unsigned integer")),
    }
}

fn get_u32(obj: &[(String, Json)], key: &str) -> Result<u32, ParseError> {
    u32::try_from(get_u64(obj, key)?)
        .map_err(|_| ParseError { line: 1, msg: format!("field \"{key}\" exceeds u32") })
}

fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, ParseError> {
    match field(obj, key)? {
        Json::Bool(v) => Ok(*v),
        _ => err(format!("field \"{key}\" must be a boolean")),
    }
}

fn get_u64_array(obj: &[(String, Json)], key: &str) -> Result<Vec<u64>, ParseError> {
    match field(obj, key)? {
        Json::Arr(items) => items
            .iter()
            .map(|item| match item {
                Json::Num(v) => Ok(*v),
                _ => err(format!("field \"{key}\" must hold unsigned integers")),
            })
            .collect(),
        _ => err(format!("field \"{key}\" must be an array")),
    }
}

/// Parses one JSONL line into a record.
pub fn parse_line(line: &str) -> Result<TraceRecord, ParseError> {
    let mut p = Parser::new(line);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing garbage at byte {}", p.pos));
    }
    let Json::Obj(obj) = value else {
        return err("a trace line must be a JSON object");
    };
    let time = get_u64(&obj, "time")?;
    let node = get_u32(&obj, "node")?;
    let Json::Str(tag) = field(&obj, "event")? else {
        return err("field \"event\" must be a string");
    };
    let event = match tag.as_str() {
        "Sent" => {
            let keys = get_u64_array(&obj, "keys")?
                .into_iter()
                .map(|v| {
                    u32::try_from(v)
                        .map_err(|_| ParseError { line: 1, msg: "key entry exceeds u32".into() })
                })
                .collect::<Result<Vec<u32>, _>>()?;
            TraceEvent::Sent {
                sender: get_u32(&obj, "sender")?,
                seq: get_u64(&obj, "seq")?,
                keys,
                key_vals: get_u64_array(&obj, "key_vals")?,
            }
        }
        "Received" => {
            TraceEvent::Received { sender: get_u32(&obj, "sender")?, seq: get_u64(&obj, "seq")? }
        }
        "Parked" => TraceEvent::Parked {
            sender: get_u32(&obj, "sender")?,
            seq: get_u64(&obj, "seq")?,
            entry: get_u32(&obj, "entry")?,
            threshold: get_u64(&obj, "threshold")?,
        },
        "Woken" => TraceEvent::Woken {
            sender: get_u32(&obj, "sender")?,
            seq: get_u64(&obj, "seq")?,
            entry: get_u32(&obj, "entry")?,
        },
        "Delivered" => TraceEvent::Delivered {
            sender: get_u32(&obj, "sender")?,
            seq: get_u64(&obj, "seq")?,
            blocked_for: get_u64(&obj, "blocked_for")?,
            alert4: get_bool(&obj, "alert4")?,
            alert5: get_bool(&obj, "alert5")?,
            violation: get_bool(&obj, "violation")?,
        },
        "Alert" => TraceEvent::Alert {
            alg: u8::try_from(get_u64(&obj, "alg")?)
                .map_err(|_| ParseError { line: 1, msg: "field \"alg\" exceeds u8".into() })?,
            sender: get_u32(&obj, "sender")?,
            seq: get_u64(&obj, "seq")?,
            suspects: get_u32(&obj, "suspects")?,
        },
        "Refetched" => {
            TraceEvent::Refetched { sender: get_u32(&obj, "sender")?, seq: get_u64(&obj, "seq")? }
        }
        "SnapshotTaken" => TraceEvent::SnapshotTaken,
        "SnapshotRestored" => TraceEvent::SnapshotRestored,
        other => return err(format!("unknown event \"{other}\"")),
    };
    Ok(TraceRecord { time, node, event })
}

/// Parses a whole JSONL document, skipping blank lines. Errors carry the
/// offending 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| ParseError { line: i + 1, msg: e.msg })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                time: 1000,
                node: 0,
                event: TraceEvent::Sent {
                    sender: 0,
                    seq: 1,
                    keys: vec![3, 11],
                    key_vals: vec![1, 1],
                },
            },
            TraceRecord { time: 2000, node: 1, event: TraceEvent::Received { sender: 0, seq: 1 } },
            TraceRecord {
                time: 2000,
                node: 1,
                event: TraceEvent::Parked { sender: 0, seq: 2, entry: 3, threshold: 2 },
            },
            TraceRecord {
                time: 2500,
                node: 1,
                event: TraceEvent::Woken { sender: 0, seq: 2, entry: 3 },
            },
            TraceRecord {
                time: 2500,
                node: 1,
                event: TraceEvent::Delivered {
                    sender: 0,
                    seq: 2,
                    blocked_for: 500,
                    alert4: true,
                    alert5: false,
                    violation: true,
                },
            },
            TraceRecord {
                time: 2500,
                node: 1,
                event: TraceEvent::Alert { alg: 4, sender: 0, seq: 2, suspects: 7 },
            },
            TraceRecord { time: 3000, node: 2, event: TraceEvent::Refetched { sender: 0, seq: 1 } },
            TraceRecord { time: 4000, node: 2, event: TraceEvent::SnapshotTaken },
            TraceRecord { time: 5000, node: 2, event: TraceEvent::SnapshotRestored },
        ]
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let records = sample_records();
        let text = write_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let parsed = parse_jsonl(&text).expect("own output must parse");
        assert_eq!(parsed, records);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let records = sample_records();
        let text = format!("\n{}\n\n", write_jsonl(&records));
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let good = write_record(&sample_records()[0]);
        let text = format!("{good}\nnot json\n");
        let e = parse_jsonl(&text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_floats_and_negatives() {
        assert!(parse_line(r#"{"time":1.5,"node":0,"event":"SnapshotTaken"}"#).is_err());
        assert!(parse_line(r#"{"time":-1,"node":0,"event":"SnapshotTaken"}"#).is_err());
    }

    #[test]
    fn rejects_missing_fields_and_unknown_events() {
        assert!(parse_line(r#"{"time":1,"node":0,"event":"Received","sender":3}"#).is_err());
        assert!(parse_line(r#"{"time":1,"node":0,"event":"Vanished"}"#).is_err());
        assert!(parse_line(r#"{"time":1,"node":0}"#).is_err());
        assert!(parse_line("[1,2,3]").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut p = Parser::new(r#""a\"b\\c\nd""#);
        assert_eq!(p.string().unwrap(), "a\"b\\c\nd");
    }
}
