//! Log-bucketed latency histogram with mergeable buckets.
//!
//! Replaces mean-only accumulators where the *tail* matters (the paper's
//! blocking-delay comparison against hybrid-buffering protocols lives in
//! p99, not the mean). Buckets are log₂-spaced with 4 linear sub-buckets
//! per octave over `2⁻²⁰..2²⁰` (sub-microsecond to ~17 minutes when the
//! unit is milliseconds), giving ≤ 25% relative quantile error from 160
//! fixed `u64` counters. Everything is integer bookkeeping plus one exact
//! running sum, so results are bit-deterministic for a given sample
//! sequence and [`Hist::merge`] is exact (element-wise bucket addition).
//!
//! The accessor surface is a superset of the `Welford` accumulator it
//! replaces (`push`/`count`/`mean`/`min`/`max`/`merge`), so call sites
//! only change where they want quantiles.
//!
//! ```
//! use pcb_telemetry::Hist;
//! let mut h = Hist::new();
//! for ms in [1.0, 2.0, 3.0, 100.0] { h.push(ms); }
//! assert_eq!(h.count(), 4);
//! assert_eq!(h.mean(), 26.5);
//! assert!(h.p50() >= 2.0 && h.p50() <= 3.0);
//! assert_eq!(h.max(), 100.0);
//! ```

/// Linear sub-buckets per octave (power of two).
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest / largest representable octave (`2^MIN_EXP ..= 2^MAX_EXP`).
const MIN_EXP: i32 = -20;
const MAX_EXP: i32 = 20;
/// Total bucket count.
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBS;

/// Bucket index for a sample: the octave comes straight from the IEEE-754
/// exponent and the sub-bucket from the top mantissa bits, so indexing is
/// exact (no `log2` rounding) and fully deterministic.
fn bucket_of(x: f64) -> usize {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as i32;
    let idx = (exp - MIN_EXP) * SUBS as i32 + sub;
    idx.clamp(0, BUCKETS as i32 - 1) as usize
}

/// Upper bound of a bucket's value range.
fn bucket_upper(idx: usize) -> f64 {
    let exp = MIN_EXP + (idx / SUBS) as i32;
    let sub = (idx % SUBS) as f64;
    2f64.powi(exp) * (1.0 + (sub + 1.0) / SUBS as f64)
}

/// Log-bucketed histogram over positive samples (zero and negative
/// samples land in the lowest bucket; min/max/mean stay exact).
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.counts[bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) as the covering bucket's upper
    /// bound, clamped into the exact `[min, max]` envelope; 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket also absorbs everything beyond the
                // histogram range, so its effective upper bound is the
                // exact max.
                let upper = if idx == BUCKETS - 1 { f64::INFINITY } else { bucket_upper(idx) };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (element-wise bucket
    /// addition — exact, unlike moment merging).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_welford_compatible() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), f64::INFINITY);
        assert_eq!(h.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn bucket_bounds_bracket_the_sample() {
        // In-range samples only; out-of-range values clamp into the
        // first/last bucket and are covered by the extremes test.
        for &x in &[1e-5, 0.004, 0.9, 1.0, 1.5, 3.7, 100.0, 12345.6, 9e5] {
            let idx = bucket_of(x);
            assert!(bucket_upper(idx) >= x, "upper({idx}) >= {x}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) <= x, "lower({idx}) <= {x}");
            }
        }
    }

    #[test]
    fn quantiles_are_order_statistics_within_bucket_error() {
        let mut h = Hist::new();
        for i in 1..=1000 {
            h.push(f64::from(i));
        }
        // One octave sub-bucket is at most 25% wide.
        assert!((h.p50() - 500.0).abs() / 500.0 <= 0.25, "p50 = {}", h.p50());
        assert!((h.p90() - 900.0).abs() / 900.0 <= 0.25, "p90 = {}", h.p90());
        assert!((h.p99() - 990.0).abs() / 990.0 <= 0.25, "p99 = {}", h.p99());
        assert_eq!(h.quantile(1.0), 1000.0, "p100 clamps to the exact max");
        assert_eq!(h.mean(), 500.5);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Hist::new();
        h.push(42.0);
        // The [min, max] clamp collapses every quantile onto the sample.
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p99(), 42.0);
    }

    #[test]
    fn non_positive_and_extreme_samples_stay_accounted() {
        let mut h = Hist::new();
        h.push(0.0);
        h.push(-3.0);
        h.push(1e30); // beyond the top octave: clamps to the last bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 1e30);
        assert_eq!(h.quantile(1.0), 1e30);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for i in 1..=100 {
            // Integer-valued samples keep both running sums exact, so the
            // merged accumulator is bitwise equal to the single-pass one.
            let x = f64::from(i * 7);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a, whole, "split-and-merge must equal single-pass");
    }
}
