//! Property-based tests for the protocol layer.

use bytes::Bytes;
use pcb_broadcast::{decode, encode, Message, MessageStore, PcbProcess, SyncRequest};
use pcb_clock::{AssignmentPolicy, CausalRelation, KeyAssigner, KeySpace, ProcessId, VectorClock};
use proptest::prelude::*;

/// Builds `n` endpoints over an exact `(n, 1)` space (vector-equivalent),
/// so causal safety is guaranteed and any violation is a protocol bug.
fn exact_endpoints(n: usize) -> Vec<PcbProcess<usize>> {
    let space = KeySpace::vector(n).expect("valid");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::RoundRobin, 0);
    (0..n).map(|i| PcbProcess::new(ProcessId::new(i), assigner.next_set().expect("keys"))).collect()
}

proptest! {
    /// Under the exact configuration, any arrival permutation at any
    /// receiver yields a delivery order that respects happened-before.
    #[test]
    fn exact_config_delivery_respects_causality(
        seed in 0u64..500,
        n in 2usize..6,
        rounds in 1usize..15,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut procs = exact_endpoints(n);
        // Ground truth vector clocks, one per process.
        let mut truth: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
        let mut log: Vec<(Message<usize>, VectorClock)> = Vec::new();

        for step in 0..rounds {
            let s = rng.random_range(0..n);
            // The sender delivers some subset of existing messages first.
            for (m, _tvc) in &log {
                if m.sender() != ProcessId::new(s)
                    && rng.random_bool(0.5)
                {
                    let out = procs[s].on_receive(m.clone(), step as u64);
                    for d in out {
                        let idx = *d.message.payload();
                        let (_, ref dep_tvc) = log[idx];
                        truth[s].record_delivery(dep_tvc, d.message.sender());
                    }
                }
            }
            let payload = log.len();
            let m = procs[s].broadcast(payload);
            let tvc = truth[s].stamp_send(ProcessId::new(s));
            log.push((m, tvc));
        }

        // A fresh observer receives everything in a random order. It
        // never sends, so any key in the same space works.
        let space = KeySpace::vector(n).unwrap();
        let observer_keys = pcb_clock::KeySet::singleton(space, 0).unwrap();
        let mut observer: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(n), observer_keys);
        let observer = &mut observer;
        let mut order: Vec<usize> = (0..log.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut delivered: Vec<usize> = Vec::new();
        for (t, &idx) in order.iter().enumerate() {
            for d in observer.on_receive(log[idx].0.clone(), t as u64) {
                delivered.push(*d.message.payload());
            }
        }
        prop_assert_eq!(delivered.len(), log.len(), "liveness: all delivered");
        // Safety: for every pair delivered in order (x before y), the
        // truth must not say y -> x.
        for i in 0..delivered.len() {
            for j in i + 1..delivered.len() {
                let rel = log[delivered[i]].1.compare(&log[delivered[j]].1);
                prop_assert_ne!(
                    rel,
                    CausalRelation::After,
                    "delivered {} before {} but truth says the reverse",
                    delivered[i],
                    delivered[j]
                );
            }
        }
    }

    /// One sender, arbitrary arrival permutation: FIFO restored exactly.
    #[test]
    fn single_sender_any_permutation_is_fifo(
        perm_seed in 0u64..1000,
        count in 1usize..30,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let space = KeySpace::new(16, 3).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 1);
        let mut tx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
        let mut rx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());
        let msgs: Vec<_> = (0..count).map(|i| tx.broadcast(i)).collect();
        let mut order: Vec<usize> = (0..count).collect();
        for i in (1..count).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut got = Vec::new();
        for (t, &i) in order.iter().enumerate() {
            got.extend(
                rx.on_receive(msgs[i].clone(), t as u64)
                    .into_iter()
                    .map(|d| *d.message.payload()),
            );
        }
        prop_assert_eq!(got, (0..count).collect::<Vec<_>>());
        prop_assert_eq!(rx.pending_len(), 0);
    }

    /// Random duplicate injections never double-deliver.
    #[test]
    fn duplicates_never_double_deliver(
        seed in 0u64..500,
        count in 1usize..20,
        dup_factor in 2usize..4,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = KeySpace::new(12, 2).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 2);
        let mut tx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
        let mut rx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());
        let msgs: Vec<_> = (0..count).map(|i| tx.broadcast(i)).collect();
        // Stream with duplicates, shuffled.
        let mut stream: Vec<usize> = (0..count).flat_map(|i| vec![i; dup_factor]).collect();
        for i in (1..stream.len()).rev() {
            let j = rng.random_range(0..=i);
            stream.swap(i, j);
        }
        let mut delivered = 0usize;
        for (t, &i) in stream.iter().enumerate() {
            delivered += rx.on_receive(msgs[i].clone(), t as u64).len();
        }
        prop_assert_eq!(delivered, count);
        prop_assert_eq!(rx.stats().duplicates as usize, count * (dup_factor - 1));
    }

    /// After any `on_receive`, no pending message is deliverable (the
    /// drain loop reaches a fixpoint).
    #[test]
    fn drain_reaches_fixpoint(
        seed in 0u64..500,
        count in 1usize..25,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = KeySpace::new(8, 2).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 3);
        let keys_a = assigner.next_set().unwrap();
        let keys_b = assigner.next_set().unwrap();
        let mut a: PcbProcess<usize> = PcbProcess::new(ProcessId::new(0), keys_a);
        let mut b: PcbProcess<usize> = PcbProcess::new(ProcessId::new(1), keys_b);
        let mut msgs = Vec::new();
        for i in 0..count {
            // Alternate senders to create cross-dependencies.
            let m = if i % 2 == 0 { a.broadcast(i) } else { b.broadcast(i) };
            msgs.push(m);
        }
        let mut rx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(2), assigner.next_set().unwrap());
        for i in (1..msgs.len()).rev() {
            let j = rng.random_range(0..=i);
            msgs.swap(i, j);
        }
        for (t, m) in msgs.into_iter().enumerate() {
            let _ = rx.on_receive(m, t as u64);
            // Fixpoint: polling immediately after must deliver nothing.
            prop_assert!(rx.poll(t as u64).is_empty(), "drain left a deliverable message");
        }
    }

    /// Wire codec round-trips messages from arbitrary protocol states.
    #[test]
    fn wire_roundtrip_random_states(
        r in 1usize..40,
        pre_sends in 0usize..20,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let k = (r / 3).clamp(1, r);
        let space = KeySpace::new(r, k).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 4);
        let mut p: PcbProcess<Bytes> =
            PcbProcess::new(ProcessId::new(5), assigner.next_set().unwrap());
        for _ in 0..pre_sends {
            let _ = p.broadcast(Bytes::new());
        }
        let m = p.broadcast(Bytes::from(payload.clone()));
        let decoded = decode(encode(&m)).unwrap();
        prop_assert_eq!(decoded.id(), m.id());
        prop_assert_eq!(decoded.keys(), m.keys());
        prop_assert_eq!(decoded.timestamp(), m.timestamp());
        prop_assert_eq!(&decoded.payload()[..], &payload[..]);
    }

    /// Any lost subset is recoverable through anti-entropy: a receiver
    /// that misses arbitrary messages catches up fully from a peer's
    /// store, and every message is delivered exactly once.
    #[test]
    fn anti_entropy_recovers_any_loss_pattern(
        seed in 0u64..500,
        count in 1usize..20,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = KeySpace::new(16, 3).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 5);
        let mut tx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
        let mut peer: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());
        let mut rx: PcbProcess<usize> =
            PcbProcess::new(ProcessId::new(2), assigner.next_set().unwrap());
        let mut store: MessageStore<usize> = MessageStore::new(u64::MAX / 2);

        let mut direct_deliveries = 0usize;
        for i in 0..count {
            let m = tx.broadcast(i);
            for d in peer.on_receive(m.clone(), i as u64) {
                store.insert(i as u64, d.message);
            }
            // rx loses each message with probability 1/2.
            if rng.random_bool(0.5) {
                direct_deliveries += rx.on_receive(m, i as u64).len();
            }
        }
        // Anti-entropy: fetch everything rx has not seen.
        let response = store.handle_sync(&SyncRequest::new(rx.seen_ids()));
        let mut recovered = 0usize;
        for m in response.messages {
            recovered += rx.on_receive(m, count as u64).len();
        }
        prop_assert_eq!(direct_deliveries + recovered, count);
        prop_assert_eq!(rx.pending_len(), 0, "full recovery leaves nothing blocked");
        prop_assert_eq!(rx.stats().delivered as usize, count);
    }
}
