//! Differential tests for the v3 delta wire codec: delivery under
//! delta-compressed frames must be **bit-identical** to delivery under
//! full frames, on every trace.
//!
//! Two replay paths share one arrival permutation:
//!
//! 1. *full* — every message ships as a standalone v3 full frame;
//! 2. *delta* — every sender runs a [`DeltaEncoder`] (periodic full
//!    stamps, deltas in between); the receiver's [`DeltaDecoder`]
//!    reconstructs, falling back to an on-demand full frame whenever a
//!    permuted arrival references a base it has not decoded yet —
//!    exactly the refetch/late-joiner path.
//!
//! Both paths feed the same [`PcbProcess`] logic, and the orders (and
//! re-encoded wire bytes) of everything delivered must match. A proptest
//! property then round-trips arbitrary stamp sequences — including gaps
//! and regressions that force the full-frame fallback — through the
//! codec pair.

use std::sync::Arc;

use bytes::Bytes;
use pcb_broadcast::wire::{DeltaDecoder, DeltaEncoder};
use pcb_broadcast::{wire, Message, MessageId, PcbProcess, WireError};
use pcb_clock::{KeySet, KeySpace, ProcessId, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Picks `k` distinct entries of `0..r` uniformly (partial Fisher-Yates).
fn random_keys(rng: &mut StdRng, r: usize, k: usize) -> KeySet {
    let mut entries: Vec<usize> = (0..r).collect();
    for i in 0..k {
        let j = rng.random_range(i..r);
        entries.swap(i, j);
    }
    entries.truncate(k);
    entries.sort_unstable();
    let space = KeySpace::new(r, k).expect("valid space");
    KeySet::from_entries(space, &entries).expect("entries in range")
}

fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Generates a causally rich pool: before each send the sender catches
/// up on a random prefix of everything broadcast so far, so stamps carry
/// cross-sender dependencies. Returns the messages **in send order**
/// (the order each sender's `DeltaEncoder` sees them) plus a random
/// arrival permutation of pool indices.
fn generate_pool(
    seed: u64,
    senders: usize,
    per_sender: usize,
    space: KeySpace,
) -> (Vec<Message<Bytes>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut procs: Vec<PcbProcess<Bytes>> = (0..senders)
        .map(|i| PcbProcess::new(ProcessId::new(i), random_keys(&mut rng, space.r(), space.k())))
        .collect();
    let mut pool: Vec<Message<Bytes>> = Vec::new();
    let mut caught_up = vec![0usize; senders];
    let mut quota = vec![per_sender; senders];
    for step in 0..senders * per_sender {
        let mut s = rng.random_range(0..senders);
        while quota[s] == 0 {
            s = (s + 1) % senders;
        }
        quota[s] -= 1;
        while caught_up[s] < pool.len() && rng.random_bool(0.7) {
            let m = pool[caught_up[s]].clone();
            caught_up[s] += 1;
            let _ = procs[s].on_receive(m, step as u64);
        }
        let payload = Bytes::from((step as u64).to_be_bytes().to_vec());
        pool.push(procs[s].broadcast(payload));
    }
    let mut arrival: Vec<usize> = (0..pool.len()).collect();
    shuffle(&mut rng, &mut arrival);
    (pool, arrival)
}

/// Replays `arrival` through a fresh receiver, decoding each message
/// from the frame produced by `frame_for`. On [`WireError::MissingDeltaBase`]
/// the receiver refetches the standalone full frame — the anti-entropy
/// path — and retries nothing: the full frame *is* the message.
fn replay(
    space: KeySpace,
    pool: &[Message<Bytes>],
    arrival: &[usize],
    mut frame_for: impl FnMut(usize) -> Bytes,
) -> Vec<MessageId> {
    let keys = KeySet::from_entries(space, &(0..space.k()).collect::<Vec<_>>()).unwrap();
    // The highest id that still fits the u32 wire/trace encoding — the
    // checked conversion refuses anything wider (no silent truncation).
    let mut process: PcbProcess<Bytes> = PcbProcess::new(ProcessId::new(u32::MAX as usize), keys);
    let mut decoder = DeltaDecoder::new();
    let mut order = Vec::new();
    for (t, &i) in arrival.iter().enumerate() {
        let decoded = match decoder.decode(frame_for(i)) {
            Ok(m) => m,
            Err(WireError::MissingDeltaBase { .. }) => {
                decoder.decode(wire::encode_full(&pool[i])).expect("full frame is standalone")
            }
            Err(e) => panic!("decode failed: {e}"),
        };
        // Reconstruction is exact: the decoded message re-encodes to the
        // same v2 bytes as the original.
        assert_eq!(wire::encode(&decoded), wire::encode(&pool[i]), "lossy reconstruction");
        for d in process.on_receive(decoded, t as u64) {
            order.push(d.message.id());
        }
    }
    order
}

#[test]
fn delta_and_full_frames_deliver_bit_identically() {
    // ≥ 20 seeded traces over a colliding and a roomy key space.
    for (r, k) in [(8, 2), (100, 4)] {
        let space = KeySpace::new(r, k).unwrap();
        for seed in 0..12u64 {
            let senders = 2 + (seed as usize % 4);
            let (pool, arrival) = generate_pool(seed, senders, 8, space);

            // Path 1: every arrival is a standalone v3 full frame.
            let full_order = replay(space, &pool, &arrival, |i| wire::encode_full(&pool[i]));

            // Path 2: per-sender delta chains encoded in send order
            // (frames fixed before the permutation is applied).
            let mut encoders: std::collections::HashMap<usize, DeltaEncoder> =
                std::collections::HashMap::new();
            let frames: Vec<Bytes> = pool
                .iter()
                .map(|m| {
                    encoders
                        .entry(m.sender().index())
                        .or_insert_with(|| DeltaEncoder::new(4))
                        .encode(m)
                })
                .collect();
            let deltas: u64 = encoders.values().map(DeltaEncoder::deltas_emitted).sum();
            assert!(deltas > 0, "seed {seed}: the chain must actually emit deltas");
            let delta_order = replay(space, &pool, &arrival, |i| frames[i].clone());

            assert_eq!(
                full_order, delta_order,
                "seed {seed} ({r},{k}): delivery order diverged under delta frames"
            );
            assert_eq!(full_order.len(), pool.len(), "seed {seed}: everything delivers");
        }
    }
}

#[test]
fn v2_and_v3_mixed_stream_decodes_identically() {
    // A receiver upgraded mid-stream: odd frames arrive as v2, even as
    // v3 (full or delta). The decoder must not care.
    let space = KeySpace::new(16, 2).unwrap();
    let (pool, arrival) = generate_pool(99, 3, 10, space);
    let mut encoder = DeltaEncoder::new(4);
    let frames: Vec<Bytes> = pool
        .iter()
        .enumerate()
        .map(|(i, m)| if i % 2 == 1 { wire::encode(m) } else { encoder.encode(m) })
        .collect();
    let full_order = replay(space, &pool, &arrival, |i| wire::encode_full(&pool[i]));
    let mixed_order = replay(space, &pool, &arrival, |i| frames[i].clone());
    assert_eq!(full_order, mixed_order);
}

/// Builds a raw message with an arbitrary stamp — no protocol involved,
/// so sequences can jump, stall, or regress at will.
fn raw_message(sender: usize, seq: u64, entries: Vec<u64>, keys: &Arc<KeySet>) -> Message<Bytes> {
    Message::new(
        MessageId::new(ProcessId::new(sender), seq),
        Arc::clone(keys),
        Timestamp::from_entries(entries),
        Bytes::from(seq.to_be_bytes().to_vec()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trips an arbitrary stamp sequence — including gaps (big
    /// jumps), stalls, and outright regressions that force the encoder's
    /// full-frame fallback — through `DeltaEncoder`/`DeltaDecoder`.
    #[test]
    fn arbitrary_stamp_sequences_roundtrip(
        r in 2usize..24,
        full_every in 1u64..9,
        steps in proptest::collection::vec(
            (proptest::collection::vec(0u64..1 << 40, 0..24), any::<bool>()),
            1..32,
        ),
    ) {
        let space = KeySpace::new(r, 1).unwrap();
        let keys = Arc::new(KeySet::from_entries(space, &[0]).unwrap());
        let mut encoder = DeltaEncoder::new(full_every);
        let mut decoder = DeltaDecoder::new();
        let mut entries = vec![0u64; r];
        for (seq, (noise, force)) in steps.into_iter().enumerate() {
            // Mutate some prefix of the stamp: absolute overwrites, so
            // values can regress as well as jump — both must fall back
            // to a full frame, silently.
            for (e, v) in entries.iter_mut().zip(noise) {
                *e = v;
            }
            if force {
                encoder.force_full();
            }
            let m = raw_message(7, seq as u64 + 1, entries.clone(), &keys);
            let frame = encoder.encode(&m);
            let back = decoder.decode(frame).expect("in-order chain always decodes");
            prop_assert_eq!(wire::encode(&back), wire::encode(&m));
        }
        // The cadence bound holds even under fallbacks: at least one full
        // frame per `full_every` frames.
        prop_assert!(encoder.fulls_emitted() >= 1);
    }

    /// A decoder joining the chain late decodes nothing until a full
    /// frame arrives, then tracks the stream exactly.
    #[test]
    fn late_joiner_only_needs_one_full_frame(
        r in 2usize..16,
        n in 2usize..20,
        join_at in 0usize..20,
    ) {
        let join_at = join_at % n;
        let space = KeySpace::new(r, 1).unwrap();
        let keys = Arc::new(KeySet::from_entries(space, &[0]).unwrap());
        let mut encoder = DeltaEncoder::new(u64::MAX); // one full, then deltas forever
        let mut entries = vec![0u64; r];
        let frames: Vec<(Message<Bytes>, Bytes)> = (0..n)
            .map(|seq| {
                entries[seq % r] += 1 + seq as u64;
                let m = raw_message(3, seq as u64 + 1, entries.clone(), &keys);
                let f = encoder.encode(&m);
                (m, f)
            })
            .collect();
        // The joiner misses the first `join_at` frames entirely.
        let mut decoder = DeltaDecoder::new();
        for (i, (m, frame)) in frames.iter().enumerate().skip(join_at) {
            match decoder.decode(frame.clone()) {
                Ok(back) => prop_assert_eq!(wire::encode(&back), wire::encode(m)),
                Err(WireError::MissingDeltaBase { .. }) => {
                    prop_assert!(
                        i == join_at && join_at > 0,
                        "only the first frame after joining may miss its base"
                    );
                    // Refetch: the standalone full frame re-seeds the chain.
                    let back = decoder.decode(wire::encode_full(m)).unwrap();
                    prop_assert_eq!(wire::encode(&back), wire::encode(m));
                }
                Err(e) => return Err(format!("decode failed: {e}")),
            }
        }
    }
}
