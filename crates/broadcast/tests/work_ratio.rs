//! Deterministic work-count check for the ISSUE acceptance criterion:
//! on a pending-heavy cascade at P = 10⁴ the indexed engine must do at
//! least 5× less guard work than the naive restart-scan. Work is counted
//! in guard evaluations (`scan_steps` vs `gap_checks`), which is
//! deterministic and machine-independent, unlike wall-clock time; the
//! Criterion benchmark `pending_wakeup` measures the corresponding
//! wall-clock gap.

use std::sync::Arc;

use pcb_broadcast::pending::naive::NaiveQueue;
use pcb_broadcast::{Message, MessageId, WakeupIndex};
use pcb_clock::{KeySet, KeySpace, ProbClock, ProcessId};

const R: usize = 32;
const K: usize = 2;
const P: usize = 10_000;

/// A single sender's FIFO chain of `P` messages, arriving fully reversed
/// — the worst case for the restart-scan: every arrival rescans the
/// whole queue, and the final cascade restarts from the front after each
/// delivery.
fn reversed_chain() -> Vec<Message<()>> {
    let space = KeySpace::new(R, K).expect("space");
    let keys = Arc::new(KeySet::from_entries(space, &[0, 1]).expect("entries in range"));
    let mut sender = ProbClock::new(space);
    let mut msgs: Vec<Message<()>> = (0..P)
        .map(|i| {
            let ts = sender.stamp_send(&keys);
            Message::new(MessageId::new(ProcessId::new(0), i as u64 + 1), keys.clone(), ts, ())
        })
        .collect();
    msgs.reverse();
    msgs
}

#[test]
fn indexed_engine_beats_naive_by_5x_at_p_10_000() {
    let space = KeySpace::new(R, K).expect("space");

    let mut naive_clock = ProbClock::new(space);
    let mut naive = NaiveQueue::new();
    let mut naive_delivered = 0usize;
    for m in reversed_chain() {
        naive_delivered += naive.on_receive(m, &mut naive_clock).len();
    }
    assert_eq!(naive_delivered, P, "naive cascade fully drains");

    let mut clock = ProbClock::new(space);
    let mut index = WakeupIndex::new(R);
    let mut indexed_delivered = 0usize;
    for m in reversed_chain() {
        index.insert(0, m, &clock);
        while let Some(d) = index.pop_ready() {
            clock.record_delivery(d.keys());
            let keys: Vec<usize> = d.keys().iter().collect();
            indexed_delivered += 1;
            index.on_clock_advance(keys, &clock);
        }
    }
    assert_eq!(indexed_delivered, P, "indexed cascade fully drains");

    let scans = naive.scan_steps;
    let checks = index.stats().gap_checks;
    assert!(
        scans >= 5 * checks,
        "indexed engine must do ≥5× less guard work: naive {scans} vs indexed {checks}"
    );
    // The gap is in fact asymptotic: naive is Θ(P²), indexed Θ(P).
    assert!(scans as f64 > 0.9 * (P as f64).powi(2), "naive is quadratic here");
    assert!(checks <= 2 * P as u64 + 1, "indexed stays linear: {checks}");
}
