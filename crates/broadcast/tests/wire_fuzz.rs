//! Fuzz-style hardening tests for the wire codec: arbitrary byte
//! mutations of a valid frame either decode to a well-formed message or
//! return a `WireError` — never panic, never alias a different
//! `MessageId`.

use bytes::Bytes;
use pcb_broadcast::{decode, encode, PcbProcess};
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProcessId};
use proptest::prelude::*;

fn frame(sender: usize, warmup: usize, payload: Vec<u8>) -> (Bytes, pcb_broadcast::MessageId) {
    let space = KeySpace::new(32, 3).unwrap();
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, sender as u64 + 1);
    let mut process = PcbProcess::new(ProcessId::new(sender), assigner.next_set().unwrap());
    for _ in 0..warmup {
        let _ = process.broadcast(Bytes::new());
    }
    let m = process.broadcast(Bytes::from(payload));
    (encode(&m), m.id())
}

proptest! {
    /// Any single-byte substitution is caught: the checksum step is a
    /// bijection per byte, so a one-byte change cannot collide.
    #[test]
    fn single_byte_substitution_always_errors(
        sender in 0usize..32,
        warmup in 0usize..20,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let (bytes, _) = frame(sender, warmup, payload);
        let mut mutated = bytes.to_vec();
        let pos = pos_seed % mutated.len();
        mutated[pos] ^= xor;
        prop_assert!(decode(Bytes::from(mutated)).is_err());
    }

    /// Arbitrary multi-byte mutations (substitutions, truncation, and
    /// appended garbage) never panic; on the off chance one decodes, it
    /// must reproduce the original identity, not alias another stream.
    #[test]
    fn random_mutations_never_panic_or_alias(
        sender in 0usize..32,
        warmup in 0usize..20,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..12),
        cut in any::<usize>(),
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let (bytes, id) = frame(sender, warmup, payload);
        let mut mutated = bytes.to_vec();
        for (pos, byte) in mutations {
            let pos = pos % mutated.len();
            mutated[pos] = byte;
        }
        mutated.truncate(1 + cut % mutated.len());
        mutated.extend_from_slice(&tail);
        if let Ok(message) = decode(Bytes::from(mutated.clone())) {
            prop_assert_eq!(
                message.id(), id,
                "mutated frame decoded to a different message id"
            );
            prop_assert_eq!(mutated, bytes.to_vec(), "only the identical frame may decode");
        }
    }

    /// Pure garbage never panics.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(Bytes::from(bytes));
    }
}
