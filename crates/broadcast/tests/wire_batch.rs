//! Differential tests for the batched wire path.
//!
//! * [`Endpoint::handle_wire_batch`] must be bit-identical to calling
//!   [`Endpoint::handle_wire`] once per frame, at any thread count —
//!   same outputs, same decode errors, same counters.
//! * A crash in the middle of a delta stream must not let pre-crash
//!   reconstruction stamps decode post-restore deltas: the restored
//!   endpoint surfaces `MissingDeltaBase`, re-primes via a full frame,
//!   and converges to the exact delivery sequence of a receiver that
//!   never crashed.

use bytes::Bytes;
use pcb_broadcast::endpoint::{Endpoint, Input, Output, RecoveryTimingUs};
use pcb_broadcast::{wire, DeltaEncoder, MessageId, PcbConfig, PcbProcess, WireError};
use pcb_clock::{KeySet, KeySpace, ProcessId};

fn space() -> KeySpace {
    KeySpace::new(8, 2).unwrap()
}

fn timing() -> RecoveryTimingUs {
    RecoveryTimingUs {
        stale_after_us: 1_000,
        poll_every_us: 250,
        store_window_us: 1_000_000,
        snapshot_every_us: 5_000,
        sync_timeout_us: 4_000,
    }
}

fn receiver(id: usize, entries: &[usize]) -> Endpoint<Bytes> {
    Endpoint::new(
        ProcessId::new(id),
        KeySet::from_entries(space(), entries).unwrap(),
        PcbConfig::default(),
        Some(timing()),
    )
}

/// `(id, instant_alert, recent_alert)` of every delivery in `outs`.
fn deliveries(outs: &[Output<Bytes>]) -> Vec<(MessageId, bool, bool)> {
    outs.iter()
        .filter_map(|o| match o {
            Output::Deliver(d) => Some((d.message.id(), d.instant_alert, d.recent_alert)),
            _ => None,
        })
        .collect()
}

/// Full order-and-content digest of an output stream.
fn digest(outs: &[Output<Bytes>]) -> Vec<String> {
    outs.iter().map(|o| format!("{o:?}")).collect()
}

/// Two causally chained senders (each `b_k` depends on `a_k`), frames
/// delta-encoded per sender, arrivals pair-reversed so every `b_k`
/// parks until `a_k` lands. Returns `(now_us, frame)` pairs.
fn chained_wire_trace(rounds: usize, full_every: u64) -> Vec<(u64, Bytes)> {
    let mut a = PcbProcess::<Bytes>::new(
        ProcessId::new(0),
        KeySet::from_entries(space(), &[0, 1]).unwrap(),
    );
    let mut b = PcbProcess::<Bytes>::new(
        ProcessId::new(1),
        KeySet::from_entries(space(), &[1, 2]).unwrap(),
    );
    let mut enc_a = DeltaEncoder::new(full_every);
    let mut enc_b = DeltaEncoder::new(full_every);
    let mut frames = Vec::new();
    for round in 0..rounds {
        let at = 10 + round as u64 * 20;
        let m_a = a.broadcast(Bytes::from(format!("a{round}").into_bytes()));
        assert_eq!(b.on_receive(m_a.clone(), at).len(), 1, "b observes a");
        let m_b = b.broadcast(Bytes::from(format!("b{round}").into_bytes()));
        // b's frame first: it must park on a's pending entry.
        frames.push((at, enc_b.encode(&m_b)));
        frames.push((at + 1, enc_a.encode(&m_a)));
    }
    frames
}

#[test]
fn wire_batch_is_bit_identical_to_sequential_wire() {
    let frames = chained_wire_trace(40, 4);

    let mut seq = receiver(2, &[3, 4]);
    let mut seq_out = Vec::new();
    let mut seq_errors: Vec<(usize, WireError)> = Vec::new();
    for (index, (at, frame)) in frames.iter().enumerate() {
        match seq.handle_wire(frame.clone(), *at) {
            Ok(outs) => seq_out.extend(outs),
            Err(e) => seq_errors.push((index, e)),
        }
    }
    assert!(seq_errors.is_empty(), "in-order per-sender chains all decode");
    assert!(deliveries(&seq_out).len() == 80, "everything delivers");

    for threads in [1usize, 2, 4] {
        let mut batched = receiver(2, &[3, 4]);
        batched.set_parallel(threads);
        let mut batch_out = Vec::new();
        let mut batch_errors = Vec::new();
        let mut offset = 0;
        for chunk in frames.chunks(13) {
            let (outs, errors) = batched.handle_wire_batch(chunk);
            batch_out.extend(outs);
            batch_errors.extend(errors.into_iter().map(|(i, e)| (offset + i, e)));
            offset += chunk.len();
        }
        assert_eq!(batch_errors, seq_errors, "threads={threads}");
        assert_eq!(digest(&batch_out), digest(&seq_out), "threads={threads}");
        assert_eq!(batched.status().stats, seq.status().stats, "threads={threads}");
        assert_eq!(batched.recovery_counters(), seq.recovery_counters(), "threads={threads}");
    }
}

#[test]
fn out_of_order_delta_frames_error_identically_in_batch() {
    // Swap each (full-ish, delta) pair so deltas outrun their bases:
    // both paths must surface the same MissingDeltaBase errors at the
    // same batch indices and deliver the same survivors.
    let mut frames = chained_wire_trace(12, 100);
    for pair in frames.chunks_mut(4) {
        pair.reverse();
    }
    let mut seq = receiver(2, &[3, 4]);
    let mut seq_out = Vec::new();
    let mut seq_errors = Vec::new();
    for (index, (at, frame)) in frames.iter().enumerate() {
        match seq.handle_wire(frame.clone(), *at) {
            Ok(outs) => seq_out.extend(outs),
            Err(e) => seq_errors.push((index, e)),
        }
    }
    assert!(!seq_errors.is_empty(), "the shuffle must actually break some chains");

    let mut batched = receiver(2, &[3, 4]);
    batched.set_parallel(4);
    let (batch_out, batch_errors) = batched.handle_wire_batch(&frames);
    assert_eq!(batch_errors, seq_errors);
    assert_eq!(digest(&batch_out), digest(&seq_out));
}

#[test]
fn crash_mid_delta_stream_restores_bit_identically() {
    // One sender, eleven messages, delta-encoded with full frames only
    // at the cadence boundary — the stream crossing the crash is deltas.
    let mut sender = PcbProcess::<Bytes>::new(
        ProcessId::new(0),
        KeySet::from_entries(space(), &[0, 1]).unwrap(),
    );
    let mut enc = DeltaEncoder::new(100); // frame 0 full, the rest deltas
    let pool: Vec<_> =
        (0..11).map(|i| sender.broadcast(Bytes::from(format!("m{i}").into_bytes()))).collect();
    let frames: Vec<Bytes> = pool.iter().map(|m| enc.encode(m)).collect();

    // Reference receiver: never crashes, decodes the whole chain.
    let mut reference = receiver(1, &[2, 3]);
    let mut reference_deliveries = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        let outs = reference.handle_wire(frame.clone(), 10 + i as u64 * 10).unwrap();
        reference_deliveries.extend(deliveries(&outs));
    }
    assert_eq!(reference_deliveries.len(), 11);

    // Crashing receiver: delivers the first six, snapshots, crashes.
    let t = timing();
    let mut rec = receiver(1, &[2, 3]);
    let mut rec_deliveries = Vec::new();
    for (i, frame) in frames.iter().take(6).enumerate() {
        let outs = rec.handle_wire(frame.clone(), 10 + i as u64 * 10).unwrap();
        rec_deliveries.extend(deliveries(&outs));
    }
    let outs = rec.handle(Input::Tick, t.snapshot_every_us);
    assert!(outs.iter().any(|o| matches!(o, Output::SnapshotReady { .. })));
    let _ = rec.handle(Input::Crash, t.snapshot_every_us + 1);

    // Frames 6..9 arrive while crashed: dropped before decoding, so the
    // codec is not even consulted.
    let tracked = rec.store().codec().tracked_senders();
    for (i, frame) in frames.iter().enumerate().take(10).skip(6) {
        let outs = rec.handle_wire(frame.clone(), t.snapshot_every_us + 2 + i as u64).unwrap();
        assert!(outs.is_empty(), "crashed endpoint is deaf");
    }
    assert_eq!(rec.store().codec().tracked_senders(), tracked, "codec untouched while deaf");

    let _ = rec.handle(Input::Restore, t.snapshot_every_us + 100);

    // The pre-crash reconstruction stamp (from frame 5) is gone: the
    // next delta must refuse to decode rather than silently reconstruct
    // against a base this incarnation never saw.
    let err = rec.handle_wire(frames[10].clone(), t.snapshot_every_us + 200).unwrap_err();
    assert!(
        matches!(err, WireError::MissingDeltaBase { .. }),
        "stale delta base must be refused after restore, got {err:?}"
    );

    // Anti-entropy: re-fetch the gap (6..=9) as typed messages and the
    // refused frame as a standalone full frame.
    let refetch: Vec<_> = pool[6..10].to_vec();
    let outs = rec.handle(Input::SyncResponse(refetch), t.snapshot_every_us + 300);
    rec_deliveries.extend(deliveries(&outs));
    let outs = rec.handle_wire(wire::encode_full(&pool[10]), t.snapshot_every_us + 400).unwrap();
    rec_deliveries.extend(deliveries(&outs));

    // The full frame re-primed the chain: a subsequent delta decodes.
    let m11 = sender.broadcast(Bytes::from_static(b"m11"));
    let outs = rec.handle_wire(enc.encode(&m11), t.snapshot_every_us + 500).unwrap();
    assert_eq!(deliveries(&outs).len(), 1, "delta chain re-primed by the full frame");

    assert_eq!(
        rec_deliveries, reference_deliveries,
        "crash + restore + re-fetch converges to the no-crash delivery sequence"
    );
}
