//! Property tests for the datagram fragmentation layer: round-trips
//! under arbitrary interleaving, and total decoding under arbitrary
//! mutation (truncation, duplication, corruption) — a datagram either
//! reassembles exactly or errors; it never panics and never mis-decodes.

use bytes::Bytes;
use pcb_broadcast::fragment::{fragment, Reassembler, DEFAULT_MTU, MIN_MTU};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fragment → shuffle/duplicate → reassemble is the identity, at any
    /// MTU, for any payload.
    #[test]
    fn shuffled_duplicated_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 0..20_000),
        mtu in MIN_MTU..2 * DEFAULT_MTU,
        frame_id in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        let frame = Bytes::from(payload);
        let mut datagrams = fragment(frame_id, &frame, mtu).unwrap();
        prop_assert!(datagrams.iter().all(|d| d.len() <= mtu));
        // Deterministic shuffle + duplicate from the seed.
        let mut s = order_seed;
        let mut step = || {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            s >> 33
        };
        for i in (1..datagrams.len()).rev() {
            let j = (step() as usize) % (i + 1);
            datagrams.swap(i, j);
        }
        let dup_at = (step() as usize) % datagrams.len();
        let dup = datagrams[dup_at].clone();
        datagrams.push(dup);

        let mut r = Reassembler::new(u64::MAX / 2, 64);
        let mut out = Vec::new();
        for d in &datagrams {
            if let Some(f) = r.accept(0, d).unwrap() {
                out.push(f);
            }
        }
        // A duplicated single-datagram frame may complete twice — the
        // fast path keeps no state, and duplicate suppression belongs to
        // the reliable channel above. Every completion must be exact.
        prop_assert!(!out.is_empty(), "the frame completes");
        prop_assert!(out.iter().all(|f| *f == frame), "every completion is exact");
    }

    /// Arbitrary byte blobs thrown at the reassembler either error or
    /// decode as a well-formed datagram — never panic.
    #[test]
    fn arbitrary_bytes_never_panic(blob in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reassembler::new(1_000, 8);
        let _ = r.accept(0, &Bytes::from(blob));
    }

    /// Single-byte corruption of a valid datagram is always rejected:
    /// the transport treats it as loss and anti-entropy re-fetches.
    #[test]
    fn corruption_is_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..4_000),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let frame = Bytes::from(payload);
        let datagrams = fragment(42, &frame, MIN_MTU * 4).unwrap();
        let d = &datagrams[pos_seed % datagrams.len()];
        let pos = pos_seed % d.len();
        let mut bytes = d.to_vec();
        bytes[pos] ^= flip;
        let mut r = Reassembler::new(1_000, 8);
        prop_assert!(r.accept(0, &Bytes::from(bytes)).is_err());
    }
}
