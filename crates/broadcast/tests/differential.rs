//! Differential test: the entry-indexed wake-up engine must reproduce
//! the seed's linear-rescan delivery order *exactly*.
//!
//! Identical arrival traces are replayed through three paths —
//!
//! 1. [`pcb_broadcast::pending::naive::NaiveQueue`], the seed's
//!    front-to-back restart scan (compiled in via the `naive` feature),
//! 2. [`pcb_broadcast::WakeupIndex`] driven directly, and
//! 3. a full [`pcb_broadcast::PcbProcess`] endpoint —
//!
//! and the delivery orders are asserted identical, down to the encoded
//! wire bytes of each delivered message. A proptest property then checks
//! order invariance across randomly generated causal histories and
//! arrival permutations.

use bytes::Bytes;
use pcb_broadcast::pending::naive::NaiveQueue;
use pcb_broadcast::{wire, Message, MessageId, PcbProcess, WakeupIndex, WakeupStats};
use pcb_clock::{KeySet, KeySpace, ProbClock, ProcessId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Picks `k` distinct entries of `0..r` uniformly (partial Fisher-Yates).
fn random_keys(rng: &mut StdRng, r: usize, k: usize) -> KeySet {
    let mut entries: Vec<usize> = (0..r).collect();
    for i in 0..k {
        let j = rng.random_range(i..r);
        entries.swap(i, j);
    }
    entries.truncate(k);
    entries.sort_unstable();
    let space = KeySpace::new(r, k).expect("valid space");
    KeySet::from_entries(space, &entries).expect("entries in range")
}

fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Generates a causally rich message pool: `senders` endpoints with
/// random (possibly colliding) key sets broadcast `per_sender` messages
/// each; before each send the sender catches up on a random prefix of
/// the messages broadcast so far, so stamps carry genuine cross-sender
/// dependencies. The pool is returned in a random arrival permutation.
fn generate_trace(
    seed: u64,
    senders: usize,
    per_sender: usize,
    space: KeySpace,
) -> Vec<Message<Bytes>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut procs: Vec<PcbProcess<Bytes>> = (0..senders)
        .map(|i| PcbProcess::new(ProcessId::new(i), random_keys(&mut rng, space.r(), space.k())))
        .collect();
    let mut pool: Vec<Message<Bytes>> = Vec::new();
    let mut caught_up = vec![0usize; senders];
    let mut quota = vec![per_sender; senders];
    for step in 0..senders * per_sender {
        let mut s = rng.random_range(0..senders);
        while quota[s] == 0 {
            s = (s + 1) % senders;
        }
        quota[s] -= 1;
        while caught_up[s] < pool.len() && rng.random_bool(0.7) {
            let m = pool[caught_up[s]].clone();
            caught_up[s] += 1;
            let _ = procs[s].on_receive(m, step as u64);
        }
        let payload = Bytes::from((step as u64).to_be_bytes().to_vec());
        pool.push(procs[s].broadcast(payload));
    }
    shuffle(&mut rng, &mut pool);
    pool
}

/// The seed's restart-scan path.
fn replay_naive(space: KeySpace, arrivals: &[Message<Bytes>]) -> (Vec<MessageId>, u64) {
    let mut clock = ProbClock::new(space);
    let mut queue = NaiveQueue::new();
    let mut order = Vec::new();
    for m in arrivals {
        for d in queue.on_receive(m.clone(), &mut clock) {
            order.push(d.id());
        }
    }
    (order, queue.scan_steps)
}

/// The wake-up index driven bare (no dedup, no detectors).
fn replay_indexed(space: KeySpace, arrivals: &[Message<Bytes>]) -> (Vec<MessageId>, WakeupStats) {
    let mut clock = ProbClock::new(space);
    let mut index = WakeupIndex::new(clock.len());
    let mut order = Vec::new();
    for (t, m) in arrivals.iter().enumerate() {
        index.insert(t as u64, m.clone(), &clock);
        while let Some(d) = index.pop_ready() {
            clock.record_delivery(d.keys());
            let advanced: Vec<usize> = d.keys().iter().collect();
            order.push(d.id());
            index.on_clock_advance(advanced, &clock);
        }
    }
    (order, index.stats())
}

/// A full endpoint (dedup and detectors at their defaults).
fn replay_process(space: KeySpace, arrivals: &[Message<Bytes>]) -> Vec<MessageId> {
    let keys = KeySet::from_entries(space, &(0..space.k()).collect::<Vec<_>>()).unwrap();
    let mut process: PcbProcess<Bytes> = PcbProcess::new(ProcessId::new(u32::MAX as usize), keys);
    let mut order = Vec::new();
    for (t, m) in arrivals.iter().enumerate() {
        for d in process.on_receive(m.clone(), t as u64) {
            order.push(d.message.id());
        }
    }
    order
}

#[test]
fn reversed_fifo_chain_all_engines_agree() {
    // Single-sender FIFO chain arriving fully reversed: the naive
    // engine's worst case (every arrival rescans the whole queue).
    let space = KeySpace::new(8, 2).unwrap();
    let mut sender: PcbProcess<Bytes> =
        PcbProcess::new(ProcessId::new(0), KeySet::from_entries(space, &[1, 5]).unwrap());
    let mut arrivals: Vec<Message<Bytes>> =
        (0..50u64).map(|i| sender.broadcast(Bytes::from(i.to_be_bytes().to_vec()))).collect();
    arrivals.reverse();

    let (naive_order, scans) = replay_naive(space, &arrivals);
    let (indexed_order, stats) = replay_indexed(space, &arrivals);
    assert_eq!(naive_order, indexed_order);
    assert_eq!(naive_order.len(), 50, "fixpoint delivers the whole chain");
    let seqs: Vec<u64> = naive_order.iter().map(|id| id.seq()).collect();
    assert_eq!(seqs, (1..=50).collect::<Vec<_>>(), "FIFO order restored");
    // The index wakes exactly one waiter per delivery on this trace while
    // the naive path rescans the queue; the work gap is quadratic.
    assert_eq!(stats.max_wake_fanout, 1);
    assert!(
        scans > 2 * stats.gap_checks,
        "naive {scans} scans vs {} indexed gap checks",
        stats.gap_checks
    );
}

#[test]
fn random_traces_byte_identical_across_engines() {
    // Both a colliding space (r=6, k=2 over up to 5 senders) and a
    // roomier one: delivery order must match byte-for-byte either way.
    for (r, k) in [(6, 2), (16, 2)] {
        let space = KeySpace::new(r, k).unwrap();
        for seed in 0..20u64 {
            let senders = 2 + (seed as usize % 4);
            let arrivals = generate_trace(seed, senders, 6, space);
            let (naive_order, _) = replay_naive(space, &arrivals);
            let (indexed_order, _) = replay_indexed(space, &arrivals);
            let process_order = replay_process(space, &arrivals);

            assert_eq!(
                naive_order.len(),
                arrivals.len(),
                "seed {seed}: every message is eventually deliverable"
            );
            assert_eq!(naive_order, indexed_order, "seed {seed}: raw engines diverge");
            assert_eq!(naive_order, process_order, "seed {seed}: endpoint diverges");

            // "Byte-identical": re-encode each delivered message in naive
            // order and in indexed order; the frames must match exactly.
            let by_id = |order: &[MessageId]| -> Vec<Bytes> {
                order
                    .iter()
                    .map(|id| {
                        let m = arrivals.iter().find(|m| m.id() == *id).unwrap();
                        wire::encode(m)
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(by_id(&naive_order), by_id(&indexed_order));
        }
    }
}

#[test]
fn interleaved_drain_points_do_not_change_order() {
    // The naive queue drains after every arrival; make sure the index
    // gives the same answer when drained only once at the end (tickets,
    // not drain timing, decide the order among simultaneously-ready
    // messages).
    let space = KeySpace::new(6, 2).unwrap();
    for seed in 100..110u64 {
        let arrivals = generate_trace(seed, 3, 5, space);
        let (naive_order, _) = replay_naive(space, &arrivals);

        let mut clock = ProbClock::new(space);
        let mut index = WakeupIndex::new(clock.len());
        for (t, m) in arrivals.iter().enumerate() {
            index.insert(t as u64, m.clone(), &clock);
        }
        let mut batched_order = Vec::new();
        while let Some(d) = index.pop_ready() {
            clock.record_delivery(d.keys());
            let advanced: Vec<usize> = d.keys().iter().collect();
            batched_order.push(d.id());
            index.on_clock_advance(advanced, &clock);
        }
        assert_eq!(naive_order, batched_order, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn delivery_order_invariant_under_rewrite(
        seed in 0u64..u64::MAX / 2,
        senders in 2usize..6,
        per_sender in 1usize..8,
    ) {
        let space = KeySpace::new(6, 2).unwrap();
        let arrivals = generate_trace(seed, senders, per_sender, space);
        let (naive_order, _) = replay_naive(space, &arrivals);
        let (indexed_order, _) = replay_indexed(space, &arrivals);
        prop_assert_eq!(&naive_order, &indexed_order);
        prop_assert_eq!(naive_order.len(), arrivals.len());
    }
}
