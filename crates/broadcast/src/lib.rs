//! Probabilistic causal broadcast — the protocol layer of the
//! Mostefaoui-Weiss PaCT'17 reproduction.
//!
//! The crate offers two views of the same algorithms:
//!
//! * [`PcbProcess`] — a full endpoint for applications: pending queue,
//!   duplicate suppression, and the Algorithm 4/5 delivery-error
//!   detectors, returning [`Delivery`] records per message.
//! * [`Discipline`] implementations — lean per-process ordering state
//!   machines used by the simulator and benchmarks to compare the paper's
//!   mechanism ([`ProbDiscipline`]) against exact vector clocks
//!   ([`VectorDiscipline`]), FIFO ([`FifoDiscipline`]), unordered delivery
//!   ([`ImmediateDiscipline`]) and the merge-instead-of-increment ablation
//!   ([`MergeProbDiscipline`]).
//!
//! # Quick example
//!
//! ```
//! use pcb_broadcast::PcbProcess;
//! use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProcessId};
//!
//! let space = KeySpace::new(100, 4)?;
//! let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 1);
//! let mut alice = PcbProcess::new(ProcessId::new(0), assigner.next_set()?);
//! let mut bob = PcbProcess::new(ProcessId::new(1), assigner.next_set()?);
//!
//! let m = alice.broadcast("edit: insert 'x' at 3");
//! for delivery in bob.on_receive(m, 0) {
//!     assert!(!delivery.instant_alert, "nominal delivery raises no alert");
//!     println!("applied {}", delivery.message.payload());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dedup;
pub mod detector;
pub mod discipline;
pub mod endpoint;
pub mod fragment;
pub mod membership;
pub mod message;
pub mod par;
pub mod pending;
pub mod process;
pub mod recovery;
pub mod snapshot;
pub mod wire;

pub use dedup::DedupFilter;
pub use detector::{instant_alert, RecentListDetector};
pub use discipline::{
    Alerts, DetectingProbDiscipline, Discipline, FifoDiscipline, ImmediateDiscipline,
    MergeProbDiscipline, ProbDiscipline, VectorDiscipline,
};
pub use endpoint::{Endpoint, EndpointStatus, Input, Output, RecoveryTimingUs};
pub use fragment::{fragment, FragmentError, Reassembler, DEFAULT_MTU, MAX_FRAGMENTS, MIN_MTU};
pub use membership::{Group, MemberState};
pub use message::{Message, MessageId};
pub use par::BatchPool;
pub use pending::{InsertVerdict, WakeupIndex, WakeupStats};
pub use process::{Delivery, PcbConfig, PcbProcess, ProcessStats};
pub use recovery::{Counters, MessageStore, SyncRequest, SyncResponse};
pub use snapshot::{decode_snapshot, encode_snapshot, ProcessSnapshot};
pub use wire::{
    control_size, decode, encode, encode_full, peek_sender, DeltaDecoder, DeltaEncoder, WireError,
};
