//! Delivery disciplines: the pluggable ordering rule of a broadcast stack.
//!
//! The simulator and the benchmarks are generic over a [`Discipline`] so
//! the paper's mechanism can be compared, under identical workloads,
//! against the exact vector-clock protocol, FIFO-only ordering, and
//! unordered delivery. Each discipline owns one process's ordering state
//! and decides when a received message may be handed to the application.

use pcb_clock::{Gap, KeySet, ProbClock, ProcessId, Timestamp, VectorClock};

use crate::detector::RecentListDetector;

/// Detector verdicts attached to one delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Alerts {
    /// Algorithm 4 alert (instant coverage test).
    pub instant: bool,
    /// Algorithm 5 alert (coverage + recent-list witness).
    pub recent: bool,
}

/// One process's ordering state under a particular protocol.
///
/// Object safety is not required: the simulator monomorphizes over the
/// concrete discipline for speed.
pub trait Discipline {
    /// The control information this protocol attaches to messages.
    type Stamp: Clone + std::fmt::Debug;

    /// Protocol name for reports.
    fn name() -> &'static str;

    /// Stamps an outgoing broadcast (send event).
    fn stamp_send(&mut self) -> Self::Stamp;

    /// Whether a message from `sender` (whose key set is `keys`) stamped
    /// `stamp` is ready for delivery.
    fn is_deliverable(&self, sender: ProcessId, keys: &KeySet, stamp: &Self::Stamp) -> bool;

    /// Records the delivery of such a message at local time `now`,
    /// returning any detector alerts the protocol raises (run *before*
    /// its state is advanced, per the paper's Algorithms 4/5).
    fn record_delivery(
        &mut self,
        now: u64,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Self::Stamp,
    ) -> Alerts;

    /// Control-information wire size in bytes for one message.
    fn stamp_wire_size(stamp: &Self::Stamp) -> usize;

    /// The stamp's values on the sender's own `keys`, in key order — what
    /// a trace needs to replay clock effects exactly. Disciplines whose
    /// stamp is not an entry vector return the empty default.
    fn stamp_key_values(stamp: &Self::Stamp, keys: &KeySet) -> Vec<u64> {
        let _ = (stamp, keys);
        Vec::new()
    }

    /// State transfer for a joining process: adopt the *ordering state*
    /// (clock values) of `donor` while keeping this process's own
    /// identity/keys. Default: no state to adopt.
    fn adopt_state(&mut self, donor: &Self) {
        let _ = donor;
    }

    // --- Wake channels -------------------------------------------------
    //
    // Entry-indexed engines ask the discipline *what* a blocked message
    // waits for instead of re-running `is_deliverable` over the whole
    // pending queue after every delivery. A discipline exposes
    // `channel_count` monotone counters; a blocked message parks on the
    // first channel whose wait-condition fails until that channel's value
    // reaches the reported threshold. The defaults collapse to a single
    // "anything happened" channel with threshold 0, which wakes every
    // parked message on every delivery — exactly the legacy rescan — so
    // existing implementations stay correct without overriding anything.

    /// Number of wake channels the delivery guard reads.
    fn channel_count(&self) -> usize {
        1
    }

    /// Where `stamp` currently blocks, scanning channels from `start`
    /// (the channel it last parked on; re-checking earlier channels is
    /// unnecessary because channel values only grow between
    /// [`Discipline::adopt_state`] calls). [`Gap::Never`] marks stamps no
    /// future delivery can unblock (e.g. a stale sequence number).
    fn wait_gap(&self, sender: ProcessId, keys: &KeySet, stamp: &Self::Stamp, start: usize) -> Gap {
        let _ = start;
        if self.is_deliverable(sender, keys, stamp) {
            Gap::Ready
        } else {
            // Threshold 0 on channel 0: woken by every delivery.
            Gap::Blocked { entry: 0, required: 0 }
        }
    }

    /// Current value of a wake channel.
    fn channel_value(&self, channel: usize) -> u64 {
        let _ = channel;
        0
    }

    /// Appends to `out` the channels the delivery of (`sender`, `keys`,
    /// `stamp`) advances. Called *before* [`Discipline::record_delivery`].
    fn advanced_channels(
        &self,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Self::Stamp,
        out: &mut Vec<usize>,
    ) {
        let _ = (sender, keys, stamp);
        out.push(0);
    }

    /// Whether this discipline's wake channels may be partitioned by a
    /// [`pcb_clock::ShardMap`] and owned shard-by-shard (fantoch's
    /// sequential-vs-parallel `KeyClocks` split): `true` iff every wake
    /// condition is *channel-local* — a parked waiter's threshold reads
    /// exactly the one channel it parked on, and
    /// [`Discipline::advanced_channels`] names every channel a delivery
    /// advances — so disjoint shard groups never observe each other and
    /// a sharded sweep is bit-identical to the sequential one.
    ///
    /// The default is `false`: the catch-all single-channel fallback
    /// wakes every waiter on every delivery, which is inherently global.
    fn parallel() -> bool {
        false
    }
}

/// The paper's probabilistic `(R, K)` discipline, with the Algorithm 4
/// instant detector built in.
#[derive(Debug, Clone)]
pub struct ProbDiscipline {
    keys: KeySet,
    clock: ProbClock,
}

impl ProbDiscipline {
    /// Creates the discipline for a process holding `keys`.
    #[must_use]
    pub fn new(keys: KeySet) -> Self {
        let clock = ProbClock::new(keys.space());
        Self { keys, clock }
    }

    /// This process's key set.
    #[must_use]
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The local clock (for snapshots and diagnostics).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        &self.clock
    }
}

impl Discipline for ProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.clock.stamp_send(&self.keys)
    }

    fn is_deliverable(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.clock.is_deliverable(stamp, keys)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let instant = self.clock.is_covered(stamp, keys);
        self.clock.record_delivery(keys);
        Alerts { instant, recent: false }
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn stamp_key_values(stamp: &Timestamp, keys: &KeySet) -> Vec<u64> {
        keys.iter().map(|entry| stamp[entry]).collect()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock.reset_to(donor.clock.vector().clone());
    }

    fn channel_count(&self) -> usize {
        self.clock.len()
    }

    fn wait_gap(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp, start: usize) -> Gap {
        self.clock.deliverability_gap_from(stamp, keys, start)
    }

    fn channel_value(&self, channel: usize) -> u64 {
        self.clock.vector().entries()[channel]
    }

    fn advanced_channels(
        &self,
        _sender: ProcessId,
        keys: &KeySet,
        _stamp: &Timestamp,
        out: &mut Vec<usize>,
    ) {
        // Algorithm 2 increments exactly the sender's K entries.
        out.extend(keys.iter());
    }

    fn parallel() -> bool {
        // One wake channel per clock entry; a waiter's threshold reads
        // exactly the entry it parked on, so entry shards are disjoint.
        true
    }
}

/// [`ProbDiscipline`] plus the Algorithm 5 recent-list detector — used by
/// the detector-precision experiments.
#[derive(Debug, Clone)]
pub struct DetectingProbDiscipline {
    inner: ProbDiscipline,
    detector: RecentListDetector,
}

impl DetectingProbDiscipline {
    /// Creates the discipline with a recent-list window of `window` time
    /// units (use ≈ the propagation delay).
    #[must_use]
    pub fn new(keys: KeySet, window: u64) -> Self {
        Self { inner: ProbDiscipline::new(keys), detector: RecentListDetector::new(window) }
    }

    /// The local clock (for snapshots and diagnostics).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        self.inner.clock()
    }
}

impl Discipline for DetectingProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic+alg5"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.inner.stamp_send()
    }

    fn is_deliverable(&self, sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.inner.is_deliverable(sender, keys, stamp)
    }

    fn record_delivery(
        &mut self,
        now: u64,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let recent = self.detector.check(now, self.inner.clock(), stamp, keys);
        let mut alerts = self.inner.record_delivery(now, sender, keys, stamp);
        alerts.recent = recent;
        self.detector.record(now, stamp.clone());
        alerts
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn stamp_key_values(stamp: &Timestamp, keys: &KeySet) -> Vec<u64> {
        ProbDiscipline::stamp_key_values(stamp, keys)
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.inner.adopt_state(&donor.inner);
    }

    fn channel_count(&self) -> usize {
        self.inner.channel_count()
    }

    fn wait_gap(&self, sender: ProcessId, keys: &KeySet, stamp: &Timestamp, start: usize) -> Gap {
        self.inner.wait_gap(sender, keys, stamp, start)
    }

    fn channel_value(&self, channel: usize) -> u64 {
        self.inner.channel_value(channel)
    }

    fn advanced_channels(
        &self,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
        out: &mut Vec<usize>,
    ) {
        self.inner.advanced_channels(sender, keys, stamp, out);
    }

    fn parallel() -> bool {
        // The recent-list detector runs at delivery time, outside the
        // wake channels; ordering state is the inner prob clock.
        ProbDiscipline::parallel()
    }
}

/// Ablation variant: identical to [`ProbDiscipline`] but records deliveries
/// by component-wise max instead of increment. Demonstrates why the
/// paper's Algorithm 2 increments (merging loses the count of deliveries
/// on shared entries and changes the error profile).
#[derive(Debug, Clone)]
pub struct MergeProbDiscipline {
    keys: KeySet,
    clock: ProbClock,
}

impl MergeProbDiscipline {
    /// Creates the merge-variant discipline.
    #[must_use]
    pub fn new(keys: KeySet) -> Self {
        let clock = ProbClock::new(keys.space());
        Self { keys, clock }
    }

    /// The local clock (for the ablation's assertions).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        &self.clock
    }
}

impl Discipline for MergeProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic-merge"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.clock.stamp_send(&self.keys)
    }

    fn is_deliverable(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.clock.is_deliverable(stamp, keys)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let instant = self.clock.is_covered(stamp, keys);
        let mut merged = self.clock.vector().clone();
        merged.merge_max(stamp);
        self.clock.reset_to(merged);
        Alerts { instant, recent: false }
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn stamp_key_values(stamp: &Timestamp, keys: &KeySet) -> Vec<u64> {
        ProbDiscipline::stamp_key_values(stamp, keys)
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock.reset_to(donor.clock.vector().clone());
    }

    fn channel_count(&self) -> usize {
        self.clock.len()
    }

    fn wait_gap(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp, start: usize) -> Gap {
        self.clock.deliverability_gap_from(stamp, keys, start)
    }

    fn channel_value(&self, channel: usize) -> u64 {
        self.clock.vector().entries()[channel]
    }

    fn advanced_channels(
        &self,
        _sender: ProcessId,
        _keys: &KeySet,
        stamp: &Timestamp,
        out: &mut Vec<usize>,
    ) {
        // Merge-max advances exactly the entries where the stamp exceeds
        // the local vector.
        let local = self.clock.vector().entries();
        out.extend(
            stamp.entries().iter().enumerate().filter(|&(i, &ts)| ts > local[i]).map(|(i, _)| i),
        );
    }

    fn parallel() -> bool {
        // Same entry-local wake channels as the increment variant.
        true
    }
}

/// Exact causal order via classical vector clocks — the `(N, N, 1)`
/// baseline the paper compares against for correctness and overhead.
#[derive(Debug, Clone)]
pub struct VectorDiscipline {
    id: ProcessId,
    clock: VectorClock,
}

impl VectorDiscipline {
    /// Creates the discipline for process `id` in a universe of `n`.
    #[must_use]
    pub fn new(id: ProcessId, n: usize) -> Self {
        Self { id, clock: VectorClock::new(n) }
    }
}

impl Discipline for VectorDiscipline {
    type Stamp = VectorClock;

    fn name() -> &'static str {
        "vector"
    }

    fn stamp_send(&mut self) -> VectorClock {
        self.clock.stamp_send(self.id)
    }

    fn is_deliverable(&self, sender: ProcessId, _keys: &KeySet, stamp: &VectorClock) -> bool {
        self.clock.is_deliverable(stamp, sender)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        sender: ProcessId,
        _keys: &KeySet,
        stamp: &VectorClock,
    ) -> Alerts {
        self.clock.record_delivery(stamp, sender);
        Alerts::default()
    }

    fn stamp_wire_size(stamp: &VectorClock) -> usize {
        stamp.wire_size()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock = donor.clock.clone();
    }

    fn channel_count(&self) -> usize {
        self.clock.len()
    }

    fn wait_gap(
        &self,
        sender: ProcessId,
        _keys: &KeySet,
        stamp: &VectorClock,
        start: usize,
    ) -> Gap {
        let local = self.clock.counters();
        let ts = stamp.counters();
        let j = sender.index();
        // The guard needs local[j] == ts[j] - 1 exactly: once the local
        // counter passes that, no delivery can ever roll it back.
        if ts[j] == 0 || local[j] >= ts[j] {
            return Gap::Never;
        }
        for (c, (&mine, &theirs)) in local.iter().zip(ts).enumerate().skip(start) {
            let required = if c == j { theirs - 1 } else { theirs };
            if mine < required {
                return Gap::Blocked { entry: c, required };
            }
        }
        Gap::Ready
    }

    fn channel_value(&self, channel: usize) -> u64 {
        self.clock.counters()[channel]
    }

    fn advanced_channels(
        &self,
        _sender: ProcessId,
        _keys: &KeySet,
        stamp: &VectorClock,
        out: &mut Vec<usize>,
    ) {
        let local = self.clock.counters();
        out.extend(
            stamp.counters().iter().enumerate().filter(|&(i, &ts)| ts > local[i]).map(|(i, _)| i),
        );
    }

    fn parallel() -> bool {
        // One wake channel per process counter; thresholds are
        // channel-local (`Never` verdicts never park, so they do not
        // cross shards either).
        true
    }
}

/// FIFO-only ordering: per-sender sequence numbers, no cross-sender
/// constraints. Cheapest ordered baseline; violates causality across
/// senders.
#[derive(Debug, Clone)]
pub struct FifoDiscipline {
    seq: u64,
    next_expected: Vec<u64>,
}

impl FifoDiscipline {
    /// Creates the discipline for a universe of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { seq: 0, next_expected: vec![1; n] }
    }
}

impl Discipline for FifoDiscipline {
    type Stamp = u64;

    fn name() -> &'static str {
        "fifo"
    }

    fn stamp_send(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn is_deliverable(&self, sender: ProcessId, _keys: &KeySet, stamp: &u64) -> bool {
        *stamp == self.next_expected[sender.index()]
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        sender: ProcessId,
        _keys: &KeySet,
        _stamp: &u64,
    ) -> Alerts {
        self.next_expected[sender.index()] += 1;
        Alerts::default()
    }

    fn stamp_wire_size(_stamp: &u64) -> usize {
        std::mem::size_of::<u64>()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.next_expected.clone_from(&donor.next_expected);
    }

    fn channel_count(&self) -> usize {
        self.next_expected.len()
    }

    fn wait_gap(&self, sender: ProcessId, _keys: &KeySet, stamp: &u64, _start: usize) -> Gap {
        let j = sender.index();
        let next = self.next_expected[j];
        if next == *stamp {
            Gap::Ready
        } else if next < *stamp {
            Gap::Blocked { entry: j, required: *stamp }
        } else {
            Gap::Never
        }
    }

    fn channel_value(&self, channel: usize) -> u64 {
        self.next_expected[channel]
    }

    fn advanced_channels(
        &self,
        sender: ProcessId,
        _keys: &KeySet,
        _stamp: &u64,
        out: &mut Vec<usize>,
    ) {
        out.push(sender.index());
    }

    fn parallel() -> bool {
        // One wake channel per sender; a waiter only ever reads its own
        // sender's next-expected counter.
        true
    }
}

/// No ordering at all: every message is delivered on arrival. The floor of
/// the comparison — its violation rate is the raw `P_nc` of the network.
#[derive(Debug, Clone, Default)]
pub struct ImmediateDiscipline;

impl ImmediateDiscipline {
    /// Creates the (stateless) discipline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Discipline for ImmediateDiscipline {
    type Stamp = ();

    fn name() -> &'static str {
        "immediate"
    }

    fn stamp_send(&mut self) {}

    fn is_deliverable(&self, _sender: ProcessId, _keys: &KeySet, _stamp: &()) -> bool {
        true
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        _keys: &KeySet,
        _stamp: &(),
    ) -> Alerts {
        Alerts::default()
    }

    fn stamp_wire_size(_stamp: &()) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    #[test]
    fn parallel_hook_matches_channel_locality() {
        // Entry/sender-indexed disciplines shard; the catch-all
        // single-channel default must stay sequential.
        assert!(ProbDiscipline::parallel());
        assert!(DetectingProbDiscipline::parallel());
        assert!(MergeProbDiscipline::parallel());
        assert!(VectorDiscipline::parallel());
        assert!(FifoDiscipline::parallel());
        assert!(!ImmediateDiscipline::parallel());
    }

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(KeySpace::new(4, 2).unwrap(), entries).unwrap()
    }

    #[test]
    fn prob_discipline_matches_raw_clock() {
        let mut a = ProbDiscipline::new(keys(&[0, 1]));
        let mut b = ProbDiscipline::new(keys(&[1, 2]));
        let ts = a.stamp_send();
        assert!(b.is_deliverable(ProcessId::new(0), a.keys(), &ts));
        let alerts = b.record_delivery(0, ProcessId::new(0), &keys(&[0, 1]), &ts);
        assert!(!alerts.instant && !alerts.recent);
        assert_eq!(ProbDiscipline::stamp_wire_size(&ts), 32);
        assert_eq!(ProbDiscipline::name(), "probabilistic");
    }

    #[test]
    fn prob_discipline_flags_covered_delivery() {
        // Figure 2: by the time the late m arrives, the receiver's entries
        // are covered by concurrent messages.
        let f_i = keys(&[0, 1]);
        let mut pi = ProbDiscipline::new(f_i.clone());
        let m = pi.stamp_send();

        let mut pk = ProbDiscipline::new(keys(&[2, 3]));
        let p = ProcessId::new(9);
        let mut other1 = ProbDiscipline::new(keys(&[0, 3]));
        let mut other2 = ProbDiscipline::new(keys(&[1, 3]));
        let m1 = other1.stamp_send();
        let m2 = other2.stamp_send();
        pk.record_delivery(0, p, &keys(&[0, 3]), &m1);
        pk.record_delivery(1, p, &keys(&[1, 3]), &m2);
        let alerts = pk.record_delivery(2, p, &f_i, &m);
        assert!(alerts.instant, "covered late message raises Algorithm 4 alert");
    }

    #[test]
    fn detecting_discipline_raises_recent_only_with_witness() {
        let f_i = keys(&[0, 1]);
        let mut pi = ProbDiscipline::new(f_i.clone());
        let m = pi.stamp_send();

        let mut pk = DetectingProbDiscipline::new(keys(&[2, 3]), 1000);
        let p = ProcessId::new(9);
        let f1 = keys(&[0, 3]);
        let f2 = keys(&[1, 3]);
        let mut o1 = ProbDiscipline::new(f1.clone());
        let mut o2 = ProbDiscipline::new(f2.clone());
        let m1 = o1.stamp_send();
        let m2 = o2.stamp_send();
        pk.record_delivery(0, p, &f1, &m1);
        pk.record_delivery(1, p, &f2, &m2);
        let alerts = pk.record_delivery(2, p, &f_i, &m);
        assert!(alerts.instant);
        // Neither m1 nor m2 alone dominates m on entries {0,1}.
        assert!(!alerts.recent, "Algorithm 5 needs a single dominating witness");
        assert_eq!(DetectingProbDiscipline::name(), "probabilistic+alg5");
    }

    #[test]
    fn merge_variant_diverges_from_increment() {
        // Two senders share entry 1; deliver both under each variant.
        let f_a = keys(&[0, 1]);
        let f_b = keys(&[1, 2]);
        let mut sender_a = ProbDiscipline::new(f_a.clone());
        let mut sender_b = ProbDiscipline::new(f_b.clone());
        let ts_a = sender_a.stamp_send();
        let ts_b = sender_b.stamp_send();

        let p = ProcessId::new(0);
        let mut inc = ProbDiscipline::new(keys(&[2, 3]));
        inc.record_delivery(0, p, &f_a, &ts_a);
        inc.record_delivery(1, p, &f_b, &ts_b);
        // Increment counts both deliveries on shared entry 1.
        assert_eq!(inc.clock().vector().entries(), &[1, 2, 1, 0]);

        let mut mrg = MergeProbDiscipline::new(keys(&[2, 3]));
        mrg.record_delivery(0, p, &f_a, &ts_a);
        mrg.record_delivery(1, p, &f_b, &ts_b);
        // Merge collapses them: entry 1 stays at 1, losing one delivery.
        assert_eq!(mrg.clock().vector().entries(), &[1, 1, 1, 0]);
        assert_eq!(MergeProbDiscipline::name(), "probabilistic-merge");
    }

    #[test]
    fn vector_discipline_exact() {
        let mut a = VectorDiscipline::new(ProcessId::new(0), 3);
        let mut b = VectorDiscipline::new(ProcessId::new(1), 3);
        let c = VectorDiscipline::new(ProcessId::new(2), 3);
        let dummy = keys(&[0, 1]);

        let m = a.stamp_send();
        b.record_delivery(0, ProcessId::new(0), &dummy, &m);
        let m_prime = b.stamp_send();
        assert!(!c.is_deliverable(ProcessId::new(1), &dummy, &m_prime));
        assert!(c.is_deliverable(ProcessId::new(0), &dummy, &m));
        assert_eq!(VectorDiscipline::stamp_wire_size(&m), 24);
    }

    #[test]
    fn fifo_discipline_orders_per_sender_only() {
        let mut s = FifoDiscipline::new(2);
        let dummy = keys(&[0, 1]);
        let m1 = s.stamp_send();
        let m2 = s.stamp_send();
        let mut rx = FifoDiscipline::new(2);
        let p0 = ProcessId::new(0);
        assert!(!rx.is_deliverable(p0, &dummy, &m2));
        assert!(rx.is_deliverable(p0, &dummy, &m1));
        rx.record_delivery(0, p0, &dummy, &m1);
        assert!(rx.is_deliverable(p0, &dummy, &m2));
        assert_eq!(FifoDiscipline::stamp_wire_size(&m1), 8);
    }

    #[test]
    fn prob_wake_channels_mirror_the_gap() {
        let mut a = ProbDiscipline::new(keys(&[0, 1]));
        let rx = ProbDiscipline::new(keys(&[2, 3]));
        let p = ProcessId::new(0);
        let f_a = keys(&[0, 1]);
        let _ = a.stamp_send();
        let ts2 = a.stamp_send();

        assert_eq!(rx.channel_count(), 4);
        // Second send blocks on the first unmet entry (0), needing one
        // prior delivery there.
        match rx.wait_gap(p, &f_a, &ts2, 0) {
            Gap::Blocked { entry, required } => {
                assert_eq!(entry, 0);
                assert_eq!(required, 1);
            }
            other => panic!("expected Blocked, got {other:?}"),
        }
        let mut advanced = Vec::new();
        rx.advanced_channels(p, &f_a, &ts2, &mut advanced);
        assert_eq!(advanced, vec![0, 1], "delivery advances the sender's keys");
        assert_eq!(rx.channel_value(0), 0);
    }

    #[test]
    fn vector_wake_gap_flags_stale_stamps_never() {
        let mut s = VectorDiscipline::new(ProcessId::new(0), 3);
        let mut rx = VectorDiscipline::new(ProcessId::new(1), 3);
        let dummy = keys(&[0, 1]);
        let p0 = ProcessId::new(0);
        let m1 = s.stamp_send();
        let m2 = s.stamp_send();

        match rx.wait_gap(p0, &dummy, &m2, 0) {
            Gap::Blocked { entry, required } => {
                assert_eq!(entry, 0);
                assert_eq!(required, 1, "needs m1 delivered first");
            }
            other => panic!("expected Blocked, got {other:?}"),
        }
        rx.record_delivery(0, p0, &dummy, &m1);
        assert_eq!(rx.wait_gap(p0, &dummy, &m2, 0), Gap::Ready);
        rx.record_delivery(1, p0, &dummy, &m2);
        // A duplicate of m1 can never be delivered again.
        assert_eq!(rx.wait_gap(p0, &dummy, &m1, 0), Gap::Never);
    }

    #[test]
    fn fifo_wake_gap_tracks_next_expected() {
        let mut s = FifoDiscipline::new(2);
        let mut rx = FifoDiscipline::new(2);
        let dummy = keys(&[0, 1]);
        let p0 = ProcessId::new(0);
        let m1 = s.stamp_send();
        let m2 = s.stamp_send();
        assert_eq!(rx.wait_gap(p0, &dummy, &m2, 0), Gap::Blocked { entry: 0, required: 2 });
        rx.record_delivery(0, p0, &dummy, &m1);
        assert_eq!(rx.channel_value(0), 2);
        assert_eq!(rx.wait_gap(p0, &dummy, &m2, 0), Gap::Ready);
        assert_eq!(rx.wait_gap(p0, &dummy, &m1, 0), Gap::Never, "stale seq");
        let mut advanced = Vec::new();
        rx.advanced_channels(p0, &dummy, &m1, &mut advanced);
        assert_eq!(advanced, vec![0]);
    }

    #[test]
    fn default_wake_channels_reproduce_the_rescan_contract() {
        // ImmediateDiscipline keeps the trait defaults: one catch-all
        // channel at threshold 0, woken by every delivery.
        let rx = ImmediateDiscipline::new();
        assert_eq!(rx.channel_count(), 1);
        assert_eq!(rx.wait_gap(ProcessId::new(0), &keys(&[0, 1]), &(), 0), Gap::Ready);
        let mut advanced = Vec::new();
        rx.advanced_channels(ProcessId::new(0), &keys(&[0, 1]), &(), &mut advanced);
        assert_eq!(advanced, vec![0]);
    }

    #[test]
    fn immediate_always_ready() {
        let mut s = ImmediateDiscipline::new();
        s.stamp_send(); // the stamp is `()`
        let mut rx = ImmediateDiscipline::new();
        assert!(rx.is_deliverable(ProcessId::new(0), &keys(&[0, 1]), &()));
        assert_eq!(
            rx.record_delivery(0, ProcessId::new(0), &keys(&[0, 1]), &()),
            Alerts::default()
        );
        assert_eq!(ImmediateDiscipline::stamp_wire_size(&()), 0);
    }
}
