//! Delivery disciplines: the pluggable ordering rule of a broadcast stack.
//!
//! The simulator and the benchmarks are generic over a [`Discipline`] so
//! the paper's mechanism can be compared, under identical workloads,
//! against the exact vector-clock protocol, FIFO-only ordering, and
//! unordered delivery. Each discipline owns one process's ordering state
//! and decides when a received message may be handed to the application.

use pcb_clock::{KeySet, ProbClock, ProcessId, Timestamp, VectorClock};

use crate::detector::RecentListDetector;

/// Detector verdicts attached to one delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Alerts {
    /// Algorithm 4 alert (instant coverage test).
    pub instant: bool,
    /// Algorithm 5 alert (coverage + recent-list witness).
    pub recent: bool,
}

/// One process's ordering state under a particular protocol.
///
/// Object safety is not required: the simulator monomorphizes over the
/// concrete discipline for speed.
pub trait Discipline {
    /// The control information this protocol attaches to messages.
    type Stamp: Clone + std::fmt::Debug;

    /// Protocol name for reports.
    fn name() -> &'static str;

    /// Stamps an outgoing broadcast (send event).
    fn stamp_send(&mut self) -> Self::Stamp;

    /// Whether a message from `sender` (whose key set is `keys`) stamped
    /// `stamp` is ready for delivery.
    fn is_deliverable(&self, sender: ProcessId, keys: &KeySet, stamp: &Self::Stamp) -> bool;

    /// Records the delivery of such a message at local time `now`,
    /// returning any detector alerts the protocol raises (run *before*
    /// its state is advanced, per the paper's Algorithms 4/5).
    fn record_delivery(
        &mut self,
        now: u64,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Self::Stamp,
    ) -> Alerts;

    /// Control-information wire size in bytes for one message.
    fn stamp_wire_size(stamp: &Self::Stamp) -> usize;

    /// State transfer for a joining process: adopt the *ordering state*
    /// (clock values) of `donor` while keeping this process's own
    /// identity/keys. Default: no state to adopt.
    fn adopt_state(&mut self, donor: &Self) {
        let _ = donor;
    }
}

/// The paper's probabilistic `(R, K)` discipline, with the Algorithm 4
/// instant detector built in.
#[derive(Debug, Clone)]
pub struct ProbDiscipline {
    keys: KeySet,
    clock: ProbClock,
}

impl ProbDiscipline {
    /// Creates the discipline for a process holding `keys`.
    #[must_use]
    pub fn new(keys: KeySet) -> Self {
        let clock = ProbClock::new(keys.space());
        Self { keys, clock }
    }

    /// This process's key set.
    #[must_use]
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The local clock (for snapshots and diagnostics).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        &self.clock
    }
}

impl Discipline for ProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.clock.stamp_send(&self.keys)
    }

    fn is_deliverable(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.clock.is_deliverable(stamp, keys)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let instant = self.clock.is_covered(stamp, keys);
        self.clock.record_delivery(keys);
        Alerts { instant, recent: false }
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock.reset_to(donor.clock.vector().clone());
    }
}

/// [`ProbDiscipline`] plus the Algorithm 5 recent-list detector — used by
/// the detector-precision experiments.
#[derive(Debug, Clone)]
pub struct DetectingProbDiscipline {
    inner: ProbDiscipline,
    detector: RecentListDetector,
}

impl DetectingProbDiscipline {
    /// Creates the discipline with a recent-list window of `window` time
    /// units (use ≈ the propagation delay).
    #[must_use]
    pub fn new(keys: KeySet, window: u64) -> Self {
        Self { inner: ProbDiscipline::new(keys), detector: RecentListDetector::new(window) }
    }

    /// The local clock (for snapshots and diagnostics).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        self.inner.clock()
    }
}

impl Discipline for DetectingProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic+alg5"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.inner.stamp_send()
    }

    fn is_deliverable(&self, sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.inner.is_deliverable(sender, keys, stamp)
    }

    fn record_delivery(
        &mut self,
        now: u64,
        sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let recent = self.detector.check(now, self.inner.clock(), stamp, keys);
        let mut alerts = self.inner.record_delivery(now, sender, keys, stamp);
        alerts.recent = recent;
        self.detector.record(now, stamp.clone());
        alerts
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.inner.adopt_state(&donor.inner);
    }
}

/// Ablation variant: identical to [`ProbDiscipline`] but records deliveries
/// by component-wise max instead of increment. Demonstrates why the
/// paper's Algorithm 2 increments (merging loses the count of deliveries
/// on shared entries and changes the error profile).
#[derive(Debug, Clone)]
pub struct MergeProbDiscipline {
    keys: KeySet,
    clock: ProbClock,
}

impl MergeProbDiscipline {
    /// Creates the merge-variant discipline.
    #[must_use]
    pub fn new(keys: KeySet) -> Self {
        let clock = ProbClock::new(keys.space());
        Self { keys, clock }
    }

    /// The local clock (for the ablation's assertions).
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        &self.clock
    }
}

impl Discipline for MergeProbDiscipline {
    type Stamp = Timestamp;

    fn name() -> &'static str {
        "probabilistic-merge"
    }

    fn stamp_send(&mut self) -> Timestamp {
        self.clock.stamp_send(&self.keys)
    }

    fn is_deliverable(&self, _sender: ProcessId, keys: &KeySet, stamp: &Timestamp) -> bool {
        self.clock.is_deliverable(stamp, keys)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        keys: &KeySet,
        stamp: &Timestamp,
    ) -> Alerts {
        let instant = self.clock.is_covered(stamp, keys);
        let mut merged = self.clock.vector().clone();
        merged.merge_max(stamp);
        self.clock.reset_to(merged);
        Alerts { instant, recent: false }
    }

    fn stamp_wire_size(stamp: &Timestamp) -> usize {
        stamp.wire_size()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock.reset_to(donor.clock.vector().clone());
    }
}

/// Exact causal order via classical vector clocks — the `(N, N, 1)`
/// baseline the paper compares against for correctness and overhead.
#[derive(Debug, Clone)]
pub struct VectorDiscipline {
    id: ProcessId,
    clock: VectorClock,
}

impl VectorDiscipline {
    /// Creates the discipline for process `id` in a universe of `n`.
    #[must_use]
    pub fn new(id: ProcessId, n: usize) -> Self {
        Self { id, clock: VectorClock::new(n) }
    }
}

impl Discipline for VectorDiscipline {
    type Stamp = VectorClock;

    fn name() -> &'static str {
        "vector"
    }

    fn stamp_send(&mut self) -> VectorClock {
        self.clock.stamp_send(self.id)
    }

    fn is_deliverable(&self, sender: ProcessId, _keys: &KeySet, stamp: &VectorClock) -> bool {
        self.clock.is_deliverable(stamp, sender)
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        sender: ProcessId,
        _keys: &KeySet,
        stamp: &VectorClock,
    ) -> Alerts {
        self.clock.record_delivery(stamp, sender);
        Alerts::default()
    }

    fn stamp_wire_size(stamp: &VectorClock) -> usize {
        stamp.wire_size()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.clock = donor.clock.clone();
    }
}

/// FIFO-only ordering: per-sender sequence numbers, no cross-sender
/// constraints. Cheapest ordered baseline; violates causality across
/// senders.
#[derive(Debug, Clone)]
pub struct FifoDiscipline {
    seq: u64,
    next_expected: Vec<u64>,
}

impl FifoDiscipline {
    /// Creates the discipline for a universe of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { seq: 0, next_expected: vec![1; n] }
    }
}

impl Discipline for FifoDiscipline {
    type Stamp = u64;

    fn name() -> &'static str {
        "fifo"
    }

    fn stamp_send(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn is_deliverable(&self, sender: ProcessId, _keys: &KeySet, stamp: &u64) -> bool {
        *stamp == self.next_expected[sender.index()]
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        sender: ProcessId,
        _keys: &KeySet,
        _stamp: &u64,
    ) -> Alerts {
        self.next_expected[sender.index()] += 1;
        Alerts::default()
    }

    fn stamp_wire_size(_stamp: &u64) -> usize {
        std::mem::size_of::<u64>()
    }

    fn adopt_state(&mut self, donor: &Self) {
        self.next_expected.clone_from(&donor.next_expected);
    }
}

/// No ordering at all: every message is delivered on arrival. The floor of
/// the comparison — its violation rate is the raw `P_nc` of the network.
#[derive(Debug, Clone, Default)]
pub struct ImmediateDiscipline;

impl ImmediateDiscipline {
    /// Creates the (stateless) discipline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Discipline for ImmediateDiscipline {
    type Stamp = ();

    fn name() -> &'static str {
        "immediate"
    }

    fn stamp_send(&mut self) {}

    fn is_deliverable(&self, _sender: ProcessId, _keys: &KeySet, _stamp: &()) -> bool {
        true
    }

    fn record_delivery(
        &mut self,
        _now: u64,
        _sender: ProcessId,
        _keys: &KeySet,
        _stamp: &(),
    ) -> Alerts {
        Alerts::default()
    }

    fn stamp_wire_size(_stamp: &()) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(KeySpace::new(4, 2).unwrap(), entries).unwrap()
    }

    #[test]
    fn prob_discipline_matches_raw_clock() {
        let mut a = ProbDiscipline::new(keys(&[0, 1]));
        let mut b = ProbDiscipline::new(keys(&[1, 2]));
        let ts = a.stamp_send();
        assert!(b.is_deliverable(ProcessId::new(0), a.keys(), &ts));
        let alerts = b.record_delivery(0, ProcessId::new(0), &keys(&[0, 1]), &ts);
        assert!(!alerts.instant && !alerts.recent);
        assert_eq!(ProbDiscipline::stamp_wire_size(&ts), 32);
        assert_eq!(ProbDiscipline::name(), "probabilistic");
    }

    #[test]
    fn prob_discipline_flags_covered_delivery() {
        // Figure 2: by the time the late m arrives, the receiver's entries
        // are covered by concurrent messages.
        let f_i = keys(&[0, 1]);
        let mut pi = ProbDiscipline::new(f_i.clone());
        let m = pi.stamp_send();

        let mut pk = ProbDiscipline::new(keys(&[2, 3]));
        let p = ProcessId::new(9);
        let mut other1 = ProbDiscipline::new(keys(&[0, 3]));
        let mut other2 = ProbDiscipline::new(keys(&[1, 3]));
        let m1 = other1.stamp_send();
        let m2 = other2.stamp_send();
        pk.record_delivery(0, p, &keys(&[0, 3]), &m1);
        pk.record_delivery(1, p, &keys(&[1, 3]), &m2);
        let alerts = pk.record_delivery(2, p, &f_i, &m);
        assert!(alerts.instant, "covered late message raises Algorithm 4 alert");
    }

    #[test]
    fn detecting_discipline_raises_recent_only_with_witness() {
        let f_i = keys(&[0, 1]);
        let mut pi = ProbDiscipline::new(f_i.clone());
        let m = pi.stamp_send();

        let mut pk = DetectingProbDiscipline::new(keys(&[2, 3]), 1000);
        let p = ProcessId::new(9);
        let f1 = keys(&[0, 3]);
        let f2 = keys(&[1, 3]);
        let mut o1 = ProbDiscipline::new(f1.clone());
        let mut o2 = ProbDiscipline::new(f2.clone());
        let m1 = o1.stamp_send();
        let m2 = o2.stamp_send();
        pk.record_delivery(0, p, &f1, &m1);
        pk.record_delivery(1, p, &f2, &m2);
        let alerts = pk.record_delivery(2, p, &f_i, &m);
        assert!(alerts.instant);
        // Neither m1 nor m2 alone dominates m on entries {0,1}.
        assert!(!alerts.recent, "Algorithm 5 needs a single dominating witness");
        assert_eq!(DetectingProbDiscipline::name(), "probabilistic+alg5");
    }

    #[test]
    fn merge_variant_diverges_from_increment() {
        // Two senders share entry 1; deliver both under each variant.
        let f_a = keys(&[0, 1]);
        let f_b = keys(&[1, 2]);
        let mut sender_a = ProbDiscipline::new(f_a.clone());
        let mut sender_b = ProbDiscipline::new(f_b.clone());
        let ts_a = sender_a.stamp_send();
        let ts_b = sender_b.stamp_send();

        let p = ProcessId::new(0);
        let mut inc = ProbDiscipline::new(keys(&[2, 3]));
        inc.record_delivery(0, p, &f_a, &ts_a);
        inc.record_delivery(1, p, &f_b, &ts_b);
        // Increment counts both deliveries on shared entry 1.
        assert_eq!(inc.clock().vector().entries(), &[1, 2, 1, 0]);

        let mut mrg = MergeProbDiscipline::new(keys(&[2, 3]));
        mrg.record_delivery(0, p, &f_a, &ts_a);
        mrg.record_delivery(1, p, &f_b, &ts_b);
        // Merge collapses them: entry 1 stays at 1, losing one delivery.
        assert_eq!(mrg.clock().vector().entries(), &[1, 1, 1, 0]);
        assert_eq!(MergeProbDiscipline::name(), "probabilistic-merge");
    }

    #[test]
    fn vector_discipline_exact() {
        let mut a = VectorDiscipline::new(ProcessId::new(0), 3);
        let mut b = VectorDiscipline::new(ProcessId::new(1), 3);
        let c = VectorDiscipline::new(ProcessId::new(2), 3);
        let dummy = keys(&[0, 1]);

        let m = a.stamp_send();
        b.record_delivery(0, ProcessId::new(0), &dummy, &m);
        let m_prime = b.stamp_send();
        assert!(!c.is_deliverable(ProcessId::new(1), &dummy, &m_prime));
        assert!(c.is_deliverable(ProcessId::new(0), &dummy, &m));
        assert_eq!(VectorDiscipline::stamp_wire_size(&m), 24);
    }

    #[test]
    fn fifo_discipline_orders_per_sender_only() {
        let mut s = FifoDiscipline::new(2);
        let dummy = keys(&[0, 1]);
        let m1 = s.stamp_send();
        let m2 = s.stamp_send();
        let mut rx = FifoDiscipline::new(2);
        let p0 = ProcessId::new(0);
        assert!(!rx.is_deliverable(p0, &dummy, &m2));
        assert!(rx.is_deliverable(p0, &dummy, &m1));
        rx.record_delivery(0, p0, &dummy, &m1);
        assert!(rx.is_deliverable(p0, &dummy, &m2));
        assert_eq!(FifoDiscipline::stamp_wire_size(&m1), 8);
    }

    #[test]
    fn immediate_always_ready() {
        let mut s = ImmediateDiscipline::new();
        let stamp = s.stamp_send();
        let mut rx = ImmediateDiscipline::default();
        assert!(rx.is_deliverable(ProcessId::new(0), &keys(&[0, 1]), &stamp));
        assert_eq!(
            rx.record_delivery(0, ProcessId::new(0), &keys(&[0, 1]), &stamp),
            Alerts::default()
        );
        assert_eq!(ImmediateDiscipline::stamp_wire_size(&()), 0);
    }
}
