//! Delivery-error detection (paper §4.2, Algorithms 4 and 5).
//!
//! The probabilistic mechanism may deliver a message while a causal
//! predecessor is still missing. Applications are assumed to own a
//! recovery procedure (e.g. anti-entropy); these detectors decide *when*
//! to run it. Both are sound alarms: **if no alert fires, no error
//! occurred**. Algorithm 4 checks only the local vector and over-alerts;
//! Algorithm 5 additionally consults a short list `L` of recently
//! delivered messages, cutting false alerts.

use std::collections::VecDeque;

use pcb_clock::{KeySet, ProbClock, Timestamp};

/// **Algorithm 4.** Alert (returns `true`) iff every entry of the sender's
/// key set is already matched by the local vector, i.e. *no* entry is in
/// the exactly-one-behind state `V_i[x] = m.V[x] - 1` that a nominal
/// in-order delivery exhibits.
///
/// Run *before* `record_delivery`. A `true` result means concurrent
/// messages have covered all of the sender's entries, so the local process
/// may already have delivered messages that causally depend on `m` — or an
/// error may be brewing for a message still in flight.
///
/// ```
/// use pcb_broadcast::detector::instant_alert;
/// use pcb_clock::{KeySet, KeySpace, ProbClock};
/// let space = KeySpace::new(4, 2)?;
/// let keys = KeySet::from_entries(space, &[0, 1])?;
/// let mut sender = ProbClock::new(space);
/// let ts = sender.stamp_send(&keys);
/// let receiver = ProbClock::new(space);
/// assert!(!instant_alert(&receiver, &ts, &keys)); // nominal: one behind
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[must_use]
pub fn instant_alert(clock: &ProbClock, ts: &Timestamp, sender_keys: &KeySet) -> bool {
    clock.is_covered(ts, sender_keys)
}

/// **Algorithm 5.** The recent-list detector: keeps the messages delivered
/// within the last `window` time units (the paper's `O(T_propagation)`)
/// and alerts only when the coverage condition of Algorithm 4 holds *and*
/// some recently delivered message dominates `m` on the sender's entries —
/// evidence that the coverage came from messages that could actually have
/// raced `m`.
///
/// Gossip layers and UDP-based reliable broadcasts typically already keep
/// such a list for duplicate suppression, so the extra state is free in
/// practice (paper §4.2.1).
#[derive(Debug, Clone)]
pub struct RecentListDetector {
    window: u64,
    list: VecDeque<DeliveredEntry>,
}

#[derive(Debug, Clone)]
struct DeliveredEntry {
    at: u64,
    timestamp: Timestamp,
}

impl RecentListDetector {
    /// Creates a detector whose list `L` retains deliveries for `window`
    /// time units (use the estimated propagation delay, e.g. `2·μ_d`).
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self { window, list: VecDeque::new() }
    }

    /// The retention window.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Current length of the recent list (after the last eviction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the recent list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Runs the Algorithm 5 test for a message timestamped `ts` from a
    /// sender with keys `sender_keys`, at local time `now`. Call before
    /// `record_delivery`, and pair with [`RecentListDetector::record`]
    /// after the delivery goes through.
    #[must_use]
    pub fn check(
        &mut self,
        now: u64,
        clock: &ProbClock,
        ts: &Timestamp,
        sender_keys: &KeySet,
    ) -> bool {
        self.evict(now);
        if !clock.is_covered(ts, sender_keys) {
            return false;
        }
        self.list.iter().any(|entry| sender_keys.iter().all(|x| entry.timestamp[x] >= ts[x]))
    }

    /// Records a delivery into the list `L`. Only the timestamp is needed:
    /// the witness test compares timestamps on the *new* message's sender
    /// entries.
    pub fn record(&mut self, now: u64, timestamp: Timestamp) {
        self.evict(now);
        self.list.push_back(DeliveredEntry { at: now, timestamp });
    }

    fn evict(&mut self, now: u64) {
        let horizon = now.saturating_sub(self.window);
        while self.list.front().is_some_and(|e| e.at < horizon) {
            self.list.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn space() -> KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(space(), entries).unwrap()
    }

    #[test]
    fn instant_alert_nominal_delivery_is_quiet() {
        let f = keys(&[1, 2]);
        let mut sender = ProbClock::new(space());
        let ts = sender.stamp_send(&f);
        let rx = ProbClock::new(space());
        assert!(!instant_alert(&rx, &ts, &f));
    }

    #[test]
    fn instant_alert_fires_when_covered() {
        // Figure 2 replay: by the time the late m arrives, concurrent
        // messages have pushed the receiver's entries past m's values.
        let f_i = keys(&[0, 1]);
        let f_1 = keys(&[0, 3]);
        let f_2 = keys(&[1, 3]);
        let mut pi = ProbClock::new(space());
        let m = pi.stamp_send(&f_i);

        let mut pk = ProbClock::new(space());
        pk.record_delivery(&f_2);
        pk.record_delivery(&f_1);
        assert!(instant_alert(&pk, &m, &f_i), "fully covered late message must alert");
    }

    #[test]
    fn instant_alert_quiet_with_partial_coverage() {
        let f_i = keys(&[0, 1]);
        let f_1 = keys(&[0, 3]);
        let mut pi = ProbClock::new(space());
        let m = pi.stamp_send(&f_i);
        let mut pk = ProbClock::new(space());
        pk.record_delivery(&f_1); // covers entry 0 only
        assert!(!instant_alert(&pk, &m, &f_i));
    }

    #[test]
    fn recent_list_requires_dominating_witness() {
        let f_i = keys(&[0, 1]);
        let f_1 = keys(&[0, 3]);
        let f_2 = keys(&[1, 3]);
        let mut det = RecentListDetector::new(100);

        let mut pi = ProbClock::new(space());
        let m = pi.stamp_send(&f_i);

        let mut p1 = ProbClock::new(space());
        let m1 = p1.stamp_send(&f_1);
        let mut p2 = ProbClock::new(space());
        let m2 = p2.stamp_send(&f_2);

        let mut pk = ProbClock::new(space());
        // Deliver m2 and m1, recording them in L.
        assert!(!det.check(10, &pk, &m2, &f_2));
        pk.record_delivery(&f_2);
        det.record(10, m2.clone());
        assert!(!det.check(12, &pk, &m1, &f_1));
        pk.record_delivery(&f_1);
        det.record(12, m1.clone());

        // Late m arrives covered; no single recent message dominates both
        // of f_i's entries (m1 has entry 0, m2 has entry 1), so Algorithm 5
        // stays quiet where Algorithm 4 alerts.
        assert!(instant_alert(&pk, &m, &f_i));
        assert!(!det.check(14, &pk, &m, &f_i));
    }

    #[test]
    fn recent_list_alerts_with_witness() {
        // A witness whose timestamp dominates m on the sender's entries.
        let f_i = keys(&[0, 1]);
        let f_w = keys(&[2, 3]);
        let mut det = RecentListDetector::new(100);

        let mut pi = ProbClock::new(space());
        let m = pi.stamp_send(&f_i); // [1,1,0,0]

        // Witness from a process that already delivered m: stamp dominates
        // m on entries {0,1}.
        let mut pw = ProbClock::new(space());
        pw.record_delivery(&f_i);
        let w = pw.stamp_send(&f_w); // [1,1,1,1]

        // Receiver delivers the witness first (its own condition passes
        // only if m was delivered... simulate coverage by two others).
        let mut pk = ProbClock::new(space());
        pk.record_delivery(&keys(&[0, 3]));
        pk.record_delivery(&keys(&[1, 2]));
        det.record(5, w);

        assert!(det.check(10, &pk, &m, &f_i), "dominating witness => alert");
    }

    #[test]
    fn recent_list_evicts_by_window() {
        let mut det = RecentListDetector::new(10);
        det.record(0, Timestamp::from_entries(vec![5, 5, 0, 0]));
        assert_eq!(det.len(), 1);
        det.record(25, Timestamp::from_entries(vec![6, 6, 0, 0]));
        assert_eq!(det.len(), 1, "entry at t=0 evicted at t=25 with window 10");
        assert!(!det.is_empty());
        assert_eq!(det.window(), 10);
    }

    #[test]
    fn algorithm5_no_underestimate_vs_algorithm4() {
        // Alg 5 alerts imply Alg 4 alerts (Alg 5 = Alg 4 AND witness).
        let f_i = keys(&[0, 1]);
        let mut det = RecentListDetector::new(1000);
        let mut pi = ProbClock::new(space());
        let m = pi.stamp_send(&f_i);

        let mut pk = ProbClock::new(space());
        det.record(0, Timestamp::from_entries(vec![9, 9, 9, 9]));
        // Not covered locally: both algorithms quiet.
        assert!(!instant_alert(&pk, &m, &f_i));
        assert!(!det.check(1, &pk, &m, &f_i));
        // Covered: Alg 5 may alert only because Alg 4 does.
        pk.record_delivery(&keys(&[0, 3]));
        pk.record_delivery(&keys(&[1, 3]));
        if det.check(2, &pk, &m, &f_i) {
            assert!(instant_alert(&pk, &m, &f_i));
        }
    }
}
