//! Compact wire format for broadcast messages.
//!
//! The paper's argument is about *control-information bytes on the wire*,
//! so the library ships a real codec rather than hand-waving sizes. The
//! format is deliberately simple and self-contained:
//!
//! ```text
//! u8   version (= 2)
//! uvar sender index
//! uvar sequence number
//! uvar R (vector length)        uvar K (entries per process)
//! u128 set_id (16 bytes, LE)    -- the key set, not its expansion
//! uvar × R timestamp entries    -- LEB128 varints; small counters stay small
//! uvar payload length, payload bytes
//! u64  FNV-1a checksum (LE)     -- over every preceding byte
//! ```
//!
//! With fresh clocks the stamp costs ~1 byte per entry, approaching the
//! paper's "few integer timestamps"; entries grow logarithmically with
//! traffic. Decoding recomputes the key set from `set_id` via Algorithm 3.
//!
//! Version 2 appends a 64-bit FNV-1a checksum so in-flight corruption is
//! *detected*, never delivered: each FNV step `x ↦ (x ⊕ b) · prime` is a
//! bijection of the state for fixed position, so any single-byte
//! substitution is guaranteed to change the digest. Decoding is total —
//! arbitrary bytes either yield a well-formed message or a [`WireError`],
//! never a panic.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pcb_clock::{KeySet, KeySpace, ProcessId, Timestamp};

use crate::message::{Message, MessageId};

const VERSION: u8 = 2;
const CHECKSUM_LEN: usize = 8;

/// Errors decoding a wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame ended before the structure was complete.
    Truncated,
    /// Unknown format version byte.
    BadVersion(u8),
    /// The trailing FNV-1a digest does not match the frame body: the
    /// frame was corrupted in flight and must be discarded (anti-entropy
    /// re-fetches it).
    ChecksumMismatch,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// `(R, K)` or `set_id` failed validation.
    BadKeys(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            Self::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Self::BadKeys(msg) => write!(f, "invalid key material: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Appends the FNV-1a digest of everything written so far.
pub(crate) fn seal(mut buf: BytesMut) -> Bytes {
    let digest = fnv1a64(&buf);
    buf.put_u64_le(digest);
    buf.freeze()
}

/// Strips and verifies the trailing digest, returning the frame body.
pub(crate) fn checksum_verified(frame: &Bytes) -> Result<Bytes, WireError> {
    if frame.len() < 1 + CHECKSUM_LEN {
        return Err(WireError::Truncated);
    }
    let split = frame.len() - CHECKSUM_LEN;
    let expected = u64::from_le_bytes(frame[split..].try_into().expect("checksum is 8 bytes"));
    if fnv1a64(&frame[..split]) != expected {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(frame.slice(0..split))
}

pub(crate) fn put_uvar(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_uvar(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let byte = buf.get_u8();
        let group = u64::from(byte & 0x7F);
        if shift == 63 && group > 0x01 {
            // Nine continuation bytes already consumed 63 bits, so only
            // one value bit remains. Anything else in the tenth byte
            // would be silently shifted out — reject instead of
            // truncating the value.
            return Err(WireError::VarintOverflow);
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::VarintOverflow)
}

/// Encodes a message with an opaque byte payload.
#[must_use]
pub fn encode(message: &Message<Bytes>) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + message.timestamp().len() * 2);
    buf.put_u8(VERSION);
    put_uvar(&mut buf, message.sender().index() as u64);
    put_uvar(&mut buf, message.id().seq());
    let space = message.keys().space();
    put_uvar(&mut buf, space.r() as u64);
    put_uvar(&mut buf, space.k() as u64);
    buf.put_u128_le(message.keys().set_id());
    for &entry in message.timestamp().entries() {
        put_uvar(&mut buf, entry);
    }
    put_uvar(&mut buf, message.payload().len() as u64);
    buf.put_slice(message.payload());
    seal(buf)
}

/// Decodes a frame produced by [`encode`].
///
/// # Errors
///
/// Any [`WireError`] on malformed input; decoding never panics. The
/// version byte is checked first (so foreign formats report
/// [`WireError::BadVersion`]), then the trailing checksum, then the body.
pub fn decode(frame: Bytes) -> Result<Message<Bytes>, WireError> {
    if frame.is_empty() {
        return Err(WireError::Truncated);
    }
    if frame[0] != VERSION {
        return Err(WireError::BadVersion(frame[0]));
    }
    let mut frame = checksum_verified(&frame)?;
    frame.advance(1); // version, already checked
    let sender = get_uvar(&mut frame)? as usize;
    let seq = get_uvar(&mut frame)?;
    let r = get_uvar(&mut frame)? as usize;
    let k = get_uvar(&mut frame)? as usize;
    if frame.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    let set_id = frame.get_u128_le();
    let space = KeySpace::new(r, k).map_err(|e| WireError::BadKeys(e.to_string()))?;
    let keys = KeySet::from_set_id(space, set_id).map_err(|e| WireError::BadKeys(e.to_string()))?;
    let mut entries = Vec::with_capacity(r);
    for _ in 0..r {
        entries.push(get_uvar(&mut frame)?);
    }
    let payload_len = get_uvar(&mut frame)? as usize;
    if frame.remaining() < payload_len {
        return Err(WireError::Truncated);
    }
    let payload = frame.split_to(payload_len);
    Ok(Message::new(
        MessageId::new(ProcessId::new(sender), seq),
        Arc::new(keys),
        Timestamp::from_entries(entries),
        payload,
    ))
}

/// Encoded control-information size (everything except the payload) for a
/// message — the quantity Figures 3–6 are ultimately about.
#[must_use]
pub fn control_size(message: &Message<Bytes>) -> usize {
    encode(message).len() - message.payload().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::{AssignmentPolicy, KeyAssigner};

    fn sample(payload: &'static [u8]) -> Message<Bytes> {
        let space = KeySpace::new(100, 4).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 5);
        let keys = assigner.next_set().unwrap();
        let mut process = crate::PcbProcess::new(ProcessId::new(3), keys);
        for _ in 0..9 {
            let _ = process.broadcast(Bytes::new());
        }
        process.broadcast(Bytes::from_static(payload))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample(b"hello wire");
        let decoded = decode(encode(&original)).unwrap();
        assert_eq!(decoded.id(), original.id());
        assert_eq!(decoded.keys(), original.keys());
        assert_eq!(decoded.timestamp(), original.timestamp());
        assert_eq!(decoded.payload(), original.payload());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let original = sample(b"");
        let decoded = decode(encode(&original)).unwrap();
        assert_eq!(decoded.payload().len(), 0);
    }

    #[test]
    fn fresh_clock_stamp_is_one_byte_per_entry() {
        // Early in a run, every counter is < 128: the encoded stamp is
        // R bytes + small header, far below the fixed 8·R accounting.
        let m = sample(b"");
        let size = control_size(&m);
        assert!(size < 100 + 40, "control size {size} should be ≈ R + header for small counters");
        assert!(size > 100, "must still carry all R entries");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(Bytes::new()), Err(WireError::Truncated)));
        assert!(matches!(decode(Bytes::from_static(&[9, 0, 0])), Err(WireError::BadVersion(9))));
        // Truncated mid-set-id.
        let m = sample(b"x");
        let full = encode(&m);
        let cut = full.slice(0..8);
        assert!(matches!(decode(cut), Err(WireError::Truncated)));
    }

    #[test]
    fn decode_rejects_bad_keyspace() {
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0); // sender
        put_uvar(&mut buf, 1); // seq
        put_uvar(&mut buf, 4); // r
        put_uvar(&mut buf, 9); // k > r
        buf.put_u128_le(0);
        let err = decode(seal(buf)).unwrap_err();
        assert!(matches!(err, WireError::BadKeys(_)));
    }

    #[test]
    fn decode_rejects_out_of_range_set_id() {
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0);
        put_uvar(&mut buf, 1);
        put_uvar(&mut buf, 4); // r
        put_uvar(&mut buf, 2); // k -> C(4,2) = 6 sets
        buf.put_u128_le(6); // out of range
        for _ in 0..4 {
            put_uvar(&mut buf, 0);
        }
        put_uvar(&mut buf, 0);
        let err = decode(seal(buf)).unwrap_err();
        assert!(matches!(err, WireError::BadKeys(_)));
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_uvar(&mut buf, v);
            let mut frozen = buf.clone().freeze();
            assert_eq!(get_uvar(&mut frozen).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 10 continuation bytes push past 64 bits.
        let bad = Bytes::from_static(&[0xFF; 11]);
        let mut b = bad;
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn varint_rejects_truncated_continuation() {
        // Every byte promises another, then the frame ends.
        for len in 1..=9usize {
            let mut b = Bytes::from(vec![0x80u8; len]);
            assert_eq!(get_uvar(&mut b), Err(WireError::Truncated), "len {len}");
        }
    }

    #[test]
    fn varint_rejects_overlong_tenth_byte() {
        // Nine continuation bytes consume 63 bits; the tenth byte may
        // carry only the final bit. The old decoder silently dropped the
        // upper bits here, decoding [0x80×9, 0x02] as 0.
        let mut b = Bytes::from([&[0x80u8; 9][..], &[0x02]].concat());
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
        // 0x01 in the tenth byte is legal: it is u64's top bit.
        let mut b = Bytes::from([&[0xFFu8; 9][..], &[0x01]].concat());
        assert_eq!(get_uvar(&mut b), Ok(u64::MAX));
    }

    #[test]
    fn varint_rejects_high_bit_set_final_byte() {
        // Tenth byte keeps the continuation bit set: the value never
        // terminates inside 64 bits.
        let mut b = Bytes::from([&[0x80u8; 9][..], &[0x81]].concat());
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn decode_surfaces_varint_overflow_in_header() {
        // A frame whose seq field is an overlong varint must error, not
        // silently decode a truncated sequence number.
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0); // sender
        buf.put_slice(&[0xFF; 9]);
        buf.put_u8(0x7F); // seq: ten bytes, junk in the tenth
        let err = decode(seal(buf)).unwrap_err();
        assert_eq!(err, WireError::VarintOverflow);
    }

    #[test]
    fn any_single_byte_substitution_is_rejected() {
        // The FNV-1a step is a bijection per byte position, so every
        // substitution must surface as an error (checksum mismatch, or
        // bad-version for byte 0) — never decode as a different message.
        let frame = encode(&sample(b"chaos payload"));
        for i in 0..frame.len() {
            for delta in [0x01u8, 0x80, 0xFF] {
                let mut bytes = frame.to_vec();
                bytes[i] ^= delta;
                assert!(
                    decode(Bytes::from(bytes)).is_err(),
                    "substitution at byte {i} (xor {delta:#04x}) must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let frame = encode(&sample(b"abc"));
        for len in 0..frame.len() {
            assert!(decode(frame.slice(0..len)).is_err(), "prefix of {len} bytes must fail");
        }
        assert!(decode(frame).is_ok());
    }

    #[test]
    fn wire_size_beats_fixed_accounting_and_vector_clocks() {
        let m = sample(b"");
        let encoded = control_size(&m);
        // Fixed accounting: 8 bytes × 100 entries + ids.
        assert!(encoded < m.control_overhead());
        // A vector clock for N = 1000 would be ≥ 1000 bytes even varint-encoded.
        assert!(encoded < 1000);
    }

    #[test]
    fn decoded_message_flows_through_a_receiver() {
        // Wire-decoded messages are protocol-equivalent to in-memory ones.
        let space = KeySpace::new(8, 2).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 1);
        let mut tx = crate::PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
        let mut rx = crate::PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());
        let m = tx.broadcast(Bytes::from_static(b"payload"));
        let decoded = decode(encode(&m)).unwrap();
        let out = rx.on_receive(decoded, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].message.payload()[..], b"payload");
    }
}
