//! Compact wire format for broadcast messages.
//!
//! The paper's argument is about *control-information bytes on the wire*,
//! so the library ships a real codec rather than hand-waving sizes. The
//! baseline (version 2) format is deliberately simple and self-contained:
//!
//! ```text
//! u8   version (= 2)
//! uvar sender index
//! uvar sequence number
//! uvar R (vector length)        uvar K (entries per process)
//! u128 set_id (16 bytes, LE)    -- the key set, not its expansion
//! uvar × R timestamp entries    -- LEB128 varints; small counters stay small
//! uvar payload length, payload bytes
//! u64  FNV-1a checksum (LE)     -- over every preceding byte
//! ```
//!
//! With fresh clocks the stamp costs ~1 byte per entry, approaching the
//! paper's "few integer timestamps"; entries grow logarithmically with
//! traffic. Decoding recomputes the key set from `set_id` via Algorithm 3.
//!
//! **Version 3** adds a *delta* encoding. Algorithm 1 changes only the
//! sender's `K` entries between consecutive sends (plus whatever its
//! delivery rule incremented), so a frame rarely needs all `R` entries:
//!
//! ```text
//! full frame (kind = 0): standalone, self-describing
//!   u8 3 | u8 0 | uvar sender | uvar seq | uvar R | uvar K
//!   u128 set_id | uvar × R entries | uvar payload_len, payload | u64 fnv
//!
//! delta frame (kind = 1): relative to the sender's frame `base_seq`
//!   u8 3 | u8 1 | uvar sender | uvar seq | uvar base_seq | uvar count
//!   (uvar index_gap, uvar increase) × count      -- both deltas ≥ small
//!   uvar payload_len, payload | u64 fnv
//! ```
//!
//! A delta frame omits `R`, `K`, `set_id` and the unchanged entries: the
//! decoder reconstructs the stamp from its per-sender *reconstruction
//! stamp* — the `(seq, timestamp, keys)` of the sender's last decoded
//! frame. Because the stamp for a given `(sender, seq)` is unique, any
//! frame whose stored `seq` equals `base_seq` is a valid base, in or out
//! of order. A delta against an unknown base fails with
//! [`WireError::MissingDeltaBase`]; the caller re-fetches a standalone
//! full frame (anti-entropy serves those), which is also how late joiners
//! bootstrap. [`DeltaEncoder`] emits a full frame periodically and
//! whenever a delta would not be smaller or the stamp regressed (e.g.
//! after a crash-restore).
//!
//! Version 2 appends a 64-bit FNV-1a checksum so in-flight corruption is
//! *detected*, never delivered: each FNV step `x ↦ (x ⊕ b) · prime` is a
//! bijection of the state for fixed position, so any single-byte
//! substitution is guaranteed to change the digest. Version 3 keeps the
//! same trailer. Decoding is total — arbitrary bytes either yield a
//! well-formed message or a [`WireError`], never a panic.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pcb_clock::{KeySet, KeySpace, ProcessId, Timestamp};

use crate::message::{Message, MessageId};

const VERSION: u8 = 2;
const VERSION_DELTA: u8 = 3;
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
const CHECKSUM_LEN: usize = 8;

/// Errors decoding a wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame ended before the structure was complete.
    Truncated,
    /// Unknown format version byte.
    BadVersion(u8),
    /// The trailing FNV-1a digest does not match the frame body: the
    /// frame was corrupted in flight and must be discarded (anti-entropy
    /// re-fetches it).
    ChecksumMismatch,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// `(R, K)` or `set_id` failed validation.
    BadKeys(String),
    /// A delta frame referenced a base stamp this decoder does not hold
    /// (late joiner, evicted state, or frames lost in flight). Recover by
    /// re-fetching a standalone full frame via anti-entropy.
    MissingDeltaBase {
        /// Sender index whose reconstruction stamp is missing or stale.
        sender: usize,
        /// The sequence number the delta was encoded against.
        base_seq: u64,
    },
    /// A delta frame's entry indices or counts are inconsistent with the
    /// reconstruction stamp (e.g. an index past `R`).
    BadDelta(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            Self::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Self::BadKeys(msg) => write!(f, "invalid key material: {msg}"),
            Self::MissingDeltaBase { sender, base_seq } => {
                write!(f, "no reconstruction stamp for sender {sender} at seq {base_seq}")
            }
            Self::BadDelta(msg) => write!(f, "invalid delta frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Appends the FNV-1a digest of everything written so far.
pub(crate) fn seal(mut buf: BytesMut) -> Bytes {
    let digest = fnv1a64(&buf);
    buf.put_u64_le(digest);
    buf.freeze()
}

/// Strips and verifies the trailing digest, returning the frame body.
pub(crate) fn checksum_verified(frame: &Bytes) -> Result<Bytes, WireError> {
    if frame.len() < 1 + CHECKSUM_LEN {
        return Err(WireError::Truncated);
    }
    let split = frame.len() - CHECKSUM_LEN;
    let expected = u64::from_le_bytes(frame[split..].try_into().expect("checksum is 8 bytes"));
    if fnv1a64(&frame[..split]) != expected {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(frame.slice(0..split))
}

pub(crate) fn put_uvar(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_uvar(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let byte = buf.get_u8();
        let group = u64::from(byte & 0x7F);
        if shift == 63 && group > 0x01 {
            // Nine continuation bytes already consumed 63 bits, so only
            // one value bit remains. Anything else in the tenth byte
            // would be silently shifted out — reject instead of
            // truncating the value.
            return Err(WireError::VarintOverflow);
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::VarintOverflow)
}

fn put_full_body(buf: &mut BytesMut, message: &Message<Bytes>) {
    put_uvar(buf, message.sender().index() as u64);
    put_uvar(buf, message.id().seq());
    let space = message.keys().space();
    put_uvar(buf, space.r() as u64);
    put_uvar(buf, space.k() as u64);
    buf.put_u128_le(message.keys().set_id());
    for &entry in message.timestamp().entries() {
        put_uvar(buf, entry);
    }
    put_uvar(buf, message.payload().len() as u64);
    buf.put_slice(message.payload());
}

/// Encodes a message as a standalone v2 frame (all `R` entries).
#[must_use]
pub fn encode(message: &Message<Bytes>) -> Bytes {
    let mut buf = BytesMut::with_capacity(48 + message.timestamp().len() * 2);
    buf.put_u8(VERSION);
    put_full_body(&mut buf, message);
    seal(buf)
}

/// Encodes a message as a standalone v3 *full* frame. Like [`encode`] it
/// is self-describing — anti-entropy and late-joiner bootstrap serve
/// these — but it participates in v3 delta chains: a decoder records its
/// stamp as the sender's reconstruction base.
#[must_use]
pub fn encode_full(message: &Message<Bytes>) -> Bytes {
    let mut buf = BytesMut::with_capacity(48 + message.timestamp().len() * 2);
    buf.put_u8(VERSION_DELTA);
    buf.put_u8(KIND_FULL);
    put_full_body(&mut buf, message);
    seal(buf)
}

/// What a frame claims to be, before the checksum is verified.
enum Preflight {
    V2,
    V3Full,
    V3Delta,
}

fn preflight(frame: &Bytes) -> Result<Preflight, WireError> {
    if frame.is_empty() {
        return Err(WireError::Truncated);
    }
    match frame[0] {
        VERSION => Ok(Preflight::V2),
        VERSION_DELTA => {
            if frame.len() < 2 {
                return Err(WireError::Truncated);
            }
            match frame[1] {
                KIND_FULL => Ok(Preflight::V3Full),
                KIND_DELTA => Ok(Preflight::V3Delta),
                kind => Err(WireError::BadDelta(format!("unknown frame kind {kind}"))),
            }
        }
        version => Err(WireError::BadVersion(version)),
    }
}

/// Decodes the shared full-frame body; `skip` is the header length (1 for
/// v2's version byte, 2 for v3's version + kind).
fn decode_full_body(mut frame: Bytes, skip: usize) -> Result<Message<Bytes>, WireError> {
    frame.advance(skip);
    let sender = get_uvar(&mut frame)? as usize;
    let seq = get_uvar(&mut frame)?;
    let r = get_uvar(&mut frame)? as usize;
    let k = get_uvar(&mut frame)? as usize;
    if frame.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    let set_id = frame.get_u128_le();
    let space = KeySpace::new(r, k).map_err(|e| WireError::BadKeys(e.to_string()))?;
    let keys = KeySet::from_set_id(space, set_id).map_err(|e| WireError::BadKeys(e.to_string()))?;
    let mut entries = Vec::with_capacity(r);
    for _ in 0..r {
        entries.push(get_uvar(&mut frame)?);
    }
    let payload_len = get_uvar(&mut frame)? as usize;
    if frame.remaining() < payload_len {
        return Err(WireError::Truncated);
    }
    let payload = frame.split_to(payload_len);
    Ok(Message::new(
        MessageId::new(ProcessId::new(sender), seq),
        Arc::new(keys),
        Timestamp::from_entries(entries),
        payload,
    ))
}

/// Decodes a standalone frame (v2, or a v3 full frame).
///
/// # Errors
///
/// Any [`WireError`] on malformed input; decoding never panics. The
/// version byte is checked first (so foreign formats report
/// [`WireError::BadVersion`]), then the trailing checksum, then the body.
/// A v3 *delta* frame is not standalone: it reports
/// [`WireError::MissingDeltaBase`] here — use [`DeltaDecoder`] (which
/// keeps per-sender reconstruction stamps) to decode delta streams.
pub fn decode(frame: Bytes) -> Result<Message<Bytes>, WireError> {
    let kind = preflight(&frame)?;
    let body = checksum_verified(&frame)?;
    match kind {
        Preflight::V2 => decode_full_body(body, 1),
        Preflight::V3Full => decode_full_body(body, 2),
        Preflight::V3Delta => {
            let (sender, _, base_seq) = delta_header(body)?.0;
            Err(WireError::MissingDeltaBase { sender, base_seq })
        }
    }
}

/// Reads `(sender, seq, base_seq)` from a checksum-verified delta body,
/// returning the remaining bytes positioned at the change list.
fn delta_header(mut body: Bytes) -> Result<((usize, u64, u64), Bytes), WireError> {
    body.advance(2); // version + kind, already checked
    let sender = get_uvar(&mut body)? as usize;
    let seq = get_uvar(&mut body)?;
    let base_seq = get_uvar(&mut body)?;
    Ok(((sender, seq, base_seq), body))
}

/// Per-sender stateful encoder producing v3 delta chains.
///
/// One encoder per sending process. Each call diffs the outgoing stamp
/// against the previous frame's stamp and ships only the changed entries
/// — amortized `K` varints instead of `R`. A standalone full frame is
/// emitted for the first message, every `full_every`-th frame thereafter
/// (so late joiners and lossy links resynchronize within a bounded
/// window), after [`DeltaEncoder::force_full`], and whenever a delta
/// would not pay for itself (more than half the entries changed) or the
/// stamp regressed (a crash-restore replay).
#[derive(Debug, Clone)]
pub struct DeltaEncoder {
    full_every: u64,
    since_full: u64,
    last: Option<(u64, Timestamp)>,
    fulls: u64,
    deltas: u64,
}

impl DeltaEncoder {
    /// Default full-frame cadence: one standalone frame per 32 sends.
    pub const DEFAULT_FULL_EVERY: u64 = 32;

    /// An encoder emitting a full frame every `full_every` frames
    /// (clamped to ≥ 1; `1` degenerates to always-full).
    #[must_use]
    pub fn new(full_every: u64) -> Self {
        Self { full_every: full_every.max(1), since_full: 0, last: None, fulls: 0, deltas: 0 }
    }

    /// Forces the next frame to be a standalone full frame. Call after
    /// restoring from a snapshot (the replayed stamp may regress) or when
    /// a receiver reports [`WireError::MissingDeltaBase`].
    pub fn force_full(&mut self) {
        self.last = None;
    }

    /// Encodes the sender's next message, choosing delta or full.
    #[must_use]
    pub fn encode(&mut self, message: &Message<Bytes>) -> Bytes {
        let ts = message.timestamp();
        if self.since_full + 1 < self.full_every {
            if let Some((base_seq, base)) = &self.last {
                if let Some(frame) = encode_delta(message, *base_seq, base) {
                    self.since_full += 1;
                    self.deltas += 1;
                    self.last = Some((message.id().seq(), ts.clone()));
                    return frame;
                }
            }
        }
        self.since_full = 0;
        self.fulls += 1;
        self.last = Some((message.id().seq(), ts.clone()));
        encode_full(message)
    }

    /// Standalone full frames emitted so far.
    #[must_use]
    pub fn fulls_emitted(&self) -> u64 {
        self.fulls
    }

    /// Delta frames emitted so far.
    #[must_use]
    pub fn deltas_emitted(&self) -> u64 {
        self.deltas
    }
}

impl Default for DeltaEncoder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_FULL_EVERY)
    }
}

/// Encodes `message` as a delta against `(base_seq, base)`, or `None` if
/// a delta is impossible (length mismatch, regressed entries) or not
/// worth it (more than half the entries changed).
fn encode_delta(message: &Message<Bytes>, base_seq: u64, base: &Timestamp) -> Option<Bytes> {
    let ts = message.timestamp();
    if ts.len() != base.len() {
        return None;
    }
    let mut changed: Vec<(usize, u64)> = Vec::new();
    for (i, (&new, &old)) in ts.entries().iter().zip(base.entries()).enumerate() {
        if new < old {
            return None; // stamp regressed; only a full frame is sound
        }
        if new > old {
            changed.push((i, new - old));
        }
    }
    if changed.len() * 2 > ts.len() {
        return None;
    }
    let mut buf = BytesMut::with_capacity(32 + changed.len() * 4 + message.payload().len());
    buf.put_u8(VERSION_DELTA);
    buf.put_u8(KIND_DELTA);
    put_uvar(&mut buf, message.sender().index() as u64);
    put_uvar(&mut buf, message.id().seq());
    put_uvar(&mut buf, base_seq);
    put_uvar(&mut buf, changed.len() as u64);
    let mut prev: Option<usize> = None;
    for &(index, increase) in &changed {
        let gap = match prev {
            None => index,
            Some(p) => index - p - 1,
        };
        put_uvar(&mut buf, gap as u64);
        put_uvar(&mut buf, increase);
        prev = Some(index);
    }
    put_uvar(&mut buf, message.payload().len() as u64);
    buf.put_slice(message.payload());
    Some(seal(buf))
}

/// Per-sender reconstruction stamp: the last decoded frame's identity,
/// timestamp, and key set for one sender.
#[derive(Debug, Clone)]
struct Reconstruction {
    seq: u64,
    stamp: Timestamp,
    keys: Arc<KeySet>,
}

/// Stateful decoder for v3 delta chains (also accepts v2 and v3 full
/// frames, which refresh its per-sender reconstruction stamps).
///
/// Correctness does not depend on arrival order: the stamp attached to a
/// given `(sender, seq)` is unique, so any stored stamp whose `seq`
/// matches a delta's `base_seq` reconstructs the exact original vector.
/// A delta whose base is unknown fails with
/// [`WireError::MissingDeltaBase`] and leaves the decoder state
/// untouched; the caller re-fetches a full frame.
#[derive(Debug, Clone, Default)]
pub struct DeltaDecoder {
    stamps: HashMap<usize, Reconstruction>,
}

impl DeltaDecoder {
    /// A decoder with no reconstruction state (a late joiner).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of senders with a live reconstruction stamp.
    #[must_use]
    pub fn tracked_senders(&self) -> usize {
        self.stamps.len()
    }

    /// Decodes any frame (v2, v3 full, v3 delta), updating the sender's
    /// reconstruction stamp on success.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; notably [`WireError::MissingDeltaBase`] for a
    /// delta whose base stamp this decoder has never seen.
    pub fn decode(&mut self, frame: Bytes) -> Result<Message<Bytes>, WireError> {
        let kind = preflight(&frame)?;
        let body = checksum_verified(&frame)?;
        let message = match kind {
            Preflight::V2 => decode_full_body(body, 1)?,
            Preflight::V3Full => decode_full_body(body, 2)?,
            Preflight::V3Delta => {
                let ((sender, seq, base_seq), mut body) = delta_header(body)?;
                let base = self
                    .stamps
                    .get(&sender)
                    .filter(|s| s.seq == base_seq)
                    .ok_or(WireError::MissingDeltaBase { sender, base_seq })?;
                let r = base.stamp.len();
                let count = get_uvar(&mut body)? as usize;
                if count > r {
                    return Err(WireError::BadDelta(format!("{count} changes for R = {r}")));
                }
                let mut entries: Vec<u64> = base.stamp.entries().to_vec();
                let mut prev: Option<usize> = None;
                for _ in 0..count {
                    let gap = get_uvar(&mut body)? as usize;
                    let increase = get_uvar(&mut body)?;
                    let index = match prev {
                        None => gap,
                        Some(p) => p
                            .checked_add(1 + gap)
                            .ok_or_else(|| WireError::BadDelta("entry index overflow".into()))?,
                    };
                    if index >= r {
                        return Err(WireError::BadDelta(format!("entry {index} past R = {r}")));
                    }
                    entries[index] = entries[index]
                        .checked_add(increase)
                        .ok_or_else(|| WireError::BadDelta("entry counter overflow".into()))?;
                    prev = Some(index);
                }
                let payload_len = get_uvar(&mut body)? as usize;
                if body.remaining() < payload_len {
                    return Err(WireError::Truncated);
                }
                let payload = body.split_to(payload_len);
                Message::new(
                    MessageId::new(ProcessId::new(sender), seq),
                    Arc::clone(&base.keys),
                    Timestamp::from_entries(entries),
                    payload,
                )
            }
        };
        self.stamps.insert(
            message.sender().index(),
            Reconstruction {
                seq: message.id().seq(),
                stamp: message.timestamp().clone(),
                keys: message.keys_arc(),
            },
        );
        Ok(message)
    }

    /// Drops every reconstruction stamp, returning the decoder to the
    /// late-joiner state: the next delta from any sender fails with
    /// [`WireError::MissingDeltaBase`] until a full frame re-primes it.
    /// Called across a crash-restore — pre-crash bases must never
    /// reconstruct post-restore deltas.
    pub fn clear(&mut self) {
        self.stamps.clear();
    }

    /// Splits the decoder into `shards` independent decoders, moving each
    /// sender's reconstruction stamp to shard `sender % shards`.
    ///
    /// Delta chains are strictly per-sender — a frame from sender `s`
    /// reads and writes only `s`'s stamp — so the shard decoders can run
    /// on different threads over a sender-partitioned batch and produce
    /// byte-identical results to one sequential decoder, provided each
    /// shard sees its senders' frames in the original order. Re-join with
    /// [`DeltaDecoder::absorb`]. `self` is left empty.
    #[must_use]
    pub fn partition(&mut self, shards: usize) -> Vec<DeltaDecoder> {
        let shards = shards.max(1);
        let mut parts: Vec<DeltaDecoder> = (0..shards).map(|_| DeltaDecoder::new()).collect();
        for (sender, stamp) in self.stamps.drain() {
            parts[sender % shards].stamps.insert(sender, stamp);
        }
        parts
    }

    /// Merges shard decoders split off by [`DeltaDecoder::partition`]
    /// back into `self`, adopting their (disjoint) reconstruction stamps.
    pub fn absorb(&mut self, parts: Vec<DeltaDecoder>) {
        for part in parts {
            for (sender, stamp) in part.stamps {
                self.stamps.insert(sender, stamp);
            }
        }
    }
}

/// Reads the sender index from a frame header without verifying the
/// checksum — just enough to route the frame to its sender shard for
/// parallel decode. Routing is a pure function of the leading bytes, so
/// it is deterministic even for frames that later fail full decoding
/// (they surface the same [`WireError`] from whichever shard got them).
///
/// # Errors
///
/// [`WireError`] if the frame is too short to carry a header.
pub fn peek_sender(frame: &Bytes) -> Result<usize, WireError> {
    let kind = preflight(frame)?;
    let mut body = frame.clone();
    body.advance(match kind {
        Preflight::V2 => 1,
        Preflight::V3Full | Preflight::V3Delta => 2,
    });
    Ok(get_uvar(&mut body)? as usize)
}

/// Encoded control-information size (everything except the payload) for a
/// message — the quantity Figures 3–6 are ultimately about.
#[must_use]
pub fn control_size(message: &Message<Bytes>) -> usize {
    encode(message).len() - message.payload().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::{AssignmentPolicy, KeyAssigner};

    fn sample(payload: &'static [u8]) -> Message<Bytes> {
        let space = KeySpace::new(100, 4).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 5);
        let keys = assigner.next_set().unwrap();
        let mut process = crate::PcbProcess::new(ProcessId::new(3), keys);
        for _ in 0..9 {
            let _ = process.broadcast(Bytes::new());
        }
        process.broadcast(Bytes::from_static(payload))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample(b"hello wire");
        let decoded = decode(encode(&original)).unwrap();
        assert_eq!(decoded.id(), original.id());
        assert_eq!(decoded.keys(), original.keys());
        assert_eq!(decoded.timestamp(), original.timestamp());
        assert_eq!(decoded.payload(), original.payload());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let original = sample(b"");
        let decoded = decode(encode(&original)).unwrap();
        assert_eq!(decoded.payload().len(), 0);
    }

    #[test]
    fn fresh_clock_stamp_is_one_byte_per_entry() {
        // Early in a run, every counter is < 128: the encoded stamp is
        // R bytes + small header, far below the fixed 8·R accounting.
        let m = sample(b"");
        let size = control_size(&m);
        assert!(size < 100 + 40, "control size {size} should be ≈ R + header for small counters");
        assert!(size > 100, "must still carry all R entries");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(Bytes::new()), Err(WireError::Truncated)));
        assert!(matches!(decode(Bytes::from_static(&[9, 0, 0])), Err(WireError::BadVersion(9))));
        // Truncated mid-set-id.
        let m = sample(b"x");
        let full = encode(&m);
        let cut = full.slice(0..8);
        assert!(matches!(decode(cut), Err(WireError::Truncated)));
    }

    #[test]
    fn decode_rejects_bad_keyspace() {
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0); // sender
        put_uvar(&mut buf, 1); // seq
        put_uvar(&mut buf, 4); // r
        put_uvar(&mut buf, 9); // k > r
        buf.put_u128_le(0);
        let err = decode(seal(buf)).unwrap_err();
        assert!(matches!(err, WireError::BadKeys(_)));
    }

    #[test]
    fn decode_rejects_out_of_range_set_id() {
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0);
        put_uvar(&mut buf, 1);
        put_uvar(&mut buf, 4); // r
        put_uvar(&mut buf, 2); // k -> C(4,2) = 6 sets
        buf.put_u128_le(6); // out of range
        for _ in 0..4 {
            put_uvar(&mut buf, 0);
        }
        put_uvar(&mut buf, 0);
        let err = decode(seal(buf)).unwrap_err();
        assert!(matches!(err, WireError::BadKeys(_)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvar(&mut buf, v);
            let mut frozen = buf.freeze();
            assert_eq!(get_uvar(&mut frozen).unwrap(), v);
        }
    }

    #[test]
    fn frame_freeze_is_zero_copy() {
        // Sealing a frame must adopt the build buffer's allocation, and
        // fanning the frame out (clone per receiver) must share it: the
        // visible bytes keep one address through the whole chain.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"frame body bytes");
        let built_at = buf.as_ptr();
        let sealed = seal(buf);
        assert_eq!(sealed.as_ptr(), built_at, "freeze must not copy the frame");
        let fanned_out = sealed.clone();
        assert_eq!(fanned_out.as_ptr(), sealed.as_ptr(), "clones must share storage");
        assert_eq!(fanned_out.len(), sealed.len());
    }

    #[test]
    fn varint_overflow_detected() {
        // 10 continuation bytes push past 64 bits.
        let bad = Bytes::from_static(&[0xFF; 11]);
        let mut b = bad;
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn varint_rejects_truncated_continuation() {
        // Every byte promises another, then the frame ends.
        for len in 1..=9usize {
            let mut b = Bytes::from(vec![0x80u8; len]);
            assert_eq!(get_uvar(&mut b), Err(WireError::Truncated), "len {len}");
        }
    }

    #[test]
    fn varint_rejects_overlong_tenth_byte() {
        // Nine continuation bytes consume 63 bits; the tenth byte may
        // carry only the final bit. The old decoder silently dropped the
        // upper bits here, decoding [0x80×9, 0x02] as 0.
        let mut b = Bytes::from([&[0x80u8; 9][..], &[0x02]].concat());
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
        // 0x01 in the tenth byte is legal: it is u64's top bit.
        let mut b = Bytes::from([&[0xFFu8; 9][..], &[0x01]].concat());
        assert_eq!(get_uvar(&mut b), Ok(u64::MAX));
    }

    #[test]
    fn varint_rejects_high_bit_set_final_byte() {
        // Tenth byte keeps the continuation bit set: the value never
        // terminates inside 64 bits.
        let mut b = Bytes::from([&[0x80u8; 9][..], &[0x81]].concat());
        assert_eq!(get_uvar(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn decode_surfaces_varint_overflow_in_header() {
        // A frame whose seq field is an overlong varint must error, not
        // silently decode a truncated sequence number.
        let mut buf = BytesMut::new();
        buf.put_u8(VERSION);
        put_uvar(&mut buf, 0); // sender
        buf.put_slice(&[0xFF; 9]);
        buf.put_u8(0x7F); // seq: ten bytes, junk in the tenth
        let err = decode(seal(buf)).unwrap_err();
        assert_eq!(err, WireError::VarintOverflow);
    }

    #[test]
    fn any_single_byte_substitution_is_rejected() {
        // The FNV-1a step is a bijection per byte position, so every
        // substitution must surface as an error (checksum mismatch, or
        // bad-version for byte 0) — never decode as a different message.
        let frame = encode(&sample(b"chaos payload"));
        for i in 0..frame.len() {
            for delta in [0x01u8, 0x80, 0xFF] {
                let mut bytes = frame.to_vec();
                bytes[i] ^= delta;
                assert!(
                    decode(Bytes::from(bytes)).is_err(),
                    "substitution at byte {i} (xor {delta:#04x}) must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let frame = encode(&sample(b"abc"));
        for len in 0..frame.len() {
            assert!(decode(frame.slice(0..len)).is_err(), "prefix of {len} bytes must fail");
        }
        assert!(decode(frame).is_ok());
    }

    #[test]
    fn wire_size_beats_fixed_accounting_and_vector_clocks() {
        let m = sample(b"");
        let encoded = control_size(&m);
        // Fixed accounting: 8 bytes × 100 entries + ids.
        assert!(encoded < m.control_overhead());
        // A vector clock for N = 1000 would be ≥ 1000 bytes even varint-encoded.
        assert!(encoded < 1000);
    }

    /// A stream of `n` messages from one sender whose clock also absorbs
    /// deliveries (so deltas touch more than the sender's own keys).
    fn stream(n: usize) -> Vec<Message<Bytes>> {
        let space = KeySpace::new(100, 4).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 7);
        let keys_a = assigner.next_set().unwrap();
        let keys_b = assigner.next_set().unwrap();
        let mut a = crate::PcbProcess::new(ProcessId::new(0), keys_a);
        let mut b = crate::PcbProcess::new(ProcessId::new(1), keys_b);
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    // Interleave a delivery so a's next stamp moves
                    // entries outside its own key set too.
                    let m = b.broadcast(Bytes::new());
                    let _ = a.on_receive(m, i as u64);
                }
                a.broadcast(Bytes::from(vec![i as u8; i % 5]))
            })
            .collect()
    }

    fn assert_same(decoded: &Message<Bytes>, original: &Message<Bytes>) {
        assert_eq!(decoded.id(), original.id());
        assert_eq!(decoded.keys(), original.keys());
        assert_eq!(decoded.timestamp(), original.timestamp());
        assert_eq!(decoded.payload(), original.payload());
    }

    #[test]
    fn v3_full_frame_is_standalone() {
        let original = sample(b"standalone");
        let decoded = decode(encode_full(&original)).unwrap();
        assert_same(&decoded, &original);
        let mut fresh = DeltaDecoder::new();
        assert_same(&fresh.decode(encode_full(&original)).unwrap(), &original);
    }

    #[test]
    fn delta_chain_roundtrips_and_shrinks() {
        let originals = stream(60);
        let mut enc = DeltaEncoder::new(16);
        let mut dec = DeltaDecoder::new();
        let full_len = encode_full(&originals[5]).len();
        for original in &originals {
            let frame = enc.encode(original);
            if frame[1] == KIND_DELTA {
                assert!(
                    frame.len() < full_len / 2,
                    "delta frame ({} B) should be far below full ({full_len} B)",
                    frame.len()
                );
            }
            assert_same(&dec.decode(frame).unwrap(), original);
        }
        assert_eq!(enc.fulls_emitted(), 4, "60 frames at cadence 16");
        assert_eq!(enc.deltas_emitted(), 56);
        assert_eq!(dec.tracked_senders(), 1);
    }

    /// Two independent sender streams (each with its own encoder),
    /// interleaved round-robin: the shape the batched endpoint decodes.
    fn two_sender_frames(n: usize) -> Vec<Bytes> {
        let space = KeySpace::new(100, 4).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 11);
        let mut frames = Vec::new();
        let mut procs: Vec<_> = (0..2)
            .map(|i| {
                let keys = assigner.next_set().unwrap();
                (crate::PcbProcess::new(ProcessId::new(i), keys), DeltaEncoder::new(8))
            })
            .collect();
        for _ in 0..n {
            for (process, encoder) in &mut procs {
                frames.push(encoder.encode(&process.broadcast(Bytes::from_static(b"m"))));
            }
        }
        frames
    }

    #[test]
    fn peek_sender_reads_the_routing_key() {
        for frame in two_sender_frames(6) {
            let full = decode(frame.clone());
            let peeked = peek_sender(&frame).unwrap();
            match full {
                Ok(m) => assert_eq!(peeked, m.sender().index()),
                // Delta frames still route by their header's sender.
                Err(WireError::MissingDeltaBase { sender, .. }) => assert_eq!(peeked, sender),
                Err(e) => panic!("unexpected decode error: {e}"),
            }
        }
        assert!(peek_sender(&Bytes::new()).is_err());
    }

    #[test]
    fn partitioned_decode_matches_sequential() {
        let frames = two_sender_frames(20);

        let mut sequential = DeltaDecoder::new();
        let seq_out: Vec<_> =
            frames.iter().map(|f| sequential.decode(f.clone()).unwrap()).collect();

        let mut decoder = DeltaDecoder::new();
        let shards = 2;
        let mut parts = decoder.partition(shards);
        // Route every frame to its sender shard, preserving order.
        let mut routed: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); shards];
        for (i, frame) in frames.iter().enumerate() {
            routed[peek_sender(frame).unwrap() % shards].push((i, frame.clone()));
        }
        let mut merged: Vec<(usize, Message<Bytes>)> = Vec::new();
        for (part, shard_frames) in parts.iter_mut().zip(routed) {
            for (i, frame) in shard_frames {
                merged.push((i, part.decode(frame).unwrap()));
            }
        }
        merged.sort_by_key(|(i, _)| *i);
        decoder.absorb(parts);

        assert_eq!(merged.len(), seq_out.len());
        for ((_, sharded), sequential) in merged.iter().zip(&seq_out) {
            assert_same(sharded, sequential);
        }
        // The re-absorbed decoder continues exactly where the sequential
        // one would: both track the same senders.
        assert_eq!(decoder.tracked_senders(), sequential.tracked_senders());
    }

    #[test]
    fn clear_forces_missing_delta_base() {
        let originals = stream(6);
        let mut enc = DeltaEncoder::new(64);
        let mut dec = DeltaDecoder::new();
        for original in &originals[..4] {
            assert_same(&dec.decode(enc.encode(original)).unwrap(), original);
        }
        dec.clear();
        assert_eq!(dec.tracked_senders(), 0);
        // The next delta must refuse — its base died with the clear.
        let delta = enc.encode(&originals[4]);
        assert_eq!(delta[1], KIND_DELTA, "cadence 64 keeps emitting deltas");
        assert!(matches!(dec.decode(delta), Err(WireError::MissingDeltaBase { .. })));
        // A full frame re-primes the chain.
        assert_same(&dec.decode(encode_full(&originals[5])).unwrap(), &originals[5]);
    }

    #[test]
    fn late_joiner_recovers_via_full_frame() {
        let originals = stream(10);
        let mut enc = DeltaEncoder::new(64);
        let frames: Vec<Bytes> = originals.iter().map(|m| enc.encode(m)).collect();
        // A late joiner misses the first full frame and sees only deltas.
        let mut dec = DeltaDecoder::new();
        let err = dec.decode(frames[4].clone()).unwrap_err();
        assert!(
            matches!(err, WireError::MissingDeltaBase { sender: 0, base_seq } if base_seq == 4),
            "got {err:?}"
        );
        assert_eq!(dec.tracked_senders(), 0, "a failed delta must not corrupt state");
        // Anti-entropy re-serves the message as a standalone full frame …
        assert_same(&dec.decode(encode_full(&originals[4]).clone()).unwrap(), &originals[4]);
        // … and the live delta stream resumes from there.
        for (original, frame) in originals.iter().zip(&frames).skip(5) {
            assert_same(&dec.decode(frame.clone()).unwrap(), original);
        }
    }

    #[test]
    fn v2_frame_seeds_a_delta_base() {
        // Cross-version: state learned from a v2 frame reconstructs a v3
        // delta encoded against the same (sender, seq) stamp.
        let originals = stream(3);
        let mut dec = DeltaDecoder::new();
        assert_same(&dec.decode(encode(&originals[0])).unwrap(), &originals[0]);
        let base_seq = originals[0].id().seq();
        let delta = encode_delta(&originals[1], base_seq, originals[0].timestamp()).unwrap();
        assert_same(&dec.decode(delta).unwrap(), &originals[1]);
    }

    #[test]
    fn force_full_restarts_the_chain() {
        let originals = stream(6);
        let mut enc = DeltaEncoder::new(1000);
        let _ = enc.encode(&originals[0]);
        let _ = enc.encode(&originals[1]);
        enc.force_full();
        let frame = enc.encode(&originals[2]);
        assert_eq!(frame[1], KIND_FULL, "force_full must emit a standalone frame");
        assert_eq!(enc.fulls_emitted(), 2);
    }

    #[test]
    fn regressed_stamp_falls_back_to_full() {
        // A crash-restore can replay an older stamp; a delta would need a
        // negative increase, so the encoder must emit a full frame.
        let originals = stream(6);
        let mut enc = DeltaEncoder::new(1000);
        let _ = enc.encode(&originals[5]);
        let frame = enc.encode(&originals[0]);
        assert_eq!(frame[1], KIND_FULL);
        assert_same(&decode(frame).unwrap(), &originals[0]);
    }

    #[test]
    fn delta_frame_substitutions_are_rejected() {
        let originals = stream(4);
        let mut enc = DeltaEncoder::new(64);
        let mut frames: Vec<Bytes> = originals.iter().map(|m| enc.encode(m)).collect();
        let delta = frames.pop().unwrap();
        assert_eq!(delta[1], KIND_DELTA);
        for i in 0..delta.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut primed = DeltaDecoder::new();
                for f in &frames {
                    let _ = primed.decode(f.clone()).unwrap();
                }
                let mut bytes = delta.to_vec();
                bytes[i] ^= flip;
                assert!(
                    primed.decode(Bytes::from(bytes)).is_err(),
                    "substitution at byte {i} (xor {flip:#04x}) must be rejected"
                );
            }
        }
    }

    #[test]
    fn delta_truncation_at_every_length_is_rejected() {
        let originals = stream(3);
        let mut enc = DeltaEncoder::new(64);
        let frames: Vec<Bytes> = originals.iter().map(|m| enc.encode(m)).collect();
        let delta = frames.last().unwrap();
        assert_eq!(delta[1], KIND_DELTA);
        for len in 0..delta.len() {
            let mut primed = DeltaDecoder::new();
            for f in &frames[..frames.len() - 1] {
                let _ = primed.decode(f.clone()).unwrap();
            }
            assert!(primed.decode(delta.slice(0..len)).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn steady_state_delta_meets_the_size_budget() {
        // Acceptance bar: amortized wire size at (R=100, K=4) steady
        // state ≤ 0.35× the v2 full-vector frame.
        let originals = stream(256);
        let mut enc = DeltaEncoder::default();
        let steady = &originals[64..];
        let v3: usize = steady.iter().map(|m| enc.encode(m).len()).sum();
        let v2: usize = steady.iter().map(|m| encode(m).len()).sum();
        let ratio = v3 as f64 / v2 as f64;
        assert!(ratio <= 0.35, "amortized delta ratio {ratio:.3} must be ≤ 0.35");
    }

    #[test]
    fn decoded_message_flows_through_a_receiver() {
        // Wire-decoded messages are protocol-equivalent to in-memory ones.
        let space = KeySpace::new(8, 2).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::DistinctRandom, 1);
        let mut tx = crate::PcbProcess::new(ProcessId::new(0), assigner.next_set().unwrap());
        let mut rx = crate::PcbProcess::new(ProcessId::new(1), assigner.next_set().unwrap());
        let m = tx.broadcast(Bytes::from_static(b"payload"));
        let decoded = decode(encode(&m)).unwrap();
        let out = rx.on_receive(decoded, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].message.payload()[..], b"payload");
    }
}
