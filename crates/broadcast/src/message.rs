//! Broadcast messages and their control information.

use std::fmt;
use std::sync::Arc;

use pcb_clock::{KeySet, ProcessId, Timestamp};
use serde::{Deserialize, Serialize};

/// Unique identity of a broadcast message: sender plus per-sender sequence
/// number (1-based; assigned by the sender in send order).
///
/// ```
/// use pcb_broadcast::MessageId;
/// use pcb_clock::ProcessId;
/// let id = MessageId::new(ProcessId::new(2), 5);
/// assert_eq!(id.to_string(), "p2#5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    sender: ProcessId,
    seq: u64,
}

impl MessageId {
    /// Builds an id from sender and 1-based sequence number.
    #[must_use]
    pub const fn new(sender: ProcessId, seq: u64) -> Self {
        Self { sender, seq }
    }

    /// The originating process.
    #[must_use]
    pub const fn sender(self) -> ProcessId {
        self.sender
    }

    /// The sender-local sequence number (1-based).
    #[must_use]
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sender, self.seq)
    }
}

/// A broadcast message as it travels on the wire.
///
/// Control information is the probabilistic timestamp (`R` integers) plus
/// the sender's key set (recoverable from a 16-byte `set_id`); payloads are
/// generic. The key set is shared behind an [`Arc`] because in a broadcast
/// every receiver sees the same copy.
#[derive(Debug, Clone)]
pub struct Message<P> {
    id: MessageId,
    keys: Arc<KeySet>,
    timestamp: Timestamp,
    payload: P,
}

impl<P> Message<P> {
    /// Assembles a message (normally done by `PcbProcess::broadcast`).
    #[must_use]
    pub fn new(id: MessageId, keys: Arc<KeySet>, timestamp: Timestamp, payload: P) -> Self {
        Self { id, keys, timestamp, payload }
    }

    /// Message identity.
    #[must_use]
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The sender's process id.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        self.id.sender
    }

    /// The sender's key set `f(p_j)`.
    #[must_use]
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// Shared handle to the sender's key set.
    #[must_use]
    pub fn keys_arc(&self) -> Arc<KeySet> {
        Arc::clone(&self.keys)
    }

    /// The probabilistic timestamp `m.V`.
    #[must_use]
    pub fn timestamp(&self) -> &Timestamp {
        &self.timestamp
    }

    /// Borrow of the payload.
    #[must_use]
    pub fn payload(&self) -> &P {
        &self.payload
    }

    /// Consumes the message, yielding the payload.
    #[must_use]
    pub fn into_payload(self) -> P {
        self.payload
    }

    /// Control-information size on the wire: the `R`-entry timestamp plus a
    /// 16-byte `set_id` (the key set is *not* shipped expanded) plus the
    /// 12-byte message id. This is the quantity the paper's mechanism
    /// shrinks from `O(N)` to `O(R)`.
    #[must_use]
    pub fn control_overhead(&self) -> usize {
        self.timestamp.wire_size() + 16 + 12
    }

    /// Maps the payload, keeping all control information.
    #[must_use]
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Message<Q> {
        Message {
            id: self.id,
            keys: self.keys,
            timestamp: self.timestamp,
            payload: f(self.payload),
        }
    }
}

impl<P> fmt::Display for Message<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn sample() -> Message<&'static str> {
        let space = KeySpace::new(4, 2).unwrap();
        let keys = Arc::new(KeySet::from_entries(space, &[0, 1]).unwrap());
        Message::new(
            MessageId::new(ProcessId::new(1), 3),
            keys,
            Timestamp::from_entries(vec![1, 1, 0, 0]),
            "hello",
        )
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.id(), MessageId::new(ProcessId::new(1), 3));
        assert_eq!(m.sender(), ProcessId::new(1));
        assert_eq!(m.id().seq(), 3);
        assert_eq!(*m.payload(), "hello");
        assert_eq!(m.keys().entries(), &[0, 1]);
        assert_eq!(m.timestamp().entries(), &[1, 1, 0, 0]);
    }

    #[test]
    fn id_ordering_is_sender_then_seq() {
        let a = MessageId::new(ProcessId::new(0), 9);
        let b = MessageId::new(ProcessId::new(1), 1);
        let c = MessageId::new(ProcessId::new(1), 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn overhead_counts_r_not_n() {
        let m = sample();
        // R = 4 entries * 8 bytes + 16 (set id) + 12 (message id).
        assert_eq!(m.control_overhead(), 32 + 28);
    }

    #[test]
    fn map_preserves_control_information() {
        let m = sample().map(str::len);
        assert_eq!(*m.payload(), 5);
        assert_eq!(m.sender(), ProcessId::new(1));
        assert_eq!(m.to_string(), "p1#3@[1,1,0,0]");
    }

    #[test]
    fn into_payload_extracts() {
        assert_eq!(sample().into_payload(), "hello");
    }
}
