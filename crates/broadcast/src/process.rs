//! The probabilistic causal broadcast endpoint (paper §4.1).
//!
//! A [`PcbProcess`] owns one process's protocol state: its key set
//! `f(p_i)`, the `R`-entry clock, an entry-indexed pending set of
//! received-but-not-yet-deliverable messages ([`crate::pending`]),
//! bounded duplicate suppression ([`crate::dedup`]), and the two
//! delivery-error detectors. Transports (the simulator, the threaded
//! runtime, or a real network) move [`Message`]s between endpoints.

use std::sync::Arc;

use pcb_clock::{KeySet, ProbClock, ProcessId};
use pcb_telemetry::{TraceEvent, TraceRecord, Tracer};

use crate::dedup::DedupFilter;
use crate::detector::{instant_alert, RecentListDetector};
use crate::message::{Message, MessageId};
use crate::pending::{InsertVerdict, WakeupIndex, WakeupStats};

/// Tuning knobs for a [`PcbProcess`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcbConfig {
    /// Run Algorithm 4 before every delivery and report its alert.
    pub detect_instant: bool,
    /// Run Algorithm 5 with the given recent-list window (time units of
    /// the caller's `now`); `None` disables it.
    pub recent_window: Option<u64>,
    /// Drop duplicate message ids (needed under gossip/UDP transports
    /// that may deliver the same message several times).
    pub dedup: bool,
    /// Ring-buffer capacity for lifecycle trace events; `0` (the default)
    /// disables tracing entirely — the emit path is a no-op closure that
    /// never builds an event.
    pub trace_capacity: usize,
}

impl Default for PcbConfig {
    fn default() -> Self {
        Self { detect_instant: true, recent_window: None, dedup: true, trace_capacity: 0 }
    }
}

/// One message handed to the application, together with detector verdicts.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// The delivered message.
    pub message: Message<P>,
    /// Algorithm 4 alert: the delivery *may* be (or enable) a causal-order
    /// violation. `false` guarantees correctness.
    pub instant_alert: bool,
    /// Algorithm 5 alert (only meaningful when a recent window is set).
    pub recent_alert: bool,
    /// How long the message sat in the pending queue before delivery, in
    /// the caller's `now` units (0 when deliverable on arrival).
    pub blocked_for: u64,
}

/// Counters describing an endpoint's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Messages broadcast by this endpoint.
    pub sent: u64,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Duplicates dropped by the dedup filter.
    pub duplicates: u64,
    /// Algorithm 4 alerts raised.
    pub instant_alerts: u64,
    /// Algorithm 5 alerts raised.
    pub recent_alerts: u64,
    /// High-water mark of the pending queue.
    pub max_pending: usize,
}

/// A probabilistic causal broadcast endpoint.
///
/// ```
/// use pcb_broadcast::{PcbProcess, PcbConfig};
/// use pcb_clock::{KeySet, KeySpace, ProcessId};
///
/// let space = KeySpace::new(4, 2)?;
/// let mut alice = PcbProcess::new(
///     ProcessId::new(0),
///     KeySet::from_entries(space, &[0, 1])?,
/// );
/// let mut bob = PcbProcess::new(
///     ProcessId::new(1),
///     KeySet::from_entries(space, &[1, 2])?,
/// );
///
/// let m = alice.broadcast("hi");
/// let delivered = bob.on_receive(m, 0);
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(*delivered[0].message.payload(), "hi");
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PcbProcess<P> {
    id: ProcessId,
    keys: Arc<KeySet>,
    clock: ProbClock,
    seq: u64,
    pending: WakeupIndex<P>,
    seen: DedupFilter,
    recent: Option<RecentListDetector>,
    config: PcbConfig,
    stats: ProcessStats,
    tracer: Tracer,
}

impl<P> PcbProcess<P> {
    /// Creates an endpoint with the default configuration.
    #[must_use]
    pub fn new(id: ProcessId, keys: KeySet) -> Self {
        Self::with_config(id, keys, PcbConfig::default())
    }

    /// Creates an endpoint with explicit configuration.
    #[must_use]
    pub fn with_config(id: ProcessId, keys: KeySet, config: PcbConfig) -> Self {
        let clock = ProbClock::new(keys.space());
        let recent = config.recent_window.map(RecentListDetector::new);
        let pending = WakeupIndex::new(clock.len());
        let tracer = Tracer::ring(id.index_u32(), config.trace_capacity);
        Self {
            id,
            keys: Arc::new(keys),
            clock,
            seq: 0,
            pending,
            seen: DedupFilter::new(),
            recent,
            config,
            stats: ProcessStats::default(),
            tracer,
        }
    }

    /// This endpoint's process id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// This endpoint's key set `f(p_i)`.
    #[must_use]
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// Read-only view of the local clock.
    #[must_use]
    pub fn clock(&self) -> &ProbClock {
        &self.clock
    }

    /// Number of received messages still waiting for their causal past.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Age (in the caller's time units) of the oldest pending message, if
    /// any. A pending message older than a few propagation delays signals
    /// a lost dependency — time to run anti-entropy
    /// ([`crate::recovery`]).
    #[must_use]
    pub fn oldest_pending_age(&self, now: u64) -> Option<u64> {
        self.pending.oldest_age(now)
    }

    /// Ids of every message this endpoint has seen (delivered, pending,
    /// or own broadcasts) — the `known` set of a
    /// [`crate::recovery::SyncRequest`]. Empty when dedup is disabled.
    pub fn seen_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.seen.iter()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ProcessStats {
        self.stats
    }

    /// Work counters of the wake-up index: gap checks, wake fan-out,
    /// pending high-water mark.
    #[must_use]
    pub fn wakeup_stats(&self) -> WakeupStats {
        self.pending.stats()
    }

    /// Advances the tracer's notion of "now" without any protocol action.
    /// Call it when the endpoint's host learns the time outside a
    /// `broadcast`/`on_receive` (e.g. before emitting host-level events
    /// through [`PcbProcess::tracer_mut`]).
    pub fn set_now(&mut self, now: u64) {
        self.tracer.advance(now);
    }

    /// Mutable access to the lifecycle tracer, for hosts that emit their
    /// own events (snapshots, recoveries, re-fetches) into the same ring.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Swaps this endpoint's tracer for `tracer`, returning the old one.
    /// [`PcbProcess::restore`] starts with a fresh ring; the recovery
    /// driver moves the pre-crash ring across so a restore does not erase
    /// the node's history (the trace replayer relies on `Sent` records
    /// surviving crashes).
    pub(crate) fn replace_tracer(&mut self, tracer: Tracer) -> Tracer {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// Drains all buffered trace records, oldest first.
    pub fn drain_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.drain()
    }

    /// **Algorithm 1.** Stamps and returns a broadcast message carrying
    /// `payload`. Hand the result to the transport; the local application
    /// is considered to have "delivered" its own message implicitly.
    pub fn broadcast(&mut self, payload: P) -> Message<P> {
        self.seq += 1;
        self.stats.sent += 1;
        let ts = self.clock.stamp_send(&self.keys);
        let id = MessageId::new(self.id, self.seq);
        if self.config.dedup {
            self.seen.insert(id);
        }
        let (sender, seq, keys) = (self.id, self.seq, &self.keys);
        self.tracer.emit(|| TraceEvent::Sent {
            sender: sender.index_u32(),
            seq,
            keys: keys.entries().to_vec(),
            key_vals: keys.iter().map(|entry| ts[entry]).collect(),
        });
        Message::new(id, Arc::clone(&self.keys), ts, payload)
    }

    /// **Algorithm 2.** Handles a message arriving from the transport at
    /// local time `now` (any monotone unit; used only by the Algorithm 5
    /// window). Returns every message that became deliverable, in delivery
    /// order — the new message may unblock older pending ones and vice
    /// versa, so zero, one, or many deliveries can result.
    pub fn on_receive(&mut self, message: Message<P>, now: u64) -> Vec<Delivery<P>> {
        self.on_receive_hinted(message, now, None)
    }

    /// [`PcbProcess::on_receive`] with an optional pre-computed
    /// deliverability [`Gap`] from [`ProbClock::first_gap`] against an
    /// **earlier snapshot** of this process's clock. The guard is monotone
    /// in the delivered set, so a stale hint can only under-promise: the
    /// verdict and delivery order are exactly those of the unhinted path,
    /// the hint merely skips re-scanning entries the snapshot already
    /// certified. Callers batching many arrivals compute hints in parallel
    /// against one snapshot and feed them through here serially.
    pub fn on_receive_hinted(
        &mut self,
        message: Message<P>,
        now: u64,
        hint: Option<pcb_clock::Gap>,
    ) -> Vec<Delivery<P>> {
        self.tracer.advance(now);
        if self.config.dedup && !self.seen.insert(message.id()) {
            self.stats.duplicates += 1;
            return Vec::new();
        }
        let (sender, seq) = (message.id().sender().index_u32(), message.id().seq());
        self.tracer.emit(|| TraceEvent::Received { sender, seq });
        let verdict = self.pending.insert_hinted(now, message, &self.clock, hint);
        if let InsertVerdict::Parked { entry, required } = verdict {
            self.tracer.emit(|| TraceEvent::Parked {
                sender,
                seq,
                entry: entry as u32,
                threshold: required,
            });
        }
        self.stats.max_pending = self.stats.max_pending.max(self.pending.len());
        self.drain(now)
    }

    /// Re-runs the delivery loop without a new arrival (useful after a
    /// state transfer or manual clock adjustment).
    pub fn poll(&mut self, now: u64) -> Vec<Delivery<P>> {
        self.drain(now)
    }

    /// Re-partitions the wake-up index across `shards` per-entry wake
    /// channels (see [`WakeupIndex::reshard`]). Delivery order is
    /// bit-identical at any shard count; sharding only changes which
    /// channel a parked waiter sits in, never when it wakes.
    pub fn reshard(&mut self, shards: usize) {
        self.pending.reshard(shards, &self.clock);
    }

    /// Installs a vector snapshot from an existing member (state transfer
    /// for a joining process) and drains anything that became deliverable.
    /// The snapshot can move the clock arbitrarily (not just forward), so
    /// the wake-up index is rebuilt rather than incrementally advanced.
    pub fn install_state(&mut self, vector: pcb_clock::Timestamp, now: u64) -> Vec<Delivery<P>> {
        self.clock.reset_to(vector);
        self.pending.rebuild(&self.clock);
        self.drain(now)
    }

    /// Captures a crash-durable snapshot of this endpoint together with
    /// its anti-entropy `store`. See [`crate::snapshot`] for what is (and
    /// deliberately is not) included.
    #[must_use]
    pub fn snapshot(
        &self,
        store: &crate::recovery::MessageStore<P>,
    ) -> crate::snapshot::ProcessSnapshot<P>
    where
        P: Clone,
    {
        // The snapshot must not claim still-pending messages: they are
        // lost with the crash (the pending queue is deliberately not
        // persisted), so leaving their ids in the durable seen-set would
        // make the restored endpoint advertise them as `known` and dedup
        // away the very re-fetch that is supposed to bring them back.
        let mut seen = self.seen.clone();
        for message in self.pending.iter_messages() {
            seen.remove(message.id());
        }
        crate::snapshot::ProcessSnapshot {
            id: self.id,
            keys: (*self.keys).clone(),
            config: self.config.clone(),
            clock: self.clock.vector().clone(),
            seq: self.seq,
            seen: seen.export_windows(),
            stats: self.stats,
            store_window: store.window(),
            store: store.entries().map(|(t, m)| (t, m.clone())).collect(),
        }
    }

    /// Rebuilds an endpoint (and its message store) from a snapshot. The
    /// pending queue starts empty — undelivered messages lost in the
    /// crash are re-fetched through anti-entropy. If any broadcasts
    /// happened after the snapshot, follow up with
    /// [`PcbProcess::replay_own_sends`] before sending again.
    #[must_use]
    pub fn restore(
        snapshot: crate::snapshot::ProcessSnapshot<P>,
    ) -> (Self, crate::recovery::MessageStore<P>) {
        let clock = ProbClock::from_vector(snapshot.clock);
        let pending = WakeupIndex::new(clock.len());
        let recent = snapshot.config.recent_window.map(RecentListDetector::new);
        let store =
            crate::recovery::MessageStore::from_entries(snapshot.store_window, snapshot.store);
        let tracer = Tracer::ring(snapshot.id.index_u32(), snapshot.config.trace_capacity);
        let process = Self {
            id: snapshot.id,
            keys: Arc::new(snapshot.keys),
            clock,
            seq: snapshot.seq,
            pending,
            seen: DedupFilter::from_windows(snapshot.seen),
            recent,
            config: snapshot.config,
            stats: snapshot.stats,
            tracer,
        };
        (process, store)
    }

    /// Re-applies the clock effects of own broadcasts made after the
    /// restored snapshot, up to the write-ahead durable sequence number
    /// `durable_seq`. Without this, a recovered sender would re-issue
    /// stamp heights already used before the crash and receivers would
    /// discard its fresh messages as stale. Returns the number of sends
    /// replayed; idempotent once caught up.
    pub fn replay_own_sends(&mut self, durable_seq: u64) -> u64 {
        let mut replayed = 0;
        while self.seq < durable_seq {
            self.seq += 1;
            self.stats.sent += 1;
            let _ = self.clock.stamp_send(&self.keys);
            if self.config.dedup {
                self.seen.insert(MessageId::new(self.id, self.seq));
            }
            replayed += 1;
        }
        replayed
    }

    /// Delivers everything the index has marked ready. Each delivery
    /// advances exactly the sender's `K` clock entries; the index is told
    /// which, wakes only the waiters whose thresholds those crossings
    /// satisfied, and queues any of them that became fully ready — so the
    /// cascade costs `O(unblocked · (log W + K))`, not `O(P)` per
    /// delivery. Delivery order (ready tickets = arrival order) matches
    /// the old front-to-back rescan exactly; see `tests/differential.rs`.
    fn drain(&mut self, now: u64) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        while let Some((arrived, message)) = self.pending.pop_ready_entry() {
            let delivery = self.deliver(message, now, now.saturating_sub(arrived));
            // Disjoint-field borrow: the wake callback writes the tracer
            // while the index iterates its own heaps.
            let tracer = &mut self.tracer;
            self.pending.on_clock_advance_with(
                delivery.message.keys().iter(),
                &self.clock,
                |woken, entry| {
                    let (sender, seq) = (woken.id().sender().index_u32(), woken.id().seq());
                    tracer.emit(|| TraceEvent::Woken { sender, seq, entry: entry as u32 });
                },
            );
            out.push(delivery);
        }
        out
    }

    fn deliver(&mut self, message: Message<P>, now: u64, blocked_for: u64) -> Delivery<P> {
        let instant = self.config.detect_instant
            && instant_alert(&self.clock, message.timestamp(), message.keys());
        let recent = match &mut self.recent {
            Some(det) => det.check(now, &self.clock, message.timestamp(), message.keys()),
            None => false,
        };
        self.clock.record_delivery(message.keys());
        if let Some(det) = &mut self.recent {
            det.record(now, message.timestamp().clone());
        }
        self.stats.delivered += 1;
        self.stats.instant_alerts += u64::from(instant);
        self.stats.recent_alerts += u64::from(recent);
        let (sender, seq) = (message.id().sender().index_u32(), message.id().seq());
        self.tracer.emit(|| TraceEvent::Delivered {
            sender,
            seq,
            blocked_for,
            alert4: instant,
            alert5: recent,
            violation: false,
        });
        // The endpoint has no exact oracle; `suspects` reports the pending
        // backlog as the concurrency proxy an operator can act on.
        let suspects = self.pending.len() as u32;
        if instant {
            self.tracer.emit(|| TraceEvent::Alert { alg: 4, sender, seq, suspects });
        }
        if recent {
            self.tracer.emit(|| TraceEvent::Alert { alg: 5, sender, seq, suspects });
        }
        Delivery { message, instant_alert: instant, recent_alert: recent, blocked_for }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn space() -> KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn proc(id: usize, entries: &[usize]) -> PcbProcess<&'static str> {
        PcbProcess::new(ProcessId::new(id), KeySet::from_entries(space(), entries).unwrap())
    }

    #[test]
    fn immediate_delivery_when_ready() {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let m = a.broadcast("x");
        let out = b.on_receive(m, 0);
        assert_eq!(out.len(), 1);
        assert!(!out[0].instant_alert);
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.stats().delivered, 1);
    }

    #[test]
    fn out_of_order_arrival_buffers_then_flushes() {
        // Figure 1: m' (depends on m) arrives first at p_k.
        let mut pi = proc(0, &[0, 1]);
        let mut pj = proc(1, &[1, 2]);
        let mut pk = proc(2, &[2, 3]);

        let m = pi.broadcast("m");
        assert_eq!(pj.on_receive(m.clone(), 0).len(), 1);
        let m_prime = pj.broadcast("m'");

        assert!(pk.on_receive(m_prime, 1).is_empty(), "m' must wait for m");
        assert_eq!(pk.pending_len(), 1);

        let out = pk.on_receive(m, 2);
        assert_eq!(out.len(), 2, "m arrives and unblocks m'");
        assert_eq!(*out[0].message.payload(), "m");
        assert_eq!(*out[1].message.payload(), "m'");
        assert_eq!(pk.stats().max_pending, 2);
    }

    #[test]
    fn figure2_wrong_delivery_raises_alert_on_late_message() {
        let mut pi = proc(0, &[0, 1]);
        let mut pj = proc(1, &[1, 2]);
        let mut p1 = proc(3, &[0, 3]);
        let mut p2 = proc(4, &[1, 3]);
        let mut pk = proc(2, &[2, 3]);

        let m = pi.broadcast("m");
        pj.on_receive(m.clone(), 0);
        let m_prime = pj.broadcast("m'");
        let m1 = p1.broadcast("m1");
        let m2 = p2.broadcast("m2");

        assert_eq!(pk.on_receive(m2, 0).len(), 1);
        assert_eq!(pk.on_receive(m1, 1).len(), 1);
        let out = pk.on_receive(m_prime, 2);
        assert_eq!(out.len(), 1, "m' wrongly delivered before m");
        let late = pk.on_receive(m, 3);
        assert_eq!(late.len(), 1);
        assert!(late[0].instant_alert, "Algorithm 4 flags the covered late message");
    }

    #[test]
    fn duplicates_dropped() {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let m = a.broadcast("x");
        assert_eq!(b.on_receive(m.clone(), 0).len(), 1);
        assert!(b.on_receive(m, 1).is_empty());
        assert_eq!(b.stats().duplicates, 1);
        assert_eq!(b.stats().delivered, 1);
    }

    #[test]
    fn dedup_disabled_redelivers() {
        let cfg = PcbConfig { dedup: false, ..PcbConfig::default() };
        let mut a = proc(0, &[0, 1]);
        let mut b = PcbProcess::with_config(
            ProcessId::new(1),
            KeySet::from_entries(space(), &[1, 2]).unwrap(),
            cfg,
        );
        let m = a.broadcast("x");
        assert_eq!(b.on_receive(m.clone(), 0).len(), 1);
        // Without dedup, the duplicate sits pending (its stamp now looks
        // stale but `is_deliverable` still passes: entries only grew).
        let again = b.on_receive(m, 1);
        assert_eq!(again.len(), 1, "duplicate re-delivered when dedup is off");
        assert_eq!(b.stats().duplicates, 0);
    }

    #[test]
    fn fifo_from_single_sender_is_preserved() {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let m1 = a.broadcast("1");
        let m2 = a.broadcast("2");
        let m3 = a.broadcast("3");
        assert!(b.on_receive(m3.clone(), 0).is_empty());
        assert!(b.on_receive(m2.clone(), 1).is_empty());
        let out = b.on_receive(m1.clone(), 2);
        let order: Vec<_> = out.iter().map(|d| *d.message.payload()).collect();
        assert_eq!(order, vec!["1", "2", "3"]);
    }

    #[test]
    fn three_deep_cross_sender_cascade_flushes_in_one_drain() {
        // m1 (A) <- m2 (B) <- m3 (C), arrivals fully reversed. The old
        // drain needed its restart-scan to flush this; the indexed drain
        // must release the whole chain from the single arrival of m1.
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let mut c = proc(3, &[0, 3]);
        let mut rx = proc(2, &[2, 3]);

        let m1 = a.broadcast("m1");
        assert_eq!(b.on_receive(m1.clone(), 0).len(), 1);
        let m2 = b.broadcast("m2");
        assert_eq!(c.on_receive(m1.clone(), 0).len(), 1);
        assert_eq!(c.on_receive(m2.clone(), 0).len(), 1);
        let m3 = c.broadcast("m3");

        assert!(rx.on_receive(m3, 0).is_empty(), "m3 waits on m2 and m1");
        assert!(rx.on_receive(m2, 1).is_empty(), "m2 waits on m1");
        assert_eq!(rx.pending_len(), 2);

        let out = rx.on_receive(m1, 2);
        let order: Vec<_> = out.iter().map(|d| *d.message.payload()).collect();
        assert_eq!(order, vec!["m1", "m2", "m3"], "one arrival flushes the chain");
        assert_eq!(rx.pending_len(), 0);
        assert!(rx.poll(3).is_empty(), "drain reached the fixpoint");
    }

    #[test]
    fn wakeup_stats_expose_index_work() {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let m1 = a.broadcast("1");
        let m2 = a.broadcast("2");
        assert!(b.on_receive(m2, 0).is_empty());
        assert_eq!(b.on_receive(m1, 1).len(), 2);
        let ws = b.wakeup_stats();
        assert_eq!(ws.ready_on_arrival, 1, "m1 was ready when it arrived");
        assert!(ws.wakeups >= 1, "m2 was woken by m1's delivery");
        assert_eq!(ws.max_pending, 2);
    }

    #[test]
    fn recent_window_detector_runs() {
        let cfg = PcbConfig { recent_window: Some(100), ..PcbConfig::default() };
        let mut pi = proc(0, &[0, 1]);
        let mut pk = PcbProcess::with_config(
            ProcessId::new(2),
            KeySet::from_entries(space(), &[2, 3]).unwrap(),
            cfg,
        );
        let m = pi.broadcast("m");
        let out = pk.on_receive(m, 5);
        assert_eq!(out.len(), 1);
        assert!(!out[0].recent_alert, "nominal delivery, no witness");
    }

    #[test]
    fn install_state_unblocks_joiner() {
        let mut a = proc(0, &[0, 1]);
        let _warmup = a.broadcast("old1");
        let _warmup2 = a.broadcast("old2");
        let fresh_msg = a.broadcast("new");

        // A joiner with a zero vector cannot deliver message #3.
        let mut joiner = proc(9, &[2, 3]);
        assert!(joiner.on_receive(fresh_msg, 0).is_empty());

        // State transfer from a peer that has everything: two deliveries
        // of a's messages are reflected as two increments of f(a).
        let mut peer_clock = ProbClock::new(space());
        let fa = KeySet::from_entries(space(), &[0, 1]).unwrap();
        peer_clock.record_delivery(&fa);
        peer_clock.record_delivery(&fa);
        let out = joiner.install_state(peer_clock.vector().clone(), 1);
        assert_eq!(out.len(), 1, "snapshot unblocks the fresh message");
    }

    #[test]
    fn snapshot_does_not_claim_pending_messages() {
        // m' is received but parked (its dependency m never arrived) when
        // the snapshot is taken. After a crash + restore the pending queue
        // is gone; the restored endpoint must treat a re-fetched m' as
        // new — if the snapshot's seen-set claimed it, it would be lost
        // forever.
        let mut pi = proc(0, &[0, 1]);
        let mut pj = proc(1, &[1, 2]);
        let mut pk = proc(2, &[2, 3]);

        let m = pi.broadcast("m");
        assert_eq!(pj.on_receive(m.clone(), 0).len(), 1);
        let m_prime = pj.broadcast("m'");
        assert!(pk.on_receive(m_prime.clone(), 0).is_empty(), "m' parks");

        let store = crate::recovery::MessageStore::new(60_000);
        let snap = pk.snapshot(&store);
        assert!(
            !snap.seen.iter().any(|(sender, prefix, exc)| *sender == m_prime.id().sender()
                && (m_prime.id().seq() <= *prefix || exc.contains(&m_prime.id().seq()))),
            "snapshot seen-set claims the pending message"
        );

        let (mut restored, _store) = PcbProcess::restore(snap);
        assert!(restored.on_receive(m_prime, 1).is_empty(), "parks again, not deduped");
        assert_eq!(restored.on_receive(m, 2).len(), 2, "dependency unblocks the re-fetch");
    }

    #[test]
    fn poll_is_noop_without_state_change() {
        let mut b = proc(1, &[1, 2]);
        assert!(b.poll(0).is_empty());
    }

    #[test]
    fn lifecycle_trace_records_park_wake_deliver() {
        let cfg = PcbConfig { trace_capacity: 64, ..PcbConfig::default() };
        let mut a = PcbProcess::with_config(
            ProcessId::new(0),
            KeySet::from_entries(space(), &[0, 1]).unwrap(),
            cfg.clone(),
        );
        let mut b = PcbProcess::with_config(
            ProcessId::new(1),
            KeySet::from_entries(space(), &[1, 2]).unwrap(),
            cfg,
        );
        let m1 = a.broadcast("1");
        let m2 = a.broadcast("2");
        assert!(b.on_receive(m2, 5).is_empty());
        assert_eq!(b.on_receive(m1, 9).len(), 2);

        let sends = a.drain_trace();
        assert_eq!(sends.len(), 2);
        assert!(matches!(sends[0].event, pcb_telemetry::TraceEvent::Sent { seq: 1, .. }));

        let trace = b.drain_trace();
        let names: Vec<_> = trace.iter().map(|r| r.event.name()).collect();
        assert_eq!(
            names,
            ["Received", "Parked", "Received", "Delivered", "Woken", "Delivered"],
            "out-of-order pair parks then wakes: {names:?}"
        );
        let blocked: Vec<_> = trace
            .iter()
            .filter_map(|r| match r.event {
                pcb_telemetry::TraceEvent::Delivered { seq, blocked_for, .. } => {
                    Some((seq, blocked_for))
                }
                _ => None,
            })
            .collect();
        assert_eq!(blocked, [(1, 0), (2, 4)], "m2 sat pending from t=5 to t=9");
        assert!(b.drain_trace().is_empty(), "drain empties the ring");
    }

    #[test]
    fn disabled_tracer_stays_empty() {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[1, 2]);
        let m = a.broadcast("x");
        b.on_receive(m, 0);
        assert!(a.drain_trace().is_empty());
        assert!(b.drain_trace().is_empty());
        assert!(!b.tracer_mut().enabled());
    }

    #[test]
    fn stats_track_sends() {
        let mut a = proc(0, &[0, 1]);
        a.broadcast("x");
        a.broadcast("y");
        assert_eq!(a.stats().sent, 2);
        assert_eq!(a.clock().vector().entries(), &[2, 2, 0, 0]);
    }
}
