//! Entry-indexed wake-up engine for the pending queue.
//!
//! The seed implementation rescanned the whole pending queue after every
//! delivery (`O(P)` per delivery, `O(P²)` per cascade). This module
//! replaces the rescan with an index keyed by what each blocked message
//! is actually waiting for:
//!
//! * Every blocked message is registered on exactly **one** clock entry —
//!   the first entry whose Algorithm 2 wait-condition fails — together
//!   with the local value that entry must reach
//!   ([`pcb_clock::ProbClock::deliverability_gap`]).
//! * Each entry keeps its waiters in a min-heap ordered by that required
//!   threshold, so a delivery (which advances exactly the sender's `K`
//!   entries) wakes only the waiters whose threshold was just crossed —
//!   not every message that happens to share the entry.
//! * Woken messages resume their gap scan from the entry they were
//!   blocked on (sound because the wait-condition is monotone in the
//!   local clock), re-registering on the next blocked entry or moving to
//!   the ready heap.
//! * The ready heap is ordered by arrival ticket, which reproduces the
//!   naive scan's delivery order exactly: the linear rescan always
//!   delivered the lowest-queue-index deliverable message, and since
//!   deliverability is monotone both engines repeatedly pick the
//!   minimum-arrival deliverable message. The differential test in
//!   `tests/differential.rs` replays identical traces through both paths
//!   and asserts identical delivery orders.
//!
//! Per-message cost across its whole pending lifetime: one `O(R)` gap
//! scan amortized over all re-checks (the scan cursor only moves right),
//! plus `O(log W)` heap traffic per re-registration, where `W` is the
//! number of waiters on one entry. A delivery's wake-up cost is
//! proportional to the number of *actually unblocked* waiters on its `K`
//! entries, not to the pending-queue length.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcb_clock::{Gap, ProbClock, ShardMap};

use crate::message::Message;

/// Counters describing the index's work — the observable difference
/// between `O(waiters-on-K-entries)` wake-ups and an `O(P)` rescan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeupStats {
    /// Gap evaluations performed (insert + every wake re-check). The
    /// naive engine's equivalent is its deliverability scans; the ratio
    /// of the two is the measured speedup.
    pub gap_checks: u64,
    /// Waiters popped from entry heaps by clock advances.
    pub wakeups: u64,
    /// Messages that were deliverable on arrival (never waited).
    pub ready_on_arrival: u64,
    /// Largest number of waiters woken by a single delivery.
    pub max_wake_fanout: u64,
    /// High-water mark of concurrently indexed (pending) messages.
    pub max_pending: usize,
}

/// Where [`WakeupIndex::insert_tracked`] routed a new arrival — the
/// observable fact a tracer wants: did the message wait, and if so on
/// which clock entry and for which local value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertVerdict {
    /// Deliverable on arrival; it went straight to the ready heap.
    Ready,
    /// Blocked: parked on `entry` until the local clock reaches `required`.
    Parked {
        /// Clock entry the message is registered on.
        entry: usize,
        /// Local value that entry must reach before the next re-check.
        required: u64,
    },
}

/// A pending message plus its bookkeeping.
#[derive(Debug, Clone)]
struct Slot<P> {
    arrived: u64,
    ticket: u64,
    /// Resume point for the gap scan; strictly increases across
    /// re-registrations, bounding total scan work at `O(R)` per message.
    scan_from: usize,
    message: Message<P>,
}

/// A per-entry waiter heap: min-heap of `(required, ticket, slot)`.
type WaiterHeap = BinaryHeap<Reverse<(u64, u64, usize)>>;

/// The entry-indexed pending set. Owns the blocked messages; the caller
/// owns the clock and reports which entries each delivery advanced.
///
/// Wake channels (the per-entry waiter heaps) are physically grouped by
/// [`ShardMap`]: entry `e` lives at `shards[e % S][e / S]`, so the `S`
/// shard groups are disjoint owners and a parallel sweep can hand each
/// group to a different worker without sharing. The default `S = 1` is
/// the sequential layout; because each entry keeps its own heap at any
/// `S` and the ready heap stays global (ordered by arrival ticket),
/// every observable — verdicts, wake sets, pop order — is identical for
/// every shard count. `tests` pins that equivalence differentially.
#[derive(Debug, Clone)]
pub struct WakeupIndex<P> {
    slots: Vec<Option<Slot<P>>>,
    free: Vec<usize>,
    /// Number of clock entries (`R`).
    entries: usize,
    /// Entry → shard striping for the waiter heaps.
    map: ShardMap,
    /// Per shard, per owned entry: the entry's waiter heap.
    waiters: Vec<Vec<WaiterHeap>>,
    /// Min-heap of `(ticket, slot)` messages whose guard passed.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    next_ticket: u64,
    len: usize,
    stats: WakeupStats,
}

/// Builds the `[shard][offset]` heap layout for `entries` entries.
fn shard_layout(entries: usize, map: ShardMap) -> Vec<Vec<WaiterHeap>> {
    (0..map.shards())
        .map(|shard| (0..map.shard_len(entries, shard)).map(|_| BinaryHeap::new()).collect())
        .collect()
}

impl<P> WakeupIndex<P> {
    /// An empty index over a clock of `r` entries, sequential layout.
    #[must_use]
    pub fn new(r: usize) -> Self {
        Self::with_shards(r, 1)
    }

    /// An empty index over a clock of `r` entries with its wake channels
    /// striped across `shards` shard groups (clamped to `[1, r]`).
    #[must_use]
    pub fn with_shards(r: usize, shards: usize) -> Self {
        let map = ShardMap::new(shards.min(r.max(1)));
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            entries: r,
            map,
            waiters: shard_layout(r, map),
            ready: BinaryHeap::new(),
            next_ticket: 0,
            len: 0,
            stats: WakeupStats::default(),
        }
    }

    /// Number of shard groups the wake channels are striped across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.map.shards()
    }

    /// Re-stripes the wake channels across `shards` groups, re-parking
    /// every waiter in the new layout. Observable behaviour is unchanged
    /// (same per-entry heaps, same global ready order); only heap
    /// ownership moves, so this is safe with messages in flight.
    pub fn reshard(&mut self, shards: usize, clock: &ProbClock) {
        let map = ShardMap::new(shards.min(self.entries.max(1)));
        if map == self.map {
            return;
        }
        self.map = map;
        self.waiters = shard_layout(self.entries, map);
        self.rebuild(clock);
    }

    /// Number of messages currently indexed (waiting or ready).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> WakeupStats {
        self.stats
    }

    /// Age of the oldest indexed message relative to `now`.
    #[must_use]
    pub fn oldest_age(&self, now: u64) -> Option<u64> {
        self.slots.iter().flatten().map(|slot| now.saturating_sub(slot.arrived)).max()
    }

    /// Every message currently indexed (waiting or ready), in slot order.
    /// Used by snapshotting to subtract still-pending ids from the
    /// durable seen-set.
    pub fn iter_messages(&self) -> impl Iterator<Item = &Message<P>> {
        self.slots.iter().flatten().map(|slot| &slot.message)
    }

    /// Indexes a newly arrived message, classifying it against `clock`:
    /// deliverable messages go to the ready heap (pop them with
    /// [`WakeupIndex::pop_ready`]), blocked ones onto their first blocked
    /// entry's waiter heap.
    pub fn insert(&mut self, arrived: u64, message: Message<P>, clock: &ProbClock) {
        let _ = self.insert_tracked(arrived, message, clock);
    }

    /// [`WakeupIndex::insert`] that also reports where the message went —
    /// ready heap or a specific entry's waiter heap — so tracers can emit
    /// `Parked { entry, threshold }` events without re-deriving the gap.
    pub fn insert_tracked(
        &mut self,
        arrived: u64,
        message: Message<P>,
        clock: &ProbClock,
    ) -> InsertVerdict {
        self.insert_hinted(arrived, message, clock, None)
    }

    /// [`WakeupIndex::insert_tracked`] with an optional pre-scan hint: a
    /// [`Gap`] computed for this message against an **earlier** snapshot
    /// of the same clock (batch pre-classification on worker threads).
    ///
    /// Soundness rides on monotonicity — the local clock only grows
    /// between the snapshot and the insert — so `Gap::Ready` stays ready,
    /// and `Gap::Blocked { entry, .. }` certifies every entry before
    /// `entry` was already satisfied, making `entry` a valid scan resume
    /// point. The verdict (and all downstream state) is therefore
    /// identical to an unhinted insert; only redundant scan work is
    /// skipped. The hint's `required` value is *not* trusted: it may be
    /// stale, so a blocked hint still re-scans from `entry` against the
    /// current clock.
    pub fn insert_hinted(
        &mut self,
        arrived: u64,
        message: Message<P>,
        clock: &ProbClock,
        hint: Option<Gap>,
    ) -> InsertVerdict {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let scan_from = match hint {
            Some(Gap::Blocked { entry, .. }) => entry,
            _ => 0,
        };
        let slot = Slot { arrived, ticket, scan_from, message };
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.len += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.len);
        let verdict = if matches!(hint, Some(Gap::Ready)) {
            // Ready under the older snapshot ⇒ ready now; skip the scan.
            self.ready.push(Reverse((ticket, index)));
            InsertVerdict::Ready
        } else {
            self.classify(index, clock)
        };
        if verdict == InsertVerdict::Ready {
            self.stats.ready_on_arrival += 1;
        }
        verdict
    }

    /// Routes slot `index` by its current gap; reports where it went. The
    /// scan resumes where the last one stopped.
    fn classify(&mut self, index: usize, clock: &ProbClock) -> InsertVerdict {
        let slot = self.slots[index].as_mut().expect("classify on live slot");
        self.stats.gap_checks += 1;
        let gap = clock.deliverability_gap_from(
            slot.message.timestamp(),
            slot.message.keys(),
            slot.scan_from,
        );
        match gap {
            Gap::Ready => {
                self.ready.push(Reverse((slot.ticket, index)));
                InsertVerdict::Ready
            }
            Gap::Blocked { entry, required } => {
                debug_assert!(entry >= slot.scan_from, "gap scan moved left");
                slot.scan_from = entry;
                let (shard, offset) = (self.map.shard_of(entry), self.map.offset_of(entry));
                self.waiters[shard][offset].push(Reverse((required, slot.ticket, index)));
                InsertVerdict::Parked { entry, required }
            }
            Gap::Never => unreachable!("probabilistic guard never yields Never"),
        }
    }

    /// Reacts to the clock advancing on `channels` (the sender's key set
    /// of the message just delivered): wakes exactly the waiters whose
    /// required threshold is now met and re-classifies them.
    pub fn on_clock_advance<I>(&mut self, channels: I, clock: &ProbClock)
    where
        I: IntoIterator<Item = usize>,
    {
        self.on_clock_advance_with(channels, clock, |_, _| {});
    }

    /// [`WakeupIndex::on_clock_advance`] with a per-wake callback: for
    /// each waiter whose threshold was crossed, `on_woken` sees the
    /// message and the entry it was parked on *before* re-classification
    /// (the message may park again on a later entry or become ready).
    pub fn on_clock_advance_with<I, F>(&mut self, channels: I, clock: &ProbClock, mut on_woken: F)
    where
        I: IntoIterator<Item = usize>,
        F: FnMut(&Message<P>, usize),
    {
        let local = clock.vector().entries();
        let mut fanout = 0u64;
        for channel in channels {
            let (shard, offset) = (self.map.shard_of(channel), self.map.offset_of(channel));
            while let Some(&Reverse((required, _, slot))) = self.waiters[shard][offset].peek() {
                if local[channel] < required {
                    break;
                }
                self.waiters[shard][offset].pop();
                // A popped waiter may be a ghost of a slot re-registered
                // elsewhere? No: each live slot is registered in exactly
                // one heap, so the slot is live and parked right here.
                fanout += 1;
                let message = &self.slots[slot].as_ref().expect("woken slot is live").message;
                on_woken(message, channel);
                self.classify(slot, clock);
            }
        }
        self.stats.wakeups += fanout;
        self.stats.max_wake_fanout = self.stats.max_wake_fanout.max(fanout);
    }

    /// Removes and returns the ready message with the smallest arrival
    /// ticket — the exact message the naive front-to-back rescan would
    /// deliver next. Deliverability is monotone, so ready entries never
    /// need re-validation.
    pub fn pop_ready(&mut self) -> Option<Message<P>> {
        self.pop_ready_entry().map(|(_, message)| message)
    }

    /// [`WakeupIndex::pop_ready`] that also returns the message's arrival
    /// time, so callers can report how long it sat blocked.
    pub fn pop_ready_entry(&mut self) -> Option<(u64, Message<P>)> {
        let Reverse((_, index)) = self.ready.pop()?;
        let slot = self.slots[index].take().expect("ready slot is live");
        self.free.push(index);
        self.len -= 1;
        Some((slot.arrived, slot.message))
    }

    /// Throws away all index structure and re-classifies every pending
    /// message from scratch. Needed after a non-monotone clock change
    /// (state installation may overwrite the vector arbitrarily), where
    /// resume points and parked thresholds are no longer trustworthy.
    pub fn rebuild(&mut self, clock: &ProbClock) {
        for shard in &mut self.waiters {
            for heap in shard {
                heap.clear();
            }
        }
        self.ready.clear();
        for index in 0..self.slots.len() {
            if let Some(slot) = self.slots[index].as_mut() {
                slot.scan_from = 0;
                self.classify(index, clock);
            }
        }
    }
}

/// The seed's linear-rescan delivery engine, kept verbatim for
/// differential testing and benchmarking against the index. Tracks its
/// deliverability-scan count so work ratios can be asserted
/// deterministically.
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use std::collections::VecDeque;

    use pcb_clock::ProbClock;

    use crate::message::Message;

    /// A pending queue driven by the original restart-scan loop.
    #[derive(Debug, Clone)]
    pub struct NaiveQueue<P> {
        pending: VecDeque<Message<P>>,
        /// Number of `is_deliverable` evaluations performed.
        pub scan_steps: u64,
    }

    impl<P> Default for NaiveQueue<P> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<P> NaiveQueue<P> {
        /// An empty queue.
        #[must_use]
        pub fn new() -> Self {
            Self { pending: VecDeque::new(), scan_steps: 0 }
        }

        /// Messages still blocked.
        #[must_use]
        pub fn len(&self) -> usize {
            self.pending.len()
        }

        /// Whether nothing is pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.pending.is_empty()
        }

        /// Buffers an arrival and runs the seed's delivery loop: scan
        /// front-to-back, deliver the first ready message (recording it
        /// on `clock`), restart from the front, stop at a full pass with
        /// no delivery. Returns the delivered messages in order.
        pub fn on_receive(
            &mut self,
            message: Message<P>,
            clock: &mut ProbClock,
        ) -> Vec<Message<P>> {
            self.pending.push_back(message);
            self.drain(clock)
        }

        /// The seed's restart-scan loop (without the dead outer
        /// `delivered_any` loop — the inner `i = 0` restart already
        /// reaches the fixpoint; see the drain rewrite notes).
        pub fn drain(&mut self, clock: &mut ProbClock) -> Vec<Message<P>> {
            let mut out = Vec::new();
            let mut i = 0;
            while i < self.pending.len() {
                self.scan_steps += 1;
                let msg = &self.pending[i];
                if clock.is_deliverable(msg.timestamp(), msg.keys()) {
                    let msg = self.pending.remove(i).expect("index in bounds");
                    clock.record_delivery(msg.keys());
                    out.push(msg);
                    i = 0;
                } else {
                    i += 1;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::{KeySet, KeySpace, ProcessId};
    use std::sync::Arc;

    use crate::message::MessageId;

    fn space() -> KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn msg(sender: usize, seq: u64, keys: &[usize], ts: pcb_clock::Timestamp) -> Message<()> {
        Message::new(
            MessageId::new(ProcessId::new(sender), seq),
            Arc::new(KeySet::from_entries(space(), keys).unwrap()),
            ts,
            (),
        )
    }

    #[test]
    fn ready_message_pops_immediately() {
        let clock = ProbClock::new(space());
        let mut sender = ProbClock::new(space());
        let keys = [0, 1];
        let ts = sender.stamp_send(&KeySet::from_entries(space(), &keys).unwrap());

        let mut index = WakeupIndex::new(4);
        index.insert(0, msg(0, 1, &keys, ts), &clock);
        assert_eq!(index.len(), 1);
        assert!(index.pop_ready().is_some());
        assert!(index.is_empty());
        assert_eq!(index.stats().ready_on_arrival, 1);
    }

    #[test]
    fn blocked_message_wakes_on_threshold() {
        let mut clock = ProbClock::new(space());
        let f = KeySet::from_entries(space(), &[1, 2]).unwrap();
        let mut sender = ProbClock::new(space());
        let ts1 = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut index = WakeupIndex::new(4);
        index.insert(0, msg(1, 2, &[1, 2], ts2), &clock);
        assert!(index.pop_ready().is_none(), "FIFO gap blocks the second send");

        index.insert(1, msg(1, 1, &[1, 2], ts1), &clock);
        let first = index.pop_ready().expect("first send is ready");
        assert_eq!(first.id().seq(), 1);

        clock.record_delivery(&f);
        index.on_clock_advance(f.iter(), &clock);
        let second = index.pop_ready().expect("threshold crossed");
        assert_eq!(second.id().seq(), 2);
        assert!(index.is_empty());
        assert!(index.stats().wakeups >= 1);
    }

    #[test]
    fn same_entry_waiters_wake_selectively() {
        // Three FIFO sends from one sender, arriving in reverse: each
        // delivery must wake exactly the next message in the chain, not
        // every waiter parked on the shared entries.
        let mut clock = ProbClock::new(space());
        let f = KeySet::from_entries(space(), &[0, 1]).unwrap();
        let mut sender = ProbClock::new(space());
        let stamps: Vec<_> = (0..3).map(|_| sender.stamp_send(&f)).collect();

        let mut index = WakeupIndex::new(4);
        for (k, ts) in stamps.iter().enumerate().rev() {
            index.insert(0, msg(0, k as u64 + 1, &[0, 1], ts.clone()), &clock);
        }
        let mut order = Vec::new();
        while let Some(m) = index.pop_ready() {
            clock.record_delivery(m.keys());
            let keys: Vec<usize> = m.keys().iter().collect();
            order.push(m.id().seq());
            index.on_clock_advance(keys, &clock);
        }
        assert_eq!(order, vec![1, 2, 3]);
        // Selective wake-up: each delivery woke exactly one waiter.
        assert_eq!(index.stats().max_wake_fanout, 1);
    }

    #[test]
    fn oldest_age_tracks_arrivals() {
        let clock = ProbClock::new(space());
        let f = KeySet::from_entries(space(), &[1, 2]).unwrap();
        let mut sender = ProbClock::new(space());
        let _ = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut index = WakeupIndex::new(4);
        assert_eq!(index.oldest_age(100), None);
        index.insert(10, msg(1, 2, &[1, 2], ts2), &clock);
        assert_eq!(index.oldest_age(100), Some(90));
    }

    #[test]
    fn rebuild_reclassifies_after_clock_overwrite() {
        let mut clock = ProbClock::new(space());
        let f = KeySet::from_entries(space(), &[1, 2]).unwrap();
        let mut sender = ProbClock::new(space());
        let _ = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut index = WakeupIndex::new(4);
        index.insert(0, msg(1, 2, &[1, 2], ts2), &clock);
        assert!(index.pop_ready().is_none());

        // Snapshot install: vector jumps forward without any delivery.
        clock.reset_to(pcb_clock::Timestamp::from_entries(vec![0, 1, 1, 0]));
        index.rebuild(&clock);
        assert!(index.pop_ready().is_some(), "rebuild sees the new vector");
    }

    /// Drives one arrival stream through an index, draining after every
    /// insert, and returns the delivery order. `hints`, when set,
    /// pre-classifies every arrival against the *initial* clock — a
    /// deliberately stale snapshot, exactly the batched endpoint's
    /// worker-side pre-scan — so this exercises the monotonicity
    /// argument, not just the trivial same-clock case.
    fn drive(
        arrivals: &[Message<()>],
        shards: usize,
        hints: bool,
    ) -> (Vec<MessageId>, WakeupStats) {
        let snapshot = ProbClock::new(space());
        let mut clock = ProbClock::new(space());
        let mut index = WakeupIndex::with_shards(4, shards);
        let mut order = Vec::new();
        for m in arrivals {
            let hint = hints.then(|| snapshot.deliverability_gap(m.timestamp(), m.keys()));
            index.insert_hinted(0, m.clone(), &clock, hint);
            while let Some(d) = index.pop_ready() {
                clock.record_delivery(d.keys());
                let keys: Vec<usize> = d.keys().iter().collect();
                order.push(d.id());
                index.on_clock_advance(keys, &clock);
            }
        }
        (order, index.stats())
    }

    /// A deterministic contended trace: three senders on overlapping key
    /// sets, arrivals shuffled by a fixed permutation so plenty of
    /// messages park before delivering.
    fn contended_trace() -> Vec<Message<()>> {
        let sets = [[0usize, 1], [1, 2], [2, 3]];
        let mut clocks: Vec<ProbClock> = (0..3).map(|_| ProbClock::new(space())).collect();
        let mut msgs = Vec::new();
        for round in 0..8u64 {
            for (s, set) in sets.iter().enumerate() {
                let f = KeySet::from_entries(space(), set).unwrap();
                let ts = clocks[s].stamp_send(&f);
                msgs.push(msg(s, round + 1, set, ts));
            }
        }
        // Fixed shuffle: reverse each window of five.
        for window in msgs.chunks_mut(5) {
            window.reverse();
        }
        msgs
    }

    #[test]
    fn sharded_layouts_are_bit_identical() {
        let trace = contended_trace();
        let (seq_order, seq_stats) = drive(&trace, 1, false);
        assert!(!seq_order.is_empty());
        for shards in [2, 3, 4, 7] {
            let (order, stats) = drive(&trace, shards, false);
            assert_eq!(order, seq_order, "delivery order diverged at {shards} shards");
            assert_eq!(stats, seq_stats, "work counters diverged at {shards} shards");
        }
    }

    #[test]
    fn hinted_inserts_match_unhinted_verdicts() {
        let trace = contended_trace();
        let (plain, plain_stats) = drive(&trace, 1, false);
        let (hinted, hinted_stats) = drive(&trace, 4, true);
        assert_eq!(hinted, plain, "hints changed delivery order");
        // Hints must only *save* scans, never add heap traffic.
        assert_eq!(hinted_stats.wakeups, plain_stats.wakeups);
        assert_eq!(hinted_stats.ready_on_arrival, plain_stats.ready_on_arrival);
        assert!(hinted_stats.gap_checks <= plain_stats.gap_checks);
    }

    #[test]
    fn reshard_preserves_waiters_in_flight() {
        let mut clock = ProbClock::new(space());
        let f = KeySet::from_entries(space(), &[1, 2]).unwrap();
        let mut sender = ProbClock::new(space());
        let ts1 = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut index = WakeupIndex::new(4);
        index.insert(0, msg(1, 2, &[1, 2], ts2), &clock);
        assert!(index.pop_ready().is_none(), "second send parks");

        index.reshard(3, &clock);
        assert_eq!(index.shard_count(), 3);
        assert_eq!(index.len(), 1, "re-striping keeps the waiter");

        index.insert(1, msg(1, 1, &[1, 2], ts1), &clock);
        let first = index.pop_ready().expect("first send ready");
        clock.record_delivery(first.keys());
        index.on_clock_advance(f.iter(), &clock);
        let second = index.pop_ready().expect("waiter survives the reshard");
        assert_eq!(second.id().seq(), 2);
        assert!(index.is_empty());
    }

    #[test]
    fn naive_queue_matches_index_on_small_trace() {
        let f_a = KeySet::from_entries(space(), &[0, 1]).unwrap();
        let f_b = KeySet::from_entries(space(), &[1, 2]).unwrap();
        let mut a = ProbClock::new(space());
        let mut b = ProbClock::new(space());
        let m1 = a.stamp_send(&f_a);
        b.record_delivery(&f_a);
        let m2 = b.stamp_send(&f_b);

        let arrivals = vec![msg(1, 1, &[1, 2], m2), msg(0, 1, &[0, 1], m1)];

        let mut naive_clock = ProbClock::new(space());
        let mut naive = naive::NaiveQueue::new();
        let mut naive_order = Vec::new();
        for m in arrivals.clone() {
            for d in naive.on_receive(m, &mut naive_clock) {
                naive_order.push(d.id());
            }
        }

        let mut clock = ProbClock::new(space());
        let mut index = WakeupIndex::new(4);
        let mut indexed_order = Vec::new();
        for m in arrivals {
            index.insert(0, m, &clock);
            while let Some(d) = index.pop_ready() {
                clock.record_delivery(d.keys());
                let keys: Vec<usize> = d.keys().iter().collect();
                indexed_order.push(d.id());
                index.on_clock_advance(keys, &clock);
            }
        }
        assert_eq!(naive_order, indexed_order);
        assert_eq!(naive_order.len(), 2);
    }
}
