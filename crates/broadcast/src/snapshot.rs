//! Crash-durable process snapshots.
//!
//! A [`ProcessSnapshot`] captures everything a `PcbProcess` needs to
//! survive a crash: identity, key set, clock vector, sequence counter,
//! the compressed dedup state, lifetime stats, and the anti-entropy
//! [`MessageStore`](crate::recovery::MessageStore) contents. A recovered
//! node restores from its last snapshot and catches up through
//! anti-entropy.
//!
//! Two pieces of state are deliberately **not** snapshotted:
//!
//! * The pending queue. Messages received but not yet delivered are lost
//!   with the crash; because they were never delivered, the dedup state
//!   in the snapshot does not claim them, so anti-entropy re-fetches them
//!   — losing the buffer costs a re-fetch, never a message.
//! * The Algorithm 5 recent list. It only witnesses deliveries inside a
//!   short window; by the time a node restarts, every entry would have
//!   expired anyway. The detector restarts empty (briefly less sensitive,
//!   never unsafe).
//!
//! The sequence counter in the snapshot may lag the true number of sends
//! (broadcasts after the last snapshot). Pair the snapshot with a
//! write-ahead durable sequence number and call
//! `PcbProcess::replay_own_sends` after restoring, so the clock re-applies
//! those send increments and never re-issues an already-used stamp height.
//!
//! For byte payloads the snapshot has a wire encoding ([`encode_snapshot`]
//! / [`decode_snapshot`]) with the same hardening as message frames:
//! version byte, FNV-1a checksum, total decoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pcb_clock::{KeySet, KeySpace, ProcessId, Timestamp};

use crate::message::Message;
use crate::process::{PcbConfig, ProcessStats};
use crate::wire::{self, WireError};

/// Everything needed to rebuild a `PcbProcess` (and its message store)
/// after a crash. Produced by `PcbProcess::snapshot`, consumed by
/// `PcbProcess::restore`.
#[derive(Debug, Clone)]
pub struct ProcessSnapshot<P> {
    /// The endpoint's process id.
    pub id: ProcessId,
    /// The endpoint's key set `f(p_i)`.
    pub keys: KeySet,
    /// The endpoint's configuration.
    pub config: PcbConfig,
    /// The clock vector at snapshot time.
    pub clock: Timestamp,
    /// The last sequence number used at snapshot time.
    pub seq: u64,
    /// Compressed dedup state: `(sender, prefix, exceptions)` windows.
    pub seen: Vec<(ProcessId, u64, Vec<u64>)>,
    /// Lifetime counters at snapshot time.
    pub stats: ProcessStats,
    /// Retention window of the message store.
    pub store_window: u64,
    /// Retained `(insert_time, message)` pairs, oldest first.
    pub store: Vec<(u64, Message<P>)>,
}

const SNAPSHOT_VERSION: u8 = 1;

/// Encodes a snapshot with byte payloads to a self-contained durable
/// blob (version byte, varint fields, trailing FNV-1a checksum).
#[must_use]
pub fn encode_snapshot(snapshot: &ProcessSnapshot<Bytes>) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + snapshot.store.len() * 64);
    buf.put_u8(SNAPSHOT_VERSION);
    wire::put_uvar(&mut buf, snapshot.id.index() as u64);
    let space = snapshot.keys.space();
    wire::put_uvar(&mut buf, space.r() as u64);
    wire::put_uvar(&mut buf, space.k() as u64);
    buf.put_u128_le(snapshot.keys.set_id());
    let flags = u8::from(snapshot.config.detect_instant)
        | u8::from(snapshot.config.dedup) << 1
        | u8::from(snapshot.config.recent_window.is_some()) << 2;
    buf.put_u8(flags);
    if let Some(window) = snapshot.config.recent_window {
        wire::put_uvar(&mut buf, window);
    }
    wire::put_uvar(&mut buf, snapshot.seq);
    wire::put_uvar(&mut buf, snapshot.clock.len() as u64);
    for &entry in snapshot.clock.entries() {
        wire::put_uvar(&mut buf, entry);
    }
    wire::put_uvar(&mut buf, snapshot.seen.len() as u64);
    for (sender, prefix, exceptions) in &snapshot.seen {
        wire::put_uvar(&mut buf, sender.index() as u64);
        wire::put_uvar(&mut buf, *prefix);
        wire::put_uvar(&mut buf, exceptions.len() as u64);
        for &seq in exceptions {
            wire::put_uvar(&mut buf, seq);
        }
    }
    let s = &snapshot.stats;
    for counter in [s.sent, s.delivered, s.duplicates, s.instant_alerts, s.recent_alerts] {
        wire::put_uvar(&mut buf, counter);
    }
    wire::put_uvar(&mut buf, s.max_pending as u64);
    wire::put_uvar(&mut buf, snapshot.store_window);
    wire::put_uvar(&mut buf, snapshot.store.len() as u64);
    for (at, message) in &snapshot.store {
        wire::put_uvar(&mut buf, *at);
        let frame = wire::encode(message);
        wire::put_uvar(&mut buf, frame.len() as u64);
        buf.put_slice(&frame);
    }
    wire::seal(buf)
}

/// Decodes a blob produced by [`encode_snapshot`].
///
/// # Errors
///
/// Any [`WireError`] on malformed input; decoding never panics.
pub fn decode_snapshot(blob: Bytes) -> Result<ProcessSnapshot<Bytes>, WireError> {
    if blob.is_empty() {
        return Err(WireError::Truncated);
    }
    if blob[0] != SNAPSHOT_VERSION {
        return Err(WireError::BadVersion(blob[0]));
    }
    let mut blob = wire::checksum_verified(&blob)?;
    blob.advance(1); // version, already checked
    let id = ProcessId::new(wire::get_uvar(&mut blob)? as usize);
    let r = wire::get_uvar(&mut blob)? as usize;
    let k = wire::get_uvar(&mut blob)? as usize;
    if blob.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    let set_id = blob.get_u128_le();
    let space = KeySpace::new(r, k).map_err(|e| WireError::BadKeys(e.to_string()))?;
    let keys = KeySet::from_set_id(space, set_id).map_err(|e| WireError::BadKeys(e.to_string()))?;
    if !blob.has_remaining() {
        return Err(WireError::Truncated);
    }
    let flags = blob.get_u8();
    let recent_window = if flags & 0b100 != 0 { Some(wire::get_uvar(&mut blob)?) } else { None };
    let config =
        // `trace_capacity` is a local observability knob, not protocol
        // state — it is not wire-encoded; a decoded endpoint starts with
        // tracing off until its host reconfigures it.
        PcbConfig {
            detect_instant: flags & 0b001 != 0,
            recent_window,
            dedup: flags & 0b010 != 0,
            trace_capacity: 0,
        };
    let seq = wire::get_uvar(&mut blob)?;
    let clock_len = wire::get_uvar(&mut blob)? as usize;
    if clock_len > blob.remaining() {
        // Each entry costs at least one byte; reject absurd lengths
        // before allocating.
        return Err(WireError::Truncated);
    }
    let mut entries = Vec::with_capacity(clock_len);
    for _ in 0..clock_len {
        entries.push(wire::get_uvar(&mut blob)?);
    }
    let clock = Timestamp::from_entries(entries);
    let seen_count = wire::get_uvar(&mut blob)? as usize;
    if seen_count > blob.remaining() {
        return Err(WireError::Truncated);
    }
    let mut seen = Vec::with_capacity(seen_count);
    for _ in 0..seen_count {
        let sender = ProcessId::new(wire::get_uvar(&mut blob)? as usize);
        let prefix = wire::get_uvar(&mut blob)?;
        let n_exc = wire::get_uvar(&mut blob)? as usize;
        if n_exc > blob.remaining() {
            return Err(WireError::Truncated);
        }
        let mut exceptions = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exceptions.push(wire::get_uvar(&mut blob)?);
        }
        seen.push((sender, prefix, exceptions));
    }
    let stats = ProcessStats {
        sent: wire::get_uvar(&mut blob)?,
        delivered: wire::get_uvar(&mut blob)?,
        duplicates: wire::get_uvar(&mut blob)?,
        instant_alerts: wire::get_uvar(&mut blob)?,
        recent_alerts: wire::get_uvar(&mut blob)?,
        max_pending: wire::get_uvar(&mut blob)? as usize,
    };
    let store_window = wire::get_uvar(&mut blob)?;
    let store_count = wire::get_uvar(&mut blob)? as usize;
    if store_count > blob.remaining() {
        return Err(WireError::Truncated);
    }
    let mut store = Vec::with_capacity(store_count);
    for _ in 0..store_count {
        let at = wire::get_uvar(&mut blob)?;
        let frame_len = wire::get_uvar(&mut blob)? as usize;
        if blob.remaining() < frame_len {
            return Err(WireError::Truncated);
        }
        let frame = blob.split_to(frame_len);
        store.push((at, wire::decode(frame)?));
    }
    Ok(ProcessSnapshot { id, keys, config, clock, seq, seen, stats, store_window, store })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::MessageStore;
    use crate::PcbProcess;
    use pcb_clock::{KeySet, KeySpace};

    fn space() -> KeySpace {
        KeySpace::new(8, 2).unwrap()
    }

    fn proc(id: usize, entries: &[usize]) -> PcbProcess<Bytes> {
        PcbProcess::new(ProcessId::new(id), KeySet::from_entries(space(), entries).unwrap())
    }

    fn populated() -> (PcbProcess<Bytes>, MessageStore<Bytes>) {
        let mut a = proc(0, &[0, 1]);
        let mut b = proc(1, &[2, 3]);
        let mut store: MessageStore<Bytes> = MessageStore::new(1_000);
        for i in 0..4u8 {
            let m = a.broadcast(Bytes::from(vec![i]));
            for d in b.on_receive(m, u64::from(i)) {
                store.insert(u64::from(i), d.message);
            }
        }
        for i in 0..3u8 {
            store.insert(10, b.broadcast(Bytes::from(vec![0x10 + i])));
        }
        (b, store)
    }

    #[test]
    fn snapshot_roundtrips_through_the_wire_codec() {
        let (b, store) = populated();
        let snap = b.snapshot(&store);
        let blob = encode_snapshot(&snap);
        let back = decode_snapshot(blob).unwrap();
        assert_eq!(back.id, snap.id);
        assert_eq!(back.keys, snap.keys);
        assert_eq!(back.clock, snap.clock);
        assert_eq!(back.seq, snap.seq);
        assert_eq!(back.seen, snap.seen);
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.store_window, snap.store_window);
        assert_eq!(back.store.len(), snap.store.len());
        for ((at_a, m_a), (at_b, m_b)) in snap.store.iter().zip(&back.store) {
            assert_eq!(at_a, at_b);
            assert_eq!(m_a.id(), m_b.id());
            assert_eq!(m_a.timestamp(), m_b.timestamp());
            assert_eq!(m_a.payload(), m_b.payload());
        }
    }

    #[test]
    fn restore_resumes_protocol_state() {
        let (b, store) = populated();
        let snap = b.snapshot(&store);
        let (restored, rstore) = PcbProcess::restore(snap);
        assert_eq!(restored.id(), b.id());
        assert_eq!(restored.clock().vector(), b.clock().vector());
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(rstore.len(), store.len());
        assert_eq!(restored.pending_len(), 0, "pending is not snapshotted");
        // Dedup state survives: a stored message replayed in is a duplicate.
        let mut restored = restored;
        let old = rstore.iter().next().unwrap().clone();
        assert!(restored.on_receive(old, 11).is_empty());
        assert_eq!(restored.stats().duplicates, b.stats().duplicates + 1);
    }

    #[test]
    fn replay_own_sends_advances_clock_and_seq() {
        let (mut b, store) = populated();
        let snap = b.snapshot(&store);
        // Two more sends after the snapshot; only the WAL seq survives.
        let durable_seq = b.broadcast(Bytes::new()).id().seq();
        let durable_seq = b.broadcast(Bytes::new()).id().seq().max(durable_seq);
        let (mut restored, _) = PcbProcess::restore(snap);
        assert_eq!(restored.replay_own_sends(durable_seq), 2);
        assert_eq!(restored.clock().vector(), b.clock().vector());
        assert_eq!(restored.stats().sent, b.stats().sent);
        // The next broadcast uses a fresh seq, never a pre-crash one.
        assert_eq!(restored.broadcast(Bytes::new()).id().seq(), durable_seq + 1);
        assert_eq!(restored.replay_own_sends(durable_seq), 0, "replay is idempotent");
    }

    #[test]
    fn snapshot_decoding_rejects_mutations() {
        let (b, store) = populated();
        let blob = encode_snapshot(&b.snapshot(&store));
        for i in (0..blob.len()).step_by(7) {
            let mut bytes = blob.to_vec();
            bytes[i] ^= 0x41;
            assert!(decode_snapshot(Bytes::from(bytes)).is_err(), "mutation at byte {i}");
        }
        for len in (0..blob.len()).step_by(11) {
            assert!(decode_snapshot(blob.slice(0..len)).is_err(), "truncation to {len}");
        }
    }
}
