//! Group membership with continuous joins and leaves.
//!
//! The probabilistic mechanism's headline property (paper §1, §2) is that
//! timestamps do not encode membership: a process joins by drawing a
//! random `set_id` — no global reconfiguration, no agreement, no resizing
//! of anyone's vector. [`Group`] packages that bookkeeping for population
//! construction and churn experiments; nothing in the ordering protocol
//! itself reads it.

use std::collections::BTreeMap;

use pcb_clock::{AssignmentError, AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProcessId};

/// A member's standing in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Participating: sends and receives.
    Alive,
    /// Departed (voluntarily or by crash); retained for id stability.
    Left,
}

/// Membership registry handing out identities and key sets.
///
/// ```
/// use pcb_broadcast::{Group};
/// use pcb_clock::{AssignmentPolicy, KeySpace};
/// let space = KeySpace::new(100, 4)?;
/// let mut group = Group::new(space, AssignmentPolicy::UniformRandom, 7);
/// let (alice, alice_keys) = group.join()?;
/// let (bob, _) = group.join()?;
/// assert_eq!(group.alive_count(), 2);
/// group.leave(alice);
/// assert_eq!(group.alive_count(), 1);
/// assert_eq!(alice_keys.len(), 4);
/// # let _ = bob;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Group {
    space: KeySpace,
    assigner: KeyAssigner,
    members: BTreeMap<ProcessId, (KeySet, MemberState)>,
    next_id: usize,
}

impl Group {
    /// Creates an empty group over the given key space.
    #[must_use]
    pub fn new(space: KeySpace, policy: AssignmentPolicy, seed: u64) -> Self {
        Self {
            space,
            assigner: KeyAssigner::new(space, policy, seed),
            members: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// The key space members draw from.
    #[must_use]
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// Admits a new member: allocates a fresh id and draws its key set.
    ///
    /// # Errors
    ///
    /// Propagates [`AssignmentError`] (only possible under the
    /// `DistinctRandom` policy once the space is exhausted).
    pub fn join(&mut self) -> Result<(ProcessId, KeySet), AssignmentError> {
        let keys = self.assigner.next_set()?;
        let id = ProcessId::new(self.next_id);
        self.next_id += 1;
        self.members.insert(id, (keys.clone(), MemberState::Alive));
        Ok((id, keys))
    }

    /// Marks a member as departed. Unknown ids are ignored (leave is
    /// idempotent and may race with crash detection).
    pub fn leave(&mut self, id: ProcessId) {
        if let Some((_, state)) = self.members.get_mut(&id) {
            *state = MemberState::Left;
        }
    }

    /// A member's key set, if it ever joined.
    #[must_use]
    pub fn keys_of(&self, id: ProcessId) -> Option<&KeySet> {
        self.members.get(&id).map(|(k, _)| k)
    }

    /// A member's state, if it ever joined.
    #[must_use]
    pub fn state_of(&self, id: ProcessId) -> Option<MemberState> {
        self.members.get(&id).map(|(_, s)| *s)
    }

    /// Iterates over currently alive members.
    pub fn alive(&self) -> impl Iterator<Item = (ProcessId, &KeySet)> {
        self.members
            .iter()
            .filter(|(_, (_, s))| *s == MemberState::Alive)
            .map(|(id, (k, _))| (*id, k))
    }

    /// Number of alive members.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive().count()
    }

    /// Total identities ever issued (alive + departed).
    #[must_use]
    pub fn total_issued(&self) -> usize {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> Group {
        Group::new(KeySpace::new(10, 3).unwrap(), AssignmentPolicy::UniformRandom, 1)
    }

    #[test]
    fn join_assigns_fresh_ids_and_valid_keys() {
        let mut g = group();
        let (a, ka) = g.join().unwrap();
        let (b, kb) = g.join().unwrap();
        assert_ne!(a, b);
        assert_eq!(ka.len(), 3);
        assert_eq!(kb.len(), 3);
        assert_eq!(g.keys_of(a), Some(&ka));
        assert_eq!(g.total_issued(), 2);
    }

    #[test]
    fn leave_is_idempotent_and_tolerates_unknown() {
        let mut g = group();
        let (a, _) = g.join().unwrap();
        g.leave(a);
        g.leave(a);
        g.leave(ProcessId::new(99));
        assert_eq!(g.state_of(a), Some(MemberState::Left));
        assert_eq!(g.state_of(ProcessId::new(99)), None);
        assert_eq!(g.alive_count(), 0);
    }

    #[test]
    fn churn_does_not_disturb_existing_keys() {
        // The crux of the paper's motivation: joins/leaves never force a
        // re-assignment of other members' entries.
        let mut g = group();
        let (a, ka) = g.join().unwrap();
        let (_b, _) = g.join().unwrap();
        for _ in 0..20 {
            let (id, _) = g.join().unwrap();
            g.leave(id);
        }
        assert_eq!(g.keys_of(a), Some(&ka), "a's keys survive churn untouched");
        assert_eq!(g.alive_count(), 2);
        assert_eq!(g.total_issued(), 22);
    }

    #[test]
    fn alive_iterates_only_alive() {
        let mut g = group();
        let (a, _) = g.join().unwrap();
        let (b, _) = g.join().unwrap();
        g.leave(a);
        let alive: Vec<ProcessId> = g.alive().map(|(id, _)| id).collect();
        assert_eq!(alive, vec![b]);
    }
}
