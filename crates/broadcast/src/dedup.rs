//! Bounded-memory duplicate suppression.
//!
//! The seed kept every [`MessageId`] ever seen in a `HashSet`, growing
//! without bound for the lifetime of the endpoint. Since sequence
//! numbers are per-sender and contiguous, the set compresses to a
//! per-sender *contiguous prefix* ("seen everything up to `n`") plus a
//! sparse exception set for out-of-order arrivals beyond the prefix.
//! Memory is `O(senders + gaps)`: an in-order stream from any number of
//! senders occupies one counter per sender, regardless of message count.

use std::collections::{BTreeSet, HashMap};

use pcb_clock::ProcessId;

use crate::message::MessageId;

/// Per-sender seen-window: ids `1..=prefix` plus `exceptions`.
#[derive(Debug, Clone, Default)]
struct SenderWindow {
    prefix: u64,
    exceptions: BTreeSet<u64>,
}

/// Compressed set of seen message ids.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    windows: HashMap<ProcessId, SenderWindow>,
}

impl DedupFilter {
    /// An empty filter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `id` as seen. Returns `true` if it was new, `false` if it
    /// was already recorded (a duplicate).
    pub fn insert(&mut self, id: MessageId) -> bool {
        let window = self.windows.entry(id.sender()).or_default();
        let seq = id.seq();
        if seq <= window.prefix || window.exceptions.contains(&seq) {
            return false;
        }
        if seq == window.prefix + 1 {
            window.prefix = seq;
            // Absorb exceptions that are now contiguous with the prefix.
            while window.exceptions.remove(&(window.prefix + 1)) {
                window.prefix += 1;
            }
        } else {
            window.exceptions.insert(seq);
        }
        true
    }

    /// Un-marks `id`, so a later arrival of the same id is treated as
    /// new again. Returns `true` if the id was recorded. Used when
    /// snapshotting: ids that are *pending* (received but not delivered)
    /// must not be claimed by the durable seen-set, or a crash between
    /// receipt and delivery would make them unrecoverable.
    pub fn remove(&mut self, id: MessageId) -> bool {
        let Some(window) = self.windows.get_mut(&id.sender()) else {
            return false;
        };
        let seq = id.seq();
        if seq > window.prefix {
            return window.exceptions.remove(&seq);
        }
        if seq == 0 {
            return false;
        }
        // Re-open a hole inside the contiguous prefix: everything after
        // `seq` that the prefix covered becomes an explicit exception.
        window.exceptions.extend(seq + 1..=window.prefix);
        window.prefix = seq - 1;
        true
    }

    /// Whether `id` has been seen.
    #[must_use]
    pub fn contains(&self, id: MessageId) -> bool {
        self.windows
            .get(&id.sender())
            .is_some_and(|w| id.seq() <= w.prefix || w.exceptions.contains(&id.seq()))
    }

    /// Enumerates every seen id (prefix ranges expanded), ordered by
    /// sender then sequence. The order is deterministic — these ids go
    /// out on the wire in sync probes, and identical endpoints must emit
    /// identical probes (the hash map's iteration order is seeded per
    /// process and must not leak into outputs). Time is proportional to
    /// the number of *messages*, memory stays proportional to the number
    /// of *senders and gaps*.
    pub fn iter(&self) -> impl Iterator<Item = MessageId> + '_ {
        let mut senders: Vec<_> = self.windows.iter().collect();
        senders.sort_by_key(|(&sender, _)| sender);
        senders.into_iter().flat_map(|(&sender, window)| {
            (1..=window.prefix)
                .chain(window.exceptions.iter().copied())
                .map(move |seq| MessageId::new(sender, seq))
        })
    }

    /// The compressed per-sender state `(sender, prefix, exceptions)`,
    /// sorted by sender — the filter's full contents in its native
    /// `O(senders + gaps)` representation, for durable snapshots.
    #[must_use]
    pub fn export_windows(&self) -> Vec<(ProcessId, u64, Vec<u64>)> {
        let mut out: Vec<_> = self
            .windows
            .iter()
            .map(|(&sender, w)| (sender, w.prefix, w.exceptions.iter().copied().collect()))
            .collect();
        out.sort_by_key(|(sender, _, _)| *sender);
        out
    }

    /// Rebuilds a filter from [`DedupFilter::export_windows`] output.
    #[must_use]
    pub fn from_windows(windows: impl IntoIterator<Item = (ProcessId, u64, Vec<u64>)>) -> Self {
        let mut filter = Self::new();
        for (sender, prefix, exceptions) in windows {
            filter.windows.insert(
                sender,
                SenderWindow { prefix, exceptions: exceptions.into_iter().collect() },
            );
        }
        filter
    }

    /// Number of senders tracked.
    #[must_use]
    pub fn sender_count(&self) -> usize {
        self.windows.len()
    }

    /// Number of out-of-order exceptions currently held — together with
    /// [`DedupFilter::sender_count`], the filter's true memory footprint.
    #[must_use]
    pub fn exception_count(&self) -> usize {
        self.windows.values().map(|w| w.exceptions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: usize, seq: u64) -> MessageId {
        MessageId::new(ProcessId::new(sender), seq)
    }

    #[test]
    fn in_order_stream_keeps_one_counter_per_sender() {
        let mut filter = DedupFilter::new();
        for sender in 0..4 {
            for seq in 1..=25_000u64 {
                assert!(filter.insert(id(sender, seq)));
            }
        }
        // 100_000 in-order messages: zero exceptions, four counters.
        assert_eq!(filter.sender_count(), 4);
        assert_eq!(filter.exception_count(), 0);
        assert!(!filter.insert(id(2, 17)), "old ids stay recorded");
        assert!(filter.contains(id(3, 25_000)));
        assert!(!filter.contains(id(3, 25_001)));
    }

    #[test]
    fn gaps_become_exceptions_and_heal() {
        let mut filter = DedupFilter::new();
        assert!(filter.insert(id(0, 1)));
        assert!(filter.insert(id(0, 4)));
        assert!(filter.insert(id(0, 3)));
        assert_eq!(filter.exception_count(), 2, "3 and 4 wait for 2");
        assert!(!filter.contains(id(0, 2)));
        assert!(filter.insert(id(0, 2)));
        assert_eq!(filter.exception_count(), 0, "prefix absorbed 2..=4");
        assert!(!filter.insert(id(0, 4)), "absorbed ids are duplicates");
    }

    #[test]
    fn iter_expands_prefix_and_exceptions() {
        let mut filter = DedupFilter::new();
        for seq in [1, 2, 5] {
            filter.insert(id(7, seq));
        }
        let mut seen: Vec<u64> = filter.iter().map(MessageId::seq).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 5]);
    }

    #[test]
    fn remove_reopens_holes_anywhere_in_the_window() {
        let mut filter = DedupFilter::new();
        for seq in [1, 2, 3, 6] {
            filter.insert(id(0, seq));
        }
        // Exception removal.
        assert!(filter.remove(id(0, 6)));
        assert!(!filter.contains(id(0, 6)));
        // Mid-prefix removal splits the prefix into exceptions.
        assert!(filter.remove(id(0, 2)));
        assert!(!filter.contains(id(0, 2)));
        assert!(filter.contains(id(0, 1)));
        assert!(filter.contains(id(0, 3)));
        // Removed ids insert as new; absorbing heals the prefix again.
        assert!(filter.insert(id(0, 2)));
        assert_eq!(filter.exception_count(), 0);
        // Unknown ids and unknown senders are no-ops.
        assert!(!filter.remove(id(0, 9)));
        assert!(!filter.remove(id(5, 1)));
    }

    #[test]
    fn duplicate_detection_across_senders_is_independent() {
        let mut filter = DedupFilter::new();
        assert!(filter.insert(id(0, 1)));
        assert!(filter.insert(id(1, 1)), "same seq, different sender");
        assert!(!filter.insert(id(0, 1)));
    }
}
