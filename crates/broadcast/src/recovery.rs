//! Anti-entropy recovery (paper §4.2).
//!
//! The paper *assumes* "a recovery procedure does exist (e.g.,
//! anti-entropy)" and contributes the detectors that decide when to run
//! it. This module supplies that procedure: every process keeps a
//! [`MessageStore`] of recently seen messages (gossip and UDP stacks
//! already do, §4.2.1); when a process suspects trouble — an Algorithm 4/5
//! alert, or a pending message stuck past the propagation window — it
//! sends a [`SyncRequest`] listing what it already has, and any peer
//! answers with the recent messages the requester is missing. Replaying
//! the response through `PcbProcess::on_receive` is idempotent thanks to
//! duplicate suppression.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;

use crate::message::{Message, MessageId};
use crate::wire::{DeltaDecoder, WireError};

/// Recovery-health counters shared by every layer that reports them.
///
/// The simulator's `RunMetrics` and the live runtime's `NodeStatus` used
/// to hand-mirror these fields; embedding one struct keeps the lists from
/// drifting, and [`Counters::merge`] is the single aggregation rule for
/// both sim replication pooling and cluster-wide status totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Anti-entropy sync probes issued.
    pub sync_requests: u64,
    /// Sync probes that reached a live, reachable peer and were served.
    pub sync_served: u64,
    /// Messages re-fetched through anti-entropy.
    pub refetched: u64,
    /// Durable snapshots taken.
    pub snapshots_taken: u64,
    /// Recoveries that resumed from a durable snapshot.
    pub snapshot_restores: u64,
}

impl Counters {
    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.sync_requests += other.sync_requests;
        self.sync_served += other.sync_served;
        self.refetched += other.refetched;
        self.snapshots_taken += other.snapshots_taken;
        self.snapshot_restores += other.snapshot_restores;
    }
}

/// Bounded store of recently seen messages, retained for `window` time
/// units, used to answer anti-entropy requests. Lookups by id are `O(1)`:
/// an id → absolute-position map rides alongside the deque, with a base
/// offset advanced as old entries are evicted from the front.
#[derive(Debug, Clone)]
pub struct MessageStore<P> {
    window: u64,
    entries: VecDeque<(u64, Message<P>)>,
    /// Absolute position (monotone since store creation) of each retained
    /// id; subtract `base` to index `entries`.
    index: HashMap<MessageId, u64>,
    base: u64,
    /// Per-sender reconstruction stamps for the v3 delta wire format:
    /// the store is the long-lived per-node receive state, so it is where
    /// delta chains are resolved (see [`MessageStore::decode_frame`]).
    codec: DeltaDecoder,
}

impl<P> MessageStore<P> {
    /// A store retaining messages for `window` time units (size it to a
    /// few propagation delays, like the Algorithm 5 list).
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self {
            window,
            entries: VecDeque::new(),
            index: HashMap::new(),
            base: 0,
            codec: DeltaDecoder::new(),
        }
    }

    /// The per-sender delta reconstruction state (for inspection).
    #[must_use]
    pub fn codec(&self) -> &DeltaDecoder {
        &self.codec
    }

    /// Exclusive access to the codec, for batched decode: the endpoint
    /// partitions the reconstruction stamps across sender shards
    /// ([`DeltaDecoder::partition`]) and absorbs them back after the
    /// parallel phase.
    pub fn codec_mut(&mut self) -> &mut DeltaDecoder {
        &mut self.codec
    }

    /// Drops every per-sender reconstruction stamp
    /// ([`DeltaDecoder::clear`]). Must be called when the store crosses a
    /// crash/restore boundary: a delta arriving after restore must fail
    /// with `MissingDeltaBase` (forcing an anti-entropy full-frame
    /// re-fetch) rather than silently reconstruct against a pre-crash
    /// base that no longer matches the sender's chain.
    pub fn reset_codec(&mut self) {
        self.codec.clear();
    }

    /// Records a message (own broadcasts *and* deliveries both belong
    /// here — a peer may be missing either). Idempotent by id: re-inserting
    /// a retained message (e.g. a re-fetched duplicate) is a no-op.
    pub fn insert(&mut self, now: u64, message: Message<P>) {
        self.evict(now);
        if self.index.contains_key(&message.id()) {
            return;
        }
        self.index.insert(message.id(), self.base + self.entries.len() as u64);
        self.entries.push_back((now, message));
    }

    /// Number of retained messages (after the last eviction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one message by id in `O(1)`.
    #[must_use]
    pub fn get(&self, id: MessageId) -> Option<&Message<P>> {
        let pos = *self.index.get(&id)?;
        self.entries.get((pos - self.base) as usize).map(|(_, m)| m)
    }

    /// Iterates over retained messages, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Message<P>> {
        self.entries.iter().map(|(_, m)| m)
    }

    /// Retained `(insert_time, message)` pairs, oldest first — the
    /// store's full state, for durable snapshots.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &Message<P>)> {
        self.entries.iter().map(|(t, m)| (*t, m))
    }

    /// The retention window this store was built with.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Rebuilds a store from snapshotted [`MessageStore::entries`] (which
    /// are in insertion order; the index is reconstructed).
    #[must_use]
    pub fn from_entries(window: u64, entries: impl IntoIterator<Item = (u64, Message<P>)>) -> Self {
        let mut store = Self::new(window);
        for (at, message) in entries {
            store.insert(at, message);
        }
        store
    }

    fn evict(&mut self, now: u64) {
        let horizon = now.saturating_sub(self.window);
        while self.entries.front().is_some_and(|(t, _)| *t < horizon) {
            if let Some((_, m)) = self.entries.pop_front() {
                self.index.remove(&m.id());
                self.base += 1;
            }
        }
    }
}

/// Anti-entropy request: "here is what I recently saw; send me the rest".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRequest {
    /// Message ids the requester already holds (delivered or pending).
    pub known: Vec<MessageId>,
}

impl SyncRequest {
    /// Builds a request from an iterator of known ids.
    #[must_use]
    pub fn new(known: impl IntoIterator<Item = MessageId>) -> Self {
        Self { known: known.into_iter().collect() }
    }
}

/// Anti-entropy response: the recent messages the requester was missing.
#[derive(Debug, Clone)]
pub struct SyncResponse<P> {
    /// Missing messages, oldest first; replay them through
    /// `PcbProcess::on_receive`.
    pub messages: Vec<Message<P>>,
}

impl MessageStore<Bytes> {
    /// Decodes a wire frame (v2, v3 full, or v3 delta) against this
    /// store's per-sender reconstruction stamps and retains the decoded
    /// message for anti-entropy, returning it for delivery.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]. [`WireError::MissingDeltaBase`] means the store
    /// has no base for the delta chain (late joiner, or the chain head
    /// was lost) — issue a sync request; peers re-serve messages as
    /// standalone full frames.
    pub fn decode_frame(&mut self, now: u64, frame: Bytes) -> Result<Message<Bytes>, WireError> {
        let message = self.codec.decode(frame)?;
        self.insert(now, message.clone());
        Ok(message)
    }
}

impl<P: Clone> MessageStore<P> {
    /// Answers a [`SyncRequest`] from this store.
    #[must_use]
    pub fn handle_sync(&self, request: &SyncRequest) -> SyncResponse<P> {
        let known: HashSet<MessageId> = request.known.iter().copied().collect();
        SyncResponse {
            messages: self.iter().filter(|m| !known.contains(&m.id())).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PcbProcess, ProcessStats};
    use pcb_clock::{KeySet, KeySpace, ProcessId};

    fn proc(id: usize, entries: &[usize]) -> PcbProcess<&'static str> {
        let space = KeySpace::new(4, 2).unwrap();
        PcbProcess::new(ProcessId::new(id), KeySet::from_entries(space, entries).unwrap())
    }

    #[test]
    fn store_insert_get_evict() {
        let mut a = proc(0, &[0, 1]);
        let mut store: MessageStore<&'static str> = MessageStore::new(10);
        let m1 = a.broadcast("one");
        let m2 = a.broadcast("two");
        store.insert(0, m1.clone());
        store.insert(5, m2.clone());
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(m1.id()).unwrap().payload(), &"one");
        assert!(store.get(MessageId::new(ProcessId::new(9), 1)).is_none());
        // t = 20: the t=0 entry falls outside the window.
        store.insert(20, a.broadcast("three"));
        assert!(store.get(m1.id()).is_none());
        assert!(store.get(m2.id()).is_none(), "t=5 also expired at t=20");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn insert_is_idempotent_and_index_tracks_eviction() {
        let mut a = proc(0, &[0, 1]);
        let mut store: MessageStore<&'static str> = MessageStore::new(10);
        let m1 = a.broadcast("one");
        store.insert(0, m1.clone());
        store.insert(3, m1.clone());
        assert_eq!(store.len(), 1, "re-inserting a retained id is a no-op");
        // Push the window forward so m1 evicts; the index must follow and
        // positions of later entries must stay correct.
        let m2 = a.broadcast("two");
        let m3 = a.broadcast("three");
        store.insert(5, m2.clone());
        store.insert(20, m3.clone());
        assert!(store.get(m1.id()).is_none());
        assert_eq!(store.get(m2.id()).map(Message::id), None, "t=5 expired at t=20");
        assert_eq!(store.get(m3.id()).unwrap().payload(), &"three");
        // An evicted id may be re-inserted (e.g. re-fetched via sync).
        store.insert(21, m1.clone());
        assert_eq!(store.get(m1.id()).unwrap().payload(), &"one");
        let roundtrip = MessageStore::from_entries(
            store.window(),
            store.entries().map(|(t, m)| (t, m.clone())).collect::<Vec<_>>(),
        );
        assert_eq!(roundtrip.len(), store.len());
        assert_eq!(roundtrip.get(m1.id()).unwrap().payload(), &"one");
    }

    #[test]
    fn sync_returns_only_missing() {
        let mut a = proc(0, &[0, 1]);
        let mut store = MessageStore::new(1000);
        let m1 = a.broadcast("one");
        let m2 = a.broadcast("two");
        store.insert(0, m1.clone());
        store.insert(1, m2.clone());

        let resp = store.handle_sync(&SyncRequest::new([m1.id()]));
        assert_eq!(resp.messages.len(), 1);
        assert_eq!(resp.messages[0].id(), m2.id());

        let all = store.handle_sync(&SyncRequest::new([]));
        assert_eq!(all.messages.len(), 2);
        let none = store.handle_sync(&SyncRequest::new([m1.id(), m2.id()]));
        assert!(none.messages.is_empty());
    }

    #[test]
    fn lost_message_recovered_by_anti_entropy() {
        // p_a broadcasts m1 then m2. p_b gets both (and keeps a store).
        // p_k loses m1: m2 blocks. Anti-entropy from p_b unblocks it.
        let mut p_a = proc(0, &[0, 1]);
        let mut p_b = proc(1, &[1, 2]);
        let mut p_k = proc(2, &[2, 3]);
        let mut b_store: MessageStore<&'static str> = MessageStore::new(1000);

        let m1 = p_a.broadcast("m1");
        let m2 = p_a.broadcast("m2");
        for d in p_b.on_receive(m1.clone(), 0).into_iter().chain(p_b.on_receive(m2.clone(), 1)) {
            b_store.insert(1, d.message);
        }

        // m1 lost on the way to p_k; m2 arrives and blocks.
        assert!(p_k.on_receive(m2.clone(), 2).is_empty());
        assert_eq!(p_k.pending_len(), 1);
        assert!(p_k.oldest_pending_age(60).is_some_and(|age| age >= 50));

        // Stuck past the propagation window: ask p_b for what we miss.
        let request = SyncRequest::new(p_k.seen_ids());
        let response = b_store.handle_sync(&request);
        assert_eq!(response.messages.len(), 1, "only m1 is missing");

        let mut delivered = Vec::new();
        for m in response.messages {
            delivered.extend(p_k.on_receive(m, 61));
        }
        let order: Vec<&str> = delivered.iter().map(|d| *d.message.payload()).collect();
        assert_eq!(order, ["m1", "m2"], "replay flushes the blocked message too");
        assert_eq!(p_k.pending_len(), 0);
    }

    #[test]
    fn replaying_a_sync_response_is_idempotent() {
        let mut p_a = proc(0, &[0, 1]);
        let mut p_k = proc(2, &[2, 3]);
        let mut store = MessageStore::new(1000);
        let m1 = p_a.broadcast("m1");
        store.insert(0, m1.clone());

        assert_eq!(p_k.on_receive(m1, 0).len(), 1);
        // A redundant sync (e.g. two peers answered) delivers nothing new.
        let resp = store.handle_sync(&SyncRequest::new([]));
        let mut extra = 0;
        for m in resp.messages {
            extra += p_k.on_receive(m, 1).len();
        }
        assert_eq!(extra, 0);
        let ProcessStats { duplicates, delivered, .. } = p_k.stats();
        assert_eq!(duplicates, 1);
        assert_eq!(delivered, 1);
    }

    #[test]
    fn decode_frame_feeds_the_store_and_the_delta_chain() {
        use crate::wire::{self, DeltaEncoder};
        use bytes::Bytes;

        let space = KeySpace::new(8, 2).unwrap();
        let mut sender: PcbProcess<Bytes> =
            PcbProcess::new(ProcessId::new(0), KeySet::from_entries(space, &[1, 3]).unwrap());
        let msgs: Vec<_> =
            (0..6u64).map(|i| sender.broadcast(Bytes::from(i.to_be_bytes().to_vec()))).collect();
        let mut encoder = DeltaEncoder::new(u64::MAX); // one full, then deltas

        let mut store: MessageStore<Bytes> = MessageStore::new(1000);
        let frames: Vec<Bytes> = msgs.iter().map(|m| encoder.encode(m)).collect();

        // The store misses the chain head: the first delta names its base.
        match store.decode_frame(0, frames[1].clone()) {
            Err(WireError::MissingDeltaBase { sender, base_seq }) => {
                assert_eq!((sender, base_seq), (0, 1));
            }
            other => panic!("expected MissingDeltaBase, got {other:?}"),
        }
        assert!(store.is_empty(), "a refused frame must not touch the store");

        // Refetch the full frame (what a sync peer re-serves), then the
        // rest of the chain decodes and lands in the store.
        store.decode_frame(0, wire::encode_full(&msgs[0])).unwrap();
        for (t, frame) in frames.iter().enumerate().skip(1) {
            let m = store.decode_frame(t as u64, frame.clone()).unwrap();
            assert_eq!(wire::encode(&m), wire::encode(&msgs[t]));
        }
        assert_eq!(store.len(), msgs.len());
        assert_eq!(store.codec().tracked_senders(), 1);
        assert_eq!(store.get(msgs[5].id()).unwrap().timestamp(), msgs[5].timestamp());
    }
}
