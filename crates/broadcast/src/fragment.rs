//! MTU-aware datagram fragmentation for wire frames.
//!
//! UDP transports cannot assume a frame fits one datagram: a v3 full
//! frame carries all `R` timestamp entries plus the payload, and an
//! anti-entropy `SyncResponse` ships many frames at once. This module
//! splits an opaque byte blob into self-describing, individually
//! checksummed datagrams and reassembles them on the far side:
//!
//! ```text
//! u8   version (= 1)
//! uvar frame id      -- sender-local, monotone per (sender, receiver)
//! uvar fragment index
//! uvar fragment count
//! uvar payload length, payload bytes   -- this fragment's slice
//! u64  FNV-1a checksum (LE)            -- over every preceding byte
//! ```
//!
//! The checksum makes decoding *total*: arbitrary or truncated bytes
//! yield a [`FragmentError`], never a panic and never a mis-decoded
//! frame — corruption at the datagram layer is indistinguishable from
//! loss, and the §4.2 anti-entropy path re-fetches whatever the frame
//! carried. Fragment ids are only unique per sender, so a receiver keeps
//! one [`Reassembler`] per peer (the UDP transport does exactly that).
//!
//! Reassembly state is bounded on both axes: a partial frame whose last
//! fragment never arrives is evicted after a timeout, and the partial
//! table itself is capped (oldest evicted first), so a hostile or
//! severely lossy peer cannot grow memory without bound.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::{checksum_verified, get_uvar, put_uvar, seal, WireError};

/// Datagram-layer format version.
const FRAG_VERSION: u8 = 1;

/// Smallest MTU the fragmenter accepts: header worst case plus room for
/// at least a few payload bytes per datagram.
pub const MIN_MTU: usize = 64;

/// Conservative localhost/ethernet default (IPv6 minimum link MTU minus
/// IP + UDP headers, rounded down).
pub const DEFAULT_MTU: usize = 1400;

/// Hard cap on fragments per frame (with [`DEFAULT_MTU`] this bounds a
/// frame at ~1.4 MB — far above any wire frame or sync batch we ship).
pub const MAX_FRAGMENTS: u64 = 1024;

/// Worst-case header + trailer bytes of one datagram: version byte,
/// three 10-byte uvars (frame id, index, count), a 5-byte length uvar,
/// and the 8-byte checksum.
const HEADER_WORST_CASE: usize = 1 + 10 + 10 + 10 + 5 + 8;

/// Errors decoding or assembling datagrams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// Truncated or corrupted datagram (failed checksum, bad varint).
    Wire(WireError),
    /// Unknown datagram version byte.
    BadVersion(u8),
    /// Structurally invalid header: zero count, index out of range, or a
    /// count disagreeing with earlier fragments of the same frame.
    BadHeader,
    /// A frame would need more than [`MAX_FRAGMENTS`] datagrams.
    TooManyFragments {
        /// Fragments the frame would need.
        needed: u64,
    },
    /// `mtu` below [`MIN_MTU`].
    MtuTooSmall {
        /// The rejected value.
        mtu: usize,
    },
}

impl From<WireError> for FragmentError {
    fn from(e: WireError) -> Self {
        FragmentError::Wire(e)
    }
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::Wire(e) => write!(f, "datagram decode: {e:?}"),
            FragmentError::BadVersion(v) => write!(f, "unknown datagram version {v}"),
            FragmentError::BadHeader => write!(f, "inconsistent fragment header"),
            FragmentError::TooManyFragments { needed } => {
                write!(f, "frame needs {needed} fragments (cap {MAX_FRAGMENTS})")
            }
            FragmentError::MtuTooSmall { mtu } => write!(f, "mtu {mtu} below minimum {MIN_MTU}"),
        }
    }
}

impl std::error::Error for FragmentError {}

/// One decoded datagram header plus its payload slice.
#[derive(Debug, Clone)]
struct Datagram {
    frame_id: u64,
    index: u64,
    count: u64,
    payload: Bytes,
}

fn encode_one(frame_id: u64, index: u64, count: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_WORST_CASE + payload.len());
    buf.put_u8(FRAG_VERSION);
    put_uvar(&mut buf, frame_id);
    put_uvar(&mut buf, index);
    put_uvar(&mut buf, count);
    put_uvar(&mut buf, payload.len() as u64);
    buf.put_slice(payload);
    seal(buf)
}

fn decode_one(datagram: &Bytes) -> Result<Datagram, FragmentError> {
    let mut body = checksum_verified(datagram)?;
    if body.remaining() < 1 {
        return Err(WireError::Truncated.into());
    }
    let version = body.get_u8();
    if version != FRAG_VERSION {
        return Err(FragmentError::BadVersion(version));
    }
    let frame_id = get_uvar(&mut body)?;
    let index = get_uvar(&mut body)?;
    let count = get_uvar(&mut body)?;
    let len = get_uvar(&mut body)? as usize;
    if body.remaining() < len {
        return Err(WireError::Truncated.into());
    }
    if count == 0 || count > MAX_FRAGMENTS || index >= count {
        return Err(FragmentError::BadHeader);
    }
    let payload = body.split_to(len);
    Ok(Datagram { frame_id, index, count, payload })
}

/// Splits `frame` into datagrams of at most `mtu` bytes each, tagged
/// with the caller's `frame_id` (must be unique per sender while the
/// frame can still be in flight — a monotone counter is the easy way).
///
/// A frame that fits yields exactly one datagram; the empty frame yields
/// one empty-payload datagram so presence survives the trip.
///
/// # Errors
///
/// [`FragmentError::MtuTooSmall`] below [`MIN_MTU`];
/// [`FragmentError::TooManyFragments`] if the frame cannot fit the cap.
pub fn fragment(frame_id: u64, frame: &Bytes, mtu: usize) -> Result<Vec<Bytes>, FragmentError> {
    if mtu < MIN_MTU {
        return Err(FragmentError::MtuTooSmall { mtu });
    }
    let budget = mtu - HEADER_WORST_CASE;
    let count = frame.len().div_ceil(budget).max(1) as u64;
    if count > MAX_FRAGMENTS {
        return Err(FragmentError::TooManyFragments { needed: count });
    }
    let mut out = Vec::with_capacity(count as usize);
    for index in 0..count {
        let start = index as usize * budget;
        let end = (start + budget).min(frame.len());
        out.push(encode_one(frame_id, index, count, &frame[start..end]));
    }
    Ok(out)
}

/// In-progress frame: which fragments arrived and their payloads.
#[derive(Debug)]
struct Partial {
    first_seen_us: u64,
    count: u64,
    have: u64,
    slots: Vec<Option<Bytes>>,
}

/// Per-peer reassembly buffer: feed datagrams in any order (duplicated,
/// reordered, interleaved across frames) and get whole frames back.
#[derive(Debug)]
pub struct Reassembler {
    timeout_us: u64,
    max_partials: usize,
    partials: HashMap<u64, Partial>,
}

impl Reassembler {
    /// `timeout_us` bounds how long an incomplete frame is kept waiting
    /// for its missing fragments; `max_partials` caps concurrent
    /// incomplete frames (oldest evicted first).
    #[must_use]
    pub fn new(timeout_us: u64, max_partials: usize) -> Self {
        Self {
            timeout_us: timeout_us.max(1),
            max_partials: max_partials.max(1),
            partials: HashMap::new(),
        }
    }

    /// Accepts one datagram at `now_us`; returns the whole frame when
    /// this datagram completes it. Duplicates are ignored; a datagram
    /// whose header disagrees with earlier fragments of the same frame
    /// id resets that frame (the old partial was stale or corrupt).
    ///
    /// # Errors
    ///
    /// [`FragmentError`] for undecodable bytes; reassembly state is
    /// untouched in that case, exactly as if the datagram were lost.
    pub fn accept(
        &mut self,
        now_us: u64,
        datagram: &Bytes,
    ) -> Result<Option<Bytes>, FragmentError> {
        let d = decode_one(datagram)?;
        self.evict(now_us);
        if d.count == 1 {
            // Single-datagram fast path: no state to keep.
            self.partials.remove(&d.frame_id);
            return Ok(Some(d.payload));
        }
        let partial = self.partials.entry(d.frame_id).or_insert_with(|| Partial {
            first_seen_us: now_us,
            count: d.count,
            have: 0,
            slots: vec![None; d.count as usize],
        });
        if partial.count != d.count {
            // A frame id wrapped onto a stale partial: start over.
            *partial = Partial {
                first_seen_us: now_us,
                count: d.count,
                have: 0,
                slots: vec![None; d.count as usize],
            };
        }
        let slot = &mut partial.slots[d.index as usize];
        if slot.is_none() {
            *slot = Some(d.payload);
            partial.have += 1;
        }
        if partial.have < partial.count {
            return Ok(None);
        }
        let partial = self.partials.remove(&d.frame_id).expect("just completed");
        let total: usize = partial.slots.iter().map(|s| s.as_ref().map_or(0, Bytes::len)).sum();
        let mut frame = BytesMut::with_capacity(total);
        for slot in partial.slots {
            frame.put_slice(&slot.expect("complete partial has every slot"));
        }
        Ok(Some(frame.freeze()))
    }

    /// Incomplete frames currently buffered.
    #[must_use]
    pub fn partials(&self) -> usize {
        self.partials.len()
    }

    /// Drops timed-out partials, then enforces the table cap.
    fn evict(&mut self, now_us: u64) {
        let timeout = self.timeout_us;
        self.partials.retain(|_, p| now_us.saturating_sub(p.first_seen_us) < timeout);
        while self.partials.len() >= self.max_partials {
            let oldest = self
                .partials
                .iter()
                .min_by_key(|(id, p)| (p.first_seen_us, **id))
                .map(|(id, _)| *id)
                .expect("non-empty over cap");
            self.partials.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn round_trip_in_order() {
        let frame = blob(10_000);
        let datagrams = fragment(7, &frame, DEFAULT_MTU).unwrap();
        assert!(datagrams.len() > 1);
        assert!(datagrams.iter().all(|d| d.len() <= DEFAULT_MTU));
        let mut r = Reassembler::new(1_000_000, 16);
        let mut got = None;
        for d in &datagrams {
            if let Some(frame) = r.accept(0, d).unwrap() {
                got = Some(frame);
            }
        }
        assert_eq!(got.unwrap(), frame);
        assert_eq!(r.partials(), 0);
    }

    #[test]
    fn round_trip_reordered_and_duplicated() {
        let frame = blob(5_000);
        let mut datagrams = fragment(3, &frame, 256).unwrap();
        datagrams.reverse();
        let dup = datagrams[1].clone();
        datagrams.insert(3, dup);
        let mut r = Reassembler::new(1_000_000, 16);
        let mut done = Vec::new();
        for d in &datagrams {
            if let Some(frame) = r.accept(0, d).unwrap() {
                done.push(frame);
            }
        }
        assert_eq!(done.len(), 1, "duplicates complete a frame only once");
        assert_eq!(done[0], frame);
    }

    #[test]
    fn mtu_boundary_golden() {
        // Golden: payload budget for the default MTU, and the exact
        // fragment counts at the boundary. A change to the header layout
        // must show up here deliberately.
        let budget = DEFAULT_MTU - HEADER_WORST_CASE;
        assert_eq!(budget, 1356);
        for (len, want) in [
            (0usize, 1usize),
            (1, 1),
            (budget, 1),
            (budget + 1, 2),
            (2 * budget, 2),
            (2 * budget + 1, 3),
        ] {
            let datagrams = fragment(1, &blob(len), DEFAULT_MTU).unwrap();
            assert_eq!(datagrams.len(), want, "len={len}");
            assert!(datagrams.iter().all(|d| d.len() <= DEFAULT_MTU), "len={len}");
        }
    }

    #[test]
    fn truncated_and_corrupted_datagrams_error_never_panic() {
        let frame = blob(4_000);
        let datagrams = fragment(9, &frame, 512).unwrap();
        let mut r = Reassembler::new(1_000_000, 16);
        for d in &datagrams {
            // Every truncation of every datagram must fail cleanly.
            for cut in 0..d.len() {
                let t = d.slice(0..cut);
                assert!(r.accept(0, &t).is_err(), "cut={cut}");
            }
            // Every single-byte corruption must be caught by the checksum
            // (or a structural error) — never mis-decoded.
            for pos in 0..d.len() {
                let mut bytes = d.to_vec();
                bytes[pos] ^= 0x5a;
                assert!(r.accept(0, &Bytes::from(bytes)).is_err(), "pos={pos}");
            }
        }
        // The pristine datagrams still assemble afterwards.
        let mut got = None;
        for d in &datagrams {
            if let Some(f) = r.accept(0, d).unwrap() {
                got = Some(f);
            }
        }
        assert_eq!(got.unwrap(), frame);
    }

    #[test]
    fn stale_partials_time_out_and_table_is_capped() {
        let mut r = Reassembler::new(1_000, 4);
        // Feed first-of-two fragments for many distinct frames.
        for id in 0..10u64 {
            let datagrams = fragment(id, &blob(3_000), 1400).unwrap();
            assert!(r.accept(id, &datagrams[0]).unwrap().is_none());
            assert!(r.partials() <= 4, "cap enforced");
        }
        // Time passes; everything below the timeout horizon is dropped.
        let datagrams = fragment(99, &blob(3_000), 1400).unwrap();
        assert!(r.accept(5_000, &datagrams[0]).unwrap().is_none());
        assert_eq!(r.partials(), 1, "only the fresh partial survives");
    }

    #[test]
    fn mtu_and_fragment_caps_are_enforced() {
        assert!(matches!(
            fragment(0, &blob(10), MIN_MTU - 1),
            Err(FragmentError::MtuTooSmall { .. })
        ));
        let budget = MIN_MTU - HEADER_WORST_CASE;
        let too_big = blob((MAX_FRAGMENTS as usize + 1) * budget);
        assert!(matches!(
            fragment(0, &too_big, MIN_MTU),
            Err(FragmentError::TooManyFragments { .. })
        ));
    }

    #[test]
    fn empty_frame_survives() {
        let datagrams = fragment(0, &Bytes::new(), DEFAULT_MTU).unwrap();
        assert_eq!(datagrams.len(), 1);
        let mut r = Reassembler::new(1_000, 4);
        assert_eq!(r.accept(0, &datagrams[0]).unwrap().unwrap(), Bytes::new());
    }
}
