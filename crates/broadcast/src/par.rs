//! Persistent worker pool for batched endpoint phases.
//!
//! [`Endpoint::handle_batch`](crate::Endpoint::handle_batch) runs its
//! read-only phases — wire decode sharded by sender, deliverability
//! pre-scans against a clock snapshot — on worker threads, then applies
//! the results on the calling thread in input order. Those phases fire
//! once per *batch*, so spawning threads per call (as
//! `std::thread::scope` would) costs more than the work itself; this
//! pool keeps its workers parked on channels between batches instead.
//!
//! Determinism: jobs are distributed round-robin by index and results
//! are re-assembled **in job-index order**, so the output is
//! byte-identical at any worker count — including zero workers, where
//! everything runs inline on the caller. Jobs must therefore be pure
//! functions of their inputs, never of scheduling.

use std::fmt;
use std::sync::mpsc;
use std::thread;

/// A job shipped to a worker: runs once, sends its result back through
/// a channel it captured.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of parked worker threads.
pub struct BatchPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl BatchPool {
    /// Spawns `workers` parked threads. Zero workers is a valid
    /// degenerate pool: [`BatchPool::run`] then executes inline.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let handle = thread::Builder::new()
                .name(format!("pcb-batch-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn batch worker");
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs every job and returns the results **in job order**,
    /// regardless of which worker ran what. With no workers (or a single
    /// job) everything runs inline on the caller.
    ///
    /// # Panics
    ///
    /// Panics if a job panicked on a worker (the result never arrives).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.senders.is_empty() || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let expected = jobs.len();
        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            let wrapped: Job = Box::new(move || {
                let _ = tx.send((index, job()));
            });
            self.senders[index % self.senders.len()].send(wrapped).expect("batch worker alive");
        }
        drop(result_tx);
        let mut results: Vec<(usize, T)> = result_rx.iter().collect();
        assert_eq!(results.len(), expected, "a batch job panicked on a worker");
        results.sort_unstable_by_key(|(index, _)| *index);
        results.into_iter().map(|(_, result)| result).collect()
    }
}

impl fmt::Debug for BatchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchPool").field("workers", &self.handles.len()).finish()
    }
}

impl Drop for BatchPool {
    fn drop(&mut self) {
        // Disconnect the job channels so the workers' `recv` loops end,
        // then join to avoid leaking threads past the endpoint.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        let pool = BatchPool::new(3);
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        assert_eq!(pool.run(jobs), (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_runs_inline() {
        let pool = BatchPool::new(0);
        assert_eq!(pool.workers(), 0);
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = BatchPool::new(2);
        for round in 0..10usize {
            let jobs: Vec<_> = (0..8usize).map(|i| move || round * 100 + i).collect();
            let out = pool.run(jobs);
            assert_eq!(out, (0..8usize).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let pool = BatchPool::new(2);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }
}
