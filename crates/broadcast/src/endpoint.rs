//! Sans-IO endpoint state machine: the *entire* per-process protocol
//! behind one pure, time-injected function.
//!
//! [`Endpoint`] owns everything a correct process must do — Algorithms
//! 1–5 via [`PcbProcess`], duplicate suppression, the §4.2 recovery /
//! anti-entropy driver (stale-pending probe, quiescence probe with
//! capped exponential backoff, sync timeout), the anti-entropy
//! [`MessageStore`], and crash-durable snapshot/restore. It contains no
//! threads, channels, sockets, or wall clocks: every stimulus arrives as
//! an [`Input`] with an explicit `now_us` timestamp, and every effect
//! leaves as an [`Output`] the caller must route. The same state machine
//! therefore runs unchanged under
//!
//! * the **discrete-event simulator** (`pcb-sim`), which schedules the
//!   outputs as virtual-time events and checks them against the exact
//!   causal oracle, and
//! * the **threaded live runtime** (`pcb-runtime`), which routes them
//!   over real channels on wall-clock time.
//!
//! Because both shells drive this one type, the chaos engine and the
//! exact checker certify the code that serves live traffic — not a
//! simulator-private reimplementation of it.
//!
//! # Time
//!
//! All times are **microseconds** on whatever monotone clock the shell
//! chooses (virtual time in the simulator, time since an epoch in the
//! live runtime). The unit is in every name (`now_us`,
//! [`RecoveryTimingUs`]); shells convert exactly once, at the boundary.
//!
//! # Driving the machine
//!
//! ```
//! use pcb_broadcast::endpoint::{Endpoint, Input, Output, RecoveryTimingUs};
//! use pcb_broadcast::PcbConfig;
//! use pcb_clock::{KeySet, KeySpace, ProcessId};
//!
//! let space = KeySpace::new(4, 2)?;
//! let timing = Some(RecoveryTimingUs::default());
//! let mut a = Endpoint::new(
//!     ProcessId::new(0),
//!     KeySet::from_entries(space, &[0, 1])?,
//!     PcbConfig::default(),
//!     timing,
//! );
//! let mut b = Endpoint::new(
//!     ProcessId::new(1),
//!     KeySet::from_entries(space, &[1, 2])?,
//!     PcbConfig::default(),
//!     timing,
//! );
//!
//! // Shell's job: route outputs. A SendFrame from `a` becomes a
//! // FrameReceived at `b` whenever the transport decides it arrives.
//! let mut frame = None;
//! for out in a.handle(Input::Broadcast("hi"), 1_000) {
//!     if let Output::SendFrame(m) = out {
//!         frame = Some(m);
//!     }
//! }
//! let outs = b.handle(Input::FrameReceived(frame.unwrap()), 2_000);
//! assert!(matches!(outs[0], Output::Deliver(ref d) if *d.message.payload() == "hi"));
//! # Ok::<(), pcb_clock::KeyError>(())
//! ```

use std::sync::Arc;

use bytes::Bytes;
use pcb_clock::{Gap, KeySet, ProcessId};
use pcb_telemetry::{TraceEvent, TraceRecord, Tracer};

use crate::discipline::{Discipline, ProbDiscipline};
use crate::message::{Message, MessageId};
use crate::par::BatchPool;
use crate::pending::WakeupStats;
use crate::process::{Delivery, PcbConfig, PcbProcess, ProcessStats};
use crate::recovery::{Counters, MessageStore, SyncRequest};
use crate::snapshot::ProcessSnapshot;
use crate::wire::{peek_sender, WireError};

/// Store retention when no recovery timing is configured (5 s).
const DEFAULT_STORE_WINDOW_US: u64 = 5_000_000;

/// Consecutive unanswered sync probes before the endpoint reports
/// [`EndpointStatus::peer_unreachable`]. Probing continues — an
/// unreachable verdict is a health signal for operators (and the daemon
/// `status` RPC), not a reason to stop trying to converge.
pub const UNREACHABLE_AFTER: u32 = 5;

/// Recovery/anti-entropy timing, **all fields in microseconds** of the
/// shell's monotone clock. `None` at [`Endpoint::new`] disables the
/// whole §4.2 driver (no probes, no snapshots, no tick chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTimingUs {
    /// A pending message older than this (or an idle spell this long)
    /// triggers an anti-entropy probe.
    pub stale_after_us: u64,
    /// Cadence of the [`Output::ScheduleTick`] chain — how often the
    /// shell should feed [`Input::Tick`] back in.
    pub poll_every_us: u64,
    /// How long delivered messages stay re-fetchable in the store.
    pub store_window_us: u64,
    /// Cadence of durable snapshots.
    pub snapshot_every_us: u64,
    /// How long an unanswered sync request stays in flight before the
    /// endpoint may probe again.
    pub sync_timeout_us: u64,
}

impl Default for RecoveryTimingUs {
    /// Mirrors the live runtime's `RecoveryConfig` defaults.
    fn default() -> Self {
        Self {
            stale_after_us: 100_000,
            poll_every_us: 25_000,
            store_window_us: DEFAULT_STORE_WINDOW_US,
            snapshot_every_us: 250_000,
            sync_timeout_us: 400_000,
        }
    }
}

/// Everything that can happen *to* an endpoint. Shells translate their
/// transport/timer/operator events into exactly these.
#[derive(Debug, Clone)]
pub enum Input<P> {
    /// A broadcast frame arrived from the transport.
    FrameReceived(Message<P>),
    /// A peer asked for everything we have that it has not seen.
    SyncRequest {
        /// The requesting process (route the reply back to it).
        from: ProcessId,
        /// Message ids the requester already has.
        known: Vec<MessageId>,
    },
    /// A peer answered our [`Output::RequestSync`].
    SyncResponse(Vec<Message<P>>),
    /// Timer fired (the shell's answer to [`Output::ScheduleTick`]).
    Tick,
    /// The application wants to broadcast `P`.
    Broadcast(P),
    /// The process crashed: volatile state is lost, only the last
    /// durable snapshot and the send WAL survive.
    Crash,
    /// The operator restarted the process; recover from the snapshot.
    Restore,
}

/// Everything an endpoint wants *done*. Pure data — the shell routes
/// each one (or deliberately ignores it, e.g. a thread-based shell that
/// has its own timer needs no [`Output::ScheduleTick`]).
#[derive(Debug, Clone)]
pub enum Output<P> {
    /// Hand this message to the application (already inserted into the
    /// endpoint's own [`MessageStore`] — shells must not buffer it
    /// again).
    Deliver(Delivery<P>),
    /// Broadcast this frame to every peer.
    SendFrame(Message<P>),
    /// Ask a peer for anything not in `known`. Peer choice is the
    /// shell's (the live router rotates; the simulator rotates
    /// deterministically).
    RequestSync {
        /// Every message id this endpoint already has.
        known: Vec<MessageId>,
    },
    /// Unicast answer to an [`Input::SyncRequest`].
    SyncReply {
        /// The requester.
        to: ProcessId,
        /// Messages it was missing.
        messages: Vec<Message<P>>,
    },
    /// Feed [`Input::Tick`] back at (or after) `at_us`.
    ScheduleTick {
        /// Absolute microsecond deadline on the shell's clock.
        at_us: u64,
    },
    /// A delivery-error detector fired on the delivery just emitted.
    Alert {
        /// Which detector: 4 (instant coverage) or 5 (recent list).
        alg: u8,
        /// Originating process of the suspect message.
        sender: ProcessId,
        /// Its per-sender sequence number.
        seq: u64,
    },
    /// A durable snapshot was just taken (shells with oracles checkpoint
    /// their shadow state here; persistent shells write it out via
    /// [`Endpoint::stable_snapshot`]).
    SnapshotReady {
        /// When the snapshot was cut.
        at_us: u64,
    },
}

/// A point-in-time health report — the same shape the live runtime's
/// `NodeStatus` exposes.
#[derive(Debug, Clone)]
pub struct EndpointStatus {
    /// Protocol counters (sends, deliveries, alerts, duplicates).
    pub stats: ProcessStats,
    /// Messages currently blocked in the pending queue.
    pub pending: usize,
    /// The probabilistic clock vector.
    pub clock: pcb_clock::Timestamp,
    /// Recovery-health counters (syncs, re-fetches, snapshots).
    pub recovery: Counters,
    /// Deliveries that arrived via anti-entropy rather than a frame.
    pub recovered: u64,
    /// Times the idle-probe backoff was reset by fresh evidence.
    pub backoff_resets: u64,
    /// Whether the endpoint is currently crashed.
    pub crashed: bool,
    /// Consecutive sync probes that timed out unanswered (reset by any
    /// sync response).
    pub sync_timeouts: u32,
    /// `sync_timeouts >= UNREACHABLE_AFTER`: every recent anti-entropy
    /// attempt died on the wire — peers are crashed, partitioned away,
    /// or the transport is eating our probes.
    pub peer_unreachable: bool,
    /// Wake-up index work counters.
    pub wakeup: WakeupStats,
}

/// The sans-IO per-process protocol state machine. See the module docs
/// for the contract; construct with [`Endpoint::new`], drive with
/// [`Endpoint::handle`].
#[derive(Debug)]
pub struct Endpoint<P> {
    id: ProcessId,
    keys: KeySet,
    config: PcbConfig,
    timing: Option<RecoveryTimingUs>,
    process: PcbProcess<P>,
    store: MessageStore<P>,
    counters: Counters,
    recovered: u64,
    sync_in_flight: bool,
    sync_sent_at_us: u64,
    last_activity_us: u64,
    next_idle_sync_us: u64,
    idle_backoff_us: u64,
    crashed: bool,
    /// Consecutive sync probes whose reply never came (see
    /// [`UNREACHABLE_AFTER`]).
    sync_timeouts: u32,
    stable: Option<ProcessSnapshot<P>>,
    durable_seq: u64,
    next_snapshot_us: u64,
    backoff_resets: u64,
    /// High-water mark of `now_us` across every stimulus. All timer
    /// arithmetic assumes a monotone shell clock; a rewound `now_us` is
    /// clamped to this instead of silently re-arming timers in the past.
    last_now_us: u64,
    /// Requested parallelism for the batch paths (1 = sequential).
    threads: usize,
    /// Worker pool for batched read-only phases; present iff `threads > 1`.
    pool: Option<BatchPool>,
}

impl<P: Clone> Endpoint<P> {
    /// Creates an endpoint. `timing: None` disables recovery entirely —
    /// the endpoint still broadcasts, delivers, and answers sync
    /// requests, but never probes, snapshots, or schedules ticks.
    #[must_use]
    pub fn new(
        id: ProcessId,
        keys: KeySet,
        config: PcbConfig,
        timing: Option<RecoveryTimingUs>,
    ) -> Self {
        let process = PcbProcess::with_config(id, keys.clone(), config.clone());
        let store_window = timing.map_or(DEFAULT_STORE_WINDOW_US, |timing| timing.store_window_us);
        let (idle_backoff_us, next_snapshot_us) = match timing {
            Some(timing) => (timing.stale_after_us, timing.snapshot_every_us.max(1)),
            None => (0, u64::MAX),
        };
        Self {
            id,
            keys,
            config,
            timing,
            process,
            store: MessageStore::new(store_window),
            counters: Counters::default(),
            recovered: 0,
            sync_in_flight: false,
            sync_sent_at_us: 0,
            last_activity_us: 0,
            next_idle_sync_us: 0,
            idle_backoff_us,
            crashed: false,
            sync_timeouts: 0,
            stable: None,
            durable_seq: 0,
            next_snapshot_us,
            backoff_resets: 0,
            last_now_us: 0,
            threads: 1,
            pool: None,
        }
    }

    /// Rebuilds an endpoint from externally persisted crash-durable
    /// state: the last snapshot a shell wrote out (on
    /// [`Output::SnapshotReady`]) and the send-WAL high-water mark it
    /// persisted before each broadcast took effect. The endpoint starts
    /// **crashed** — exactly the state a `kill -9`'d process restarts
    /// into — and recovers when the shell feeds [`Input::Restore`],
    /// taking the same restore path an in-process crash does: snapshot
    /// restore (or genesis), WAL replay, then anti-entropy catch-up.
    #[must_use]
    pub fn resume(
        id: ProcessId,
        keys: KeySet,
        config: PcbConfig,
        timing: Option<RecoveryTimingUs>,
        stable: Option<ProcessSnapshot<P>>,
        durable_seq: u64,
    ) -> Self {
        let mut ep = Self::new(id, keys, config, timing);
        ep.stable = stable;
        ep.durable_seq = durable_seq;
        ep.crashed = true;
        ep
    }

    /// Feeds one stimulus into the state machine at microsecond `now_us`
    /// and returns the effects the shell must carry out, in order.
    ///
    /// A crashed endpoint is deaf: it reacts only to [`Input::Tick`]
    /// (keeping the tick chain alive for the eventual restart) and
    /// [`Input::Restore`]; frames, broadcasts, and sync traffic fall on
    /// the floor exactly as they would at a dead process.
    pub fn handle(&mut self, input: Input<P>, now_us: u64) -> Vec<Output<P>> {
        let mut out = Vec::new();
        self.handle_into(input, now_us, None, &mut out);
        out
    }

    /// [`Endpoint::handle`] into a caller-owned output buffer, optionally
    /// carrying a deliverability pre-scan `hint` for a `FrameReceived`
    /// (see [`PcbProcess::on_receive_hinted`]; batch paths compute these
    /// on the worker pool, the hint never changes observable behaviour).
    fn handle_into(
        &mut self,
        input: Input<P>,
        now_us: u64,
        hint: Option<Gap>,
        out: &mut Vec<Output<P>>,
    ) {
        // Clamp a backwards shell clock to the last time seen. Every
        // deadline below (`next_snapshot_us`, `next_idle_sync_us`, the
        // sync timeout) assumes monotone time; a rewound `now_us` used to
        // be masked by `saturating_sub` into "age zero", which silently
        // rescheduled ticks and probes into the past.
        let now_us = now_us.max(self.last_now_us);
        self.last_now_us = now_us;
        if self.crashed {
            match input {
                Input::Tick => self.schedule_tick(now_us, out),
                Input::Restore => self.restore(now_us, out),
                _ => {}
            }
            return;
        }
        // Recovery health is checked on *every* stimulus, not only
        // ticks: a busy inbox must not suppress snapshots or probes.
        self.maybe_snapshot(now_us, out);
        self.maybe_request_sync(now_us, out);
        match input {
            Input::FrameReceived(message) => {
                self.last_activity_us = now_us;
                self.reset_idle_backoff();
                self.accept(message, false, now_us, hint, out);
                self.maybe_request_sync(now_us, out);
            }
            Input::SyncRequest { from, known } => {
                let response = self.store.handle_sync(&SyncRequest::new(known));
                self.counters.sync_served += 1;
                // Always reply, even when empty: the requester's backoff
                // doubling needs to observe the emptiness.
                out.push(Output::SyncReply { to: from, messages: response.messages });
            }
            Input::SyncResponse(messages) => {
                self.on_sync_response(messages, now_us, out);
            }
            Input::Tick => self.schedule_tick(now_us, out),
            Input::Broadcast(payload) => {
                // Write-ahead: the sequence number becomes durable before
                // the send's effects exist anywhere, so a crash between
                // the two can only lose the message, never reuse a stamp.
                self.durable_seq += 1;
                self.process.set_now(now_us);
                let message = self.process.broadcast(payload);
                self.store.insert(now_us, message.clone());
                out.push(Output::SendFrame(message));
            }
            Input::Crash => {
                self.crashed = true;
                self.sync_in_flight = false;
            }
            Input::Restore => {} // not crashed: nothing to restore
        }
    }

    /// Requests `threads`-way parallelism for the batch paths
    /// ([`Endpoint::handle_batch`], [`Endpoint::handle_wire_batch`]):
    /// spawns a persistent worker pool and re-stripes the wake channels
    /// across `threads` shard groups.
    ///
    /// Gated on the discipline's [`Discipline::parallel`] capability
    /// hook — the endpoint runs the probabilistic discipline, whose wake
    /// channels are entry-local, so it opts in; a discipline without
    /// channel locality would silently stay at 1. Determinism never
    /// depends on this knob: delivery order and every counter are
    /// bit-identical at any thread count, parallelism only moves
    /// read-only work (wire decode, deliverability pre-scans) off the
    /// apply thread.
    pub fn set_parallel(&mut self, threads: usize) {
        let threads = if ProbDiscipline::parallel() { threads.max(1) } else { 1 };
        self.threads = threads;
        self.pool = (threads > 1).then(|| BatchPool::new(threads));
        self.process.reshard(threads);
    }

    /// Current batch parallelism (1 = sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This endpoint's process id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Whether the endpoint is currently crashed (deaf).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Messages blocked in the pending queue.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.process.pending_len()
    }

    /// Protocol counters.
    #[must_use]
    pub fn stats(&self) -> ProcessStats {
        self.process.stats()
    }

    /// Wake-up index work counters.
    #[must_use]
    pub fn wakeup_stats(&self) -> WakeupStats {
        self.process.wakeup_stats()
    }

    /// Recovery-health counters.
    #[must_use]
    pub fn recovery_counters(&self) -> Counters {
        self.counters
    }

    /// Send-WAL high-water mark: the highest sequence number made
    /// durable. Persistent shells write this out (before routing the
    /// frame) so [`Endpoint::resume`] can replay it after `kill -9`.
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Whether [`UNREACHABLE_AFTER`] consecutive sync probes have died
    /// unanswered — the endpoint's peers look unreachable from here.
    #[must_use]
    pub fn peer_unreachable(&self) -> bool {
        self.sync_timeouts >= UNREACHABLE_AFTER
    }

    /// Deliveries that arrived via anti-entropy re-fetch.
    #[must_use]
    pub fn recovered_deliveries(&self) -> u64 {
        self.recovered
    }

    /// The anti-entropy message store (delivered + own messages within
    /// the retention window).
    #[must_use]
    pub fn store(&self) -> &MessageStore<P> {
        &self.store
    }

    /// The last durable snapshot, if one has been cut. Persistent shells
    /// write this out when they see [`Output::SnapshotReady`].
    #[must_use]
    pub fn stable_snapshot(&self) -> Option<&ProcessSnapshot<P>> {
        self.stable.as_ref()
    }

    /// Full health report.
    #[must_use]
    pub fn status(&self) -> EndpointStatus {
        EndpointStatus {
            stats: self.process.stats(),
            pending: self.process.pending_len(),
            clock: self.process.clock().vector().clone(),
            recovery: self.counters,
            recovered: self.recovered,
            backoff_resets: self.backoff_resets,
            crashed: self.crashed,
            sync_timeouts: self.sync_timeouts,
            peer_unreachable: self.peer_unreachable(),
            wakeup: self.process.wakeup_stats(),
        }
    }

    /// Drains buffered lifecycle-trace records, oldest first.
    pub fn drain_trace(&mut self) -> Vec<TraceRecord> {
        self.process.drain_trace()
    }

    /// Delivers `message` (and whatever it unblocks), inserting each
    /// delivery into the store and emitting `Deliver` plus detector
    /// `Alert`s. Returns whether anything was delivered.
    fn accept(
        &mut self,
        message: Message<P>,
        refetched: bool,
        now_us: u64,
        hint: Option<Gap>,
        out: &mut Vec<Output<P>>,
    ) -> bool {
        let deliveries = self.process.on_receive_hinted(message, now_us, hint);
        let any = !deliveries.is_empty();
        for delivery in deliveries {
            // The store insert is a stamp-refcount bump plus a payload
            // clone, not a deep copy (`Message` stamps are shared).
            self.store.insert(now_us, delivery.message.clone());
            self.recovered += u64::from(refetched);
            let (sender, seq) = (delivery.message.id().sender(), delivery.message.id().seq());
            let (instant, recent) = (delivery.instant_alert, delivery.recent_alert);
            out.push(Output::Deliver(delivery));
            if instant {
                out.push(Output::Alert { alg: 4, sender, seq });
            }
            if recent {
                out.push(Output::Alert { alg: 5, sender, seq });
            }
        }
        any
    }

    /// Deterministic jitter in `[0, span/4)`, keyed by this endpoint's
    /// id and an evolving `nonce` (the probe counter). Identically
    /// configured endpoints that quiesce at the same instant — a healed
    /// partition is exactly that — must not re-arm their probes onto the
    /// same schedule, or every backoff round arrives as a synchronized
    /// request storm. Pure state, no wall clock or RNG: the simulator,
    /// loopback replay, and real daemons all compute the same offsets.
    fn jitter_us(&self, span_us: u64, nonce: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in (self.id.index() as u64).to_le_bytes().into_iter().chain(nonce.to_le_bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Top bits are the well-mixed ones in FNV; span/4 keeps the
        // jitter well under one backoff doubling so gaps still grow.
        span_us / 4 * (h >> 56) / 256
    }

    fn on_sync_response(
        &mut self,
        messages: Vec<Message<P>>,
        now_us: u64,
        out: &mut Vec<Output<P>>,
    ) {
        self.sync_in_flight = false;
        self.sync_timeouts = 0;
        self.counters.refetched += messages.len() as u64;
        self.process.set_now(now_us);
        for message in &messages {
            let (sender, seq) = (message.id().sender().index_u32(), message.id().seq());
            self.process.tracer_mut().emit(|| TraceEvent::Refetched { sender, seq });
        }
        let mut delivered_any = false;
        for message in messages {
            delivered_any |= self.accept(message, true, now_us, None, out);
        }
        if let Some(timing) = self.timing {
            if delivered_any {
                self.reset_idle_backoff();
            } else {
                // Nothing new anywhere: quiesce. Double the idle-probe
                // interval up to a cap so a healed, converged cluster
                // stops probe-storming but still self-checks. The re-arm
                // is jittered per endpoint so simultaneous quiescence
                // (every node healing at once) fans the next round of
                // probes out over time instead of stampeding.
                let cap = timing.stale_after_us * 8;
                let jitter = self.jitter_us(self.idle_backoff_us, self.counters.sync_requests);
                self.next_idle_sync_us = now_us + self.idle_backoff_us + jitter;
                self.idle_backoff_us = (self.idle_backoff_us * 2).min(cap.max(1));
            }
        }
        self.maybe_request_sync(now_us, out);
    }

    fn schedule_tick(&self, now_us: u64, out: &mut Vec<Output<P>>) {
        if let Some(timing) = self.timing {
            out.push(Output::ScheduleTick { at_us: now_us + timing.poll_every_us.max(1) });
        }
    }

    fn maybe_snapshot(&mut self, now_us: u64, out: &mut Vec<Output<P>>) {
        let Some(timing) = self.timing else { return };
        if now_us < self.next_snapshot_us {
            return;
        }
        self.stable = Some(self.process.snapshot(&self.store));
        self.counters.snapshots_taken += 1;
        self.process.set_now(now_us);
        self.process.tracer_mut().emit(|| TraceEvent::SnapshotTaken);
        out.push(Output::SnapshotReady { at_us: now_us });
        self.next_snapshot_us = now_us + timing.snapshot_every_us.max(1);
    }

    /// The §4.2 probe decision: fire a sync request if (a) none is in
    /// flight (or the last one timed out), and (b) either a pending
    /// message has gone stale — a lost dependency, probed at full poll
    /// cadence — or the endpoint has been idle past its (backoff-grown)
    /// quiescence interval.
    fn maybe_request_sync(&mut self, now_us: u64, out: &mut Vec<Output<P>>) {
        let Some(timing) = self.timing else { return };
        if self.sync_in_flight {
            // The timeout is jittered like the idle re-arm: a partition
            // that swallowed every group's probes must not release them
            // all on the same retry beat.
            let timeout = timing.sync_timeout_us.max(1);
            let timeout = timeout + self.jitter_us(timeout, self.counters.sync_requests);
            if now_us.saturating_sub(self.sync_sent_at_us) < timeout {
                return;
            }
            self.sync_in_flight = false;
            // A probe died on the wire; count it toward the
            // peer-unreachable health verdict (reset by any response).
            self.sync_timeouts = self.sync_timeouts.saturating_add(1);
        }
        let stale = timing.stale_after_us;
        let pending_stale = self.process.oldest_pending_age(now_us).is_some_and(|age| age >= stale);
        let idle_probe = now_us.saturating_sub(self.last_activity_us) >= stale
            && now_us >= self.next_idle_sync_us;
        if !pending_stale && !idle_probe {
            return;
        }
        let known: Vec<MessageId> = self.process.seen_ids().collect();
        self.counters.sync_requests += 1;
        self.sync_in_flight = true;
        self.sync_sent_at_us = now_us;
        out.push(Output::RequestSync { known });
    }

    /// Re-arms the quiescence probe at its minimum interval (new traffic
    /// or a successful recovery means more losses may follow shortly).
    fn reset_idle_backoff(&mut self) {
        if let Some(timing) = self.timing {
            self.idle_backoff_us = timing.stale_after_us;
            self.next_idle_sync_us = 0;
            self.backoff_resets += 1;
        }
    }

    fn restore(&mut self, now_us: u64, out: &mut Vec<Output<P>>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        // Keep the lifecycle trace across the restore: PcbProcess::restore
        // starts a fresh ring, but the node's history (especially its
        // `Sent` records) must survive for trace replay to work.
        let tracer = self.process.replace_tracer(Tracer::ring(self.id.index_u32(), 0));
        match self.stable.clone() {
            Some(snapshot) => {
                let (process, store) = PcbProcess::restore(snapshot);
                self.process = process;
                self.store = store;
                self.counters.snapshot_restores += 1;
            }
            None => {
                // Crashed before the first snapshot: restart from zero.
                self.process =
                    PcbProcess::with_config(self.id, self.keys.clone(), self.config.clone());
                self.store = MessageStore::new(
                    self.timing.map_or(DEFAULT_STORE_WINDOW_US, |timing| timing.store_window_us),
                );
            }
        }
        let _ = self.process.replace_tracer(tracer);
        // The wire decoder's per-sender reconstruction stamps describe
        // the *pre-crash* receive stream; reusing them would reconstruct
        // post-restore deltas against bases this endpoint no longer
        // remembers receiving. Drop them so the next delta from each
        // sender surfaces `MissingDeltaBase` and is re-fetched or
        // re-primed by a full frame.
        self.store.reset_codec();
        // Sharding is runtime configuration, not snapshot state: the
        // rebuilt process starts sequential, so re-apply it.
        self.process.reshard(self.threads);
        self.process.set_now(now_us);
        self.process.tracer_mut().emit(|| TraceEvent::SnapshotRestored);
        // Re-apply the clock effects of sends the WAL made durable after
        // the snapshot, so fresh broadcasts do not reuse stamp heights.
        self.process.replay_own_sends(self.durable_seq);
        self.last_activity_us = 0;
        self.sync_timeouts = 0;
        self.reset_idle_backoff();
        self.maybe_request_sync(now_us, out);
    }
}

impl<P: Clone + Send + Sync + 'static> Endpoint<P> {
    /// Feeds a whole batch of stimuli through the state machine and
    /// returns the concatenated outputs, in input order.
    ///
    /// Observable behaviour is **bit-identical** to calling
    /// [`Endpoint::handle`] once per `(now_us, input)` pair — every
    /// delivery, alert, probe, snapshot, and counter lands exactly where
    /// the one-at-a-time path puts it. The batch only amortizes
    /// *read-only* work: with [`Endpoint::set_parallel`] above 1, the
    /// Algorithm 2 deliverability pre-scan for every `FrameReceived` runs
    /// on the worker pool against the clock as of batch entry, and the
    /// serial apply loop resumes each scan from the pre-computed gap
    /// instead of entry 0. Soundness of that resume is the guard's
    /// monotonicity in the delivered set; see
    /// [`crate::pending::WakeupIndex::insert_hinted`].
    pub fn handle_batch(&mut self, batch: Vec<(u64, Input<P>)>) -> Vec<Output<P>> {
        let mut hints = self.prescan(&batch);
        let mut out = Vec::new();
        for (index, (now_us, input)) in batch.into_iter().enumerate() {
            // A restore rewinds the clock to the snapshot, breaking the
            // monotonicity that makes stale hints sound: drop the rest.
            let invalidates = matches!(input, Input::Restore);
            let hint = hints.get(index).copied().flatten();
            self.handle_into(input, now_us, hint, &mut out);
            if invalidates {
                hints.iter_mut().for_each(|hint| *hint = None);
            }
        }
        out
    }

    /// Computes the deliverability gap of every `FrameReceived` in the
    /// batch against the current clock, chunked across the worker pool.
    /// Returns `None` everywhere when sequential (hints then have no
    /// work to save — the apply loop scans inline exactly as before).
    fn prescan(&self, batch: &[(u64, Input<P>)]) -> Vec<Option<Gap>> {
        let mut hints = vec![None; batch.len()];
        let Some(pool) = self.pool.as_ref() else { return hints };
        if self.crashed {
            return hints; // deaf: no frame in this batch will be scanned
        }
        let frames: Vec<(usize, Message<P>)> = batch
            .iter()
            .enumerate()
            .filter_map(|(index, (_, input))| match input {
                Input::FrameReceived(message) => Some((index, message.clone())),
                _ => None,
            })
            .collect();
        if frames.len() < 2 {
            return hints;
        }
        let clock = Arc::new(self.process.clock().clone());
        let chunk = frames.len().div_ceil(pool.workers().max(1));
        let jobs: Vec<_> = frames
            .chunks(chunk)
            .map(|part| {
                let part = part.to_vec();
                let clock = Arc::clone(&clock);
                move || {
                    part.into_iter()
                        .map(|(index, message)| {
                            (index, clock.deliverability_gap(message.timestamp(), message.keys()))
                        })
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        for (index, gap) in pool.run(jobs).into_iter().flatten() {
            hints[index] = Some(gap);
        }
        hints
    }
}

/// One decoded wire frame: the decode result plus, when a pool is
/// active, its pre-scanned deliverability gap against the batch clock.
type DecodedFrame = (Result<Message<Bytes>, WireError>, Option<Gap>);

impl Endpoint<Bytes> {
    /// Decodes one wire frame (v2 full / v3 full / v3 delta, see
    /// [`crate::wire`]) through the store's long-lived per-sender delta
    /// codec and feeds the message through [`Endpoint::handle`].
    ///
    /// A crashed endpoint returns `Ok` with no outputs **without touching
    /// the codec**: frames at a dead process fall on the floor before
    /// reconstruction, so the delta chain resumes only via full frames
    /// (or anti-entropy re-fetch) after restore.
    ///
    /// # Errors
    ///
    /// Propagates the [`WireError`] of an undecodable frame (corrupt
    /// bytes, or a delta whose base this endpoint never saw); the frame
    /// is dropped and the state machine is not stimulated, exactly as a
    /// transport-level loss.
    pub fn handle_wire(
        &mut self,
        frame: Bytes,
        now_us: u64,
    ) -> Result<Vec<Output<Bytes>>, WireError> {
        if self.crashed {
            return Ok(Vec::new());
        }
        let message = self.store.decode_frame(now_us, frame)?;
        Ok(self.handle(Input::FrameReceived(message), now_us))
    }

    /// [`Endpoint::handle_wire`] over a whole batch of frames: one
    /// parallel decode pass, one parallel deliverability pre-scan, one
    /// serial apply sweep. Returns the concatenated outputs plus the
    /// decode errors as `(batch index, error)` pairs; an undecodable
    /// frame is skipped without stimulating the state machine, exactly
    /// as the sequential path drops it.
    ///
    /// Outputs are bit-identical to calling [`Endpoint::handle_wire`]
    /// per frame in order, at any thread count. The decode parallelism
    /// shards frames by their **sender** (readable from the header
    /// without decoding, [`peek_sender`]): per-sender delta chains are
    /// independent, so each shard decodes its frames in original order
    /// against its partition of the codec and the results merge back by
    /// batch index.
    pub fn handle_wire_batch(
        &mut self,
        frames: &[(u64, Bytes)],
    ) -> (Vec<Output<Bytes>>, Vec<(usize, WireError)>) {
        let mut out = Vec::new();
        let mut errors = Vec::new();
        if self.crashed {
            return (out, errors); // deaf, codec untouched
        }
        let decoded = self.decode_batch(frames);
        for (index, ((now_us, _), (result, hint))) in frames.iter().zip(decoded).enumerate() {
            match result {
                Ok(message) => {
                    // Store insert before the stimulus, as the sequential
                    // `decode_frame` does — a snapshot cut while handling
                    // this frame must already retain it.
                    self.store.insert(*now_us, message.clone());
                    self.handle_into(Input::FrameReceived(message), *now_us, hint, &mut out);
                }
                Err(error) => errors.push((index, error)),
            }
        }
        (out, errors)
    }

    /// Decodes `frames` in batch-index order per sender shard. With a
    /// pool, the codec is partitioned by `sender % shards`
    /// ([`crate::wire::DeltaDecoder::partition`]), each worker decodes its shard's
    /// frames in original order and pre-scans the deliverability gap of
    /// each success against the batch-entry clock, and the partitions are
    /// absorbed back; without one, everything decodes inline.
    fn decode_batch(&mut self, frames: &[(u64, Bytes)]) -> Vec<DecodedFrame> {
        let workers = self.pool.as_ref().map_or(1, BatchPool::workers).max(1);
        if workers == 1 || frames.len() < 2 {
            return frames
                .iter()
                .map(|(_, frame)| (self.store.codec_mut().decode(frame.clone()), None))
                .collect();
        }
        // Route each frame by its wire-level sender. A frame whose
        // header cannot even be peeked is recorded with that parse error
        // directly — the full decode fails at the same byte.
        let mut routes: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); workers];
        let mut results: Vec<Option<DecodedFrame>> = vec![None; frames.len()];
        for (index, (_, frame)) in frames.iter().enumerate() {
            match peek_sender(frame) {
                Ok(sender) => routes[sender % workers].push((index, frame.clone())),
                Err(error) => results[index] = Some((Err(error), None)),
            }
        }
        let parts = self.store.codec_mut().partition(workers);
        let clock = Arc::new(self.process.clock().clone());
        let jobs: Vec<_> = routes
            .into_iter()
            .zip(parts)
            .map(|(route, mut part)| {
                let clock = Arc::clone(&clock);
                move || {
                    let decoded: Vec<(usize, DecodedFrame)> = route
                        .into_iter()
                        .map(|(index, frame)| {
                            let result = part.decode(frame);
                            let hint = result.as_ref().ok().map(|message| {
                                clock.deliverability_gap(message.timestamp(), message.keys())
                            });
                            (index, (result, hint))
                        })
                        .collect();
                    (part, decoded)
                }
            })
            .collect();
        let mut parts_back = Vec::with_capacity(workers);
        for (part, decoded) in self.pool.as_ref().expect("workers > 1 implies pool").run(jobs) {
            parts_back.push(part);
            for (index, result) in decoded {
                results[index] = Some(result);
            }
        }
        self.store.codec_mut().absorb(parts_back);
        results.into_iter().map(|slot| slot.expect("every frame routed or errored")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn space() -> KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn timing() -> RecoveryTimingUs {
        RecoveryTimingUs {
            stale_after_us: 1_000,
            poll_every_us: 250,
            store_window_us: 1_000_000,
            snapshot_every_us: 5_000,
            sync_timeout_us: 4_000,
        }
    }

    fn endpoint(id: usize, entries: &[usize]) -> Endpoint<&'static str> {
        Endpoint::new(
            ProcessId::new(id),
            KeySet::from_entries(space(), entries).unwrap(),
            PcbConfig::default(),
            Some(timing()),
        )
    }

    fn frames<P: Clone>(outs: &[Output<P>]) -> Vec<Message<P>> {
        outs.iter()
            .filter_map(|o| match o {
                Output::SendFrame(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    fn known_of<P>(outs: &[Output<P>]) -> Option<Vec<MessageId>> {
        outs.iter().find_map(|o| match o {
            Output::RequestSync { known } => Some(known.clone()),
            _ => None,
        })
    }

    #[test]
    fn broadcast_emits_frame_and_stores_it() {
        let mut a = endpoint(0, &[0, 1]);
        let outs = a.handle(Input::Broadcast("x"), 10);
        assert_eq!(frames(&outs).len(), 1);
        assert_eq!(a.store().len(), 1, "own sends are re-fetchable");
        assert_eq!(a.stats().sent, 1);
    }

    #[test]
    fn frame_delivery_inserts_into_store() {
        let mut a = endpoint(0, &[0, 1]);
        let mut b = endpoint(1, &[1, 2]);
        let m = frames(&a.handle(Input::Broadcast("x"), 10)).remove(0);
        let outs = b.handle(Input::FrameReceived(m), 20);
        assert!(matches!(outs[0], Output::Deliver(_)));
        assert_eq!(b.store().len(), 1, "the endpoint buffers its own deliveries");
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn tick_keeps_the_chain_alive() {
        let mut a = endpoint(0, &[0, 1]);
        let outs = a.handle(Input::Tick, 100);
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::ScheduleTick { at_us } if *at_us == 100 + 250)));
        let mut no_recovery = Endpoint::<&str>::new(
            ProcessId::new(3),
            KeySet::from_entries(space(), &[2, 3]).unwrap(),
            PcbConfig::default(),
            None,
        );
        assert!(no_recovery.handle(Input::Tick, 100).is_empty(), "no timing, no chain");
    }

    #[test]
    fn anti_entropy_round_trip_refetches_missed_messages() {
        let mut a = endpoint(0, &[0, 1]);
        let mut b = endpoint(1, &[1, 2]);
        let m1 = frames(&a.handle(Input::Broadcast("1"), 10)).remove(0);
        let m2 = frames(&a.handle(Input::Broadcast("2"), 20)).remove(0);
        drop((m1, m2)); // both frames lost in transit

        // Idle probe fires once b has been quiet past stale_after.
        let outs = b.handle(Input::Tick, 2_000);
        let known = known_of(&outs).expect("idle probe");
        assert_eq!(b.recovery_counters().sync_requests, 1);

        let reply = a.handle(Input::SyncRequest { from: b.id(), known }, 2_100);
        let Some(Output::SyncReply { to, messages }) =
            reply.iter().find(|o| matches!(o, Output::SyncReply { .. }))
        else {
            panic!("expected SyncReply, got {reply:?}");
        };
        assert_eq!(*to, b.id());
        assert_eq!(messages.len(), 2);
        assert_eq!(a.recovery_counters().sync_served, 1);

        let outs = b.handle(Input::SyncResponse(messages.clone()), 2_200);
        let delivered: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                Output::Deliver(d) => Some(*d.message.payload()),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, ["1", "2"]);
        assert_eq!(b.recovery_counters().refetched, 2);
        assert_eq!(b.recovered_deliveries(), 2);
    }

    #[test]
    fn empty_sync_responses_back_off_and_fresh_traffic_resets() {
        let mut b = endpoint(1, &[1, 2]);
        let t = timing();
        let mut now = t.stale_after_us;
        let mut probe_gaps = Vec::new();
        let mut last_probe = None;
        // Drive tick + empty response cycles; record the gaps between
        // successive probes.
        for _ in 0..200 {
            let outs = b.handle(Input::Tick, now);
            if known_of(&outs).is_some() {
                if let Some(prev) = last_probe {
                    probe_gaps.push(now - prev);
                }
                last_probe = Some(now);
                let _ = b.handle(Input::SyncResponse(Vec::new()), now + 10);
            }
            now += t.poll_every_us;
        }
        assert!(probe_gaps.len() >= 3, "several probes fired: {probe_gaps:?}");
        // Gaps grow toward the cap; per-probe jitter (< span/4) may
        // wobble consecutive capped gaps but never more than the span.
        let cap = t.stale_after_us * 8;
        let jitter_span = cap / 4;
        assert!(
            probe_gaps.windows(2).all(|w| w[1] + jitter_span >= w[0]),
            "idle probe gaps never shrink below jitter wobble: {probe_gaps:?}"
        );
        assert!(
            probe_gaps.last() > probe_gaps.first(),
            "backoff still grows overall: {probe_gaps:?}"
        );
        assert!(
            probe_gaps.iter().all(|&g| g <= cap + jitter_span + t.poll_every_us),
            "gaps capped"
        );

        // Fresh frame resets the backoff to the floor.
        let mut a = endpoint(0, &[0, 1]);
        let m = frames(&a.handle(Input::Broadcast("x"), now)).remove(0);
        let resets_before = b.status().backoff_resets;
        let _ = b.handle(Input::FrameReceived(m), now);
        assert!(b.status().backoff_resets > resets_before);
    }

    #[test]
    fn sync_timeout_rearms_the_probe() {
        let mut b = endpoint(1, &[1, 2]);
        let t = timing();
        let outs = b.handle(Input::Tick, t.stale_after_us);
        assert!(known_of(&outs).is_some(), "first probe fires");
        // In flight: no second probe before the (jittered) timeout.
        let outs = b.handle(Input::Tick, t.stale_after_us + t.sync_timeout_us - 1);
        assert!(known_of(&outs).is_none());
        // Timed out: the probe re-arms within the jitter window
        // (timeout .. timeout + timeout/4) at poll granularity.
        let mut now = t.stale_after_us + t.sync_timeout_us;
        let deadline = t.stale_after_us + t.sync_timeout_us + t.sync_timeout_us / 4;
        let mut fired = false;
        while now <= deadline + t.poll_every_us {
            if known_of(&b.handle(Input::Tick, now)).is_some() {
                fired = true;
                break;
            }
            now += t.poll_every_us;
        }
        assert!(fired, "timed-out probe re-arms inside the jitter window");
        assert_eq!(b.recovery_counters().sync_requests, 2);
        assert_eq!(b.status().sync_timeouts, 1, "the dead probe was counted");
    }

    #[test]
    fn identical_endpoints_desynchronize_their_probe_schedules() {
        // Regression (probe-storm fix): endpoints with identical timing
        // and identical stimulus must not share one probe schedule —
        // after a heal, synchronized quiescence probes arrive as a
        // request storm. The jitter is pure state, so the schedule is
        // still deterministic per endpoint id.
        let t = timing();
        let schedule = |id: usize| -> Vec<u64> {
            let mut e = endpoint(id, &[0, 1]);
            let mut probes = Vec::new();
            let mut now = t.stale_after_us;
            for _ in 0..400 {
                if known_of(&e.handle(Input::Tick, now)).is_some() {
                    probes.push(now);
                    let _ = e.handle(Input::SyncResponse(Vec::new()), now + 1);
                }
                now += t.poll_every_us;
            }
            probes
        };
        let schedules: Vec<Vec<u64>> = (0..4).map(schedule).collect();
        assert!(schedules.iter().all(|s| s.len() >= 3), "every endpoint probes");
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "identically configured endpoints must not probe in lockstep: {schedules:?}"
        );
        assert_eq!(schedule(2), schedules[2], "per-id schedules are deterministic");
    }

    #[test]
    fn unanswered_probes_surface_peer_unreachable() {
        let mut b = endpoint(1, &[1, 2]);
        let t = timing();
        let mut now = t.stale_after_us;
        // Nobody ever answers: timeouts accumulate into the verdict.
        while !b.status().peer_unreachable {
            let _ = b.handle(Input::Tick, now);
            now += t.poll_every_us;
            assert!(now < 10_000_000, "unreachable verdict must arrive");
        }
        assert!(b.status().sync_timeouts >= UNREACHABLE_AFTER);
        // One answered probe — even an empty one — clears it.
        let _ = b.handle(Input::SyncResponse(Vec::new()), now);
        assert!(!b.status().peer_unreachable);
        assert_eq!(b.status().sync_timeouts, 0);
    }

    #[test]
    fn resume_rebuilds_from_persisted_snapshot_and_wal() {
        // A shell persists the snapshot and the WAL mark; `resume` must
        // rebuild the same post-restore state an in-process crash does.
        let t = timing();
        let mut a = endpoint(0, &[0, 1]);
        let _ = a.handle(Input::Broadcast("1"), 10);
        let _ = a.handle(Input::Tick, t.snapshot_every_us); // cut snapshot at seq 1
        let _ = a.handle(Input::Broadcast("2"), t.snapshot_every_us + 10);
        let _ = a.handle(Input::Broadcast("3"), t.snapshot_every_us + 20);
        let snapshot = a.stable_snapshot().cloned();
        let wal = a.durable_seq();
        assert_eq!(wal, 3);

        // "kill -9": a brand-new endpoint from the persisted pieces.
        let mut r = Endpoint::resume(
            ProcessId::new(0),
            KeySet::from_entries(space(), &[0, 1]).unwrap(),
            PcbConfig::default(),
            Some(t),
            snapshot,
            wal,
        );
        assert!(r.crashed(), "resume starts in the crashed state");
        let outs = r.handle(Input::Restore, t.snapshot_every_us + 100);
        assert!(!r.crashed());
        assert_eq!(r.recovery_counters().snapshot_restores, 1);
        assert!(known_of(&outs).is_some(), "restore probes for what it missed");
        let m = frames(&r.handle(Input::Broadcast("4"), t.snapshot_every_us + 200)).remove(0);
        assert_eq!(m.id().seq(), 4, "stamp heights continue past the kill");
    }

    #[test]
    fn crashed_endpoint_is_deaf_until_restore() {
        let mut a = endpoint(0, &[0, 1]);
        let mut b = endpoint(1, &[1, 2]);
        let t = timing();

        // Deliver one message, then cut a snapshot.
        let m = frames(&a.handle(Input::Broadcast("pre"), 10)).remove(0);
        let _ = b.handle(Input::FrameReceived(m), 20);
        let outs = b.handle(Input::Tick, t.snapshot_every_us);
        assert!(outs.iter().any(|o| matches!(o, Output::SnapshotReady { .. })));
        assert_eq!(b.recovery_counters().snapshots_taken, 1);

        assert!(b.handle(Input::Crash, t.snapshot_every_us + 10).is_empty());
        assert!(b.crashed());
        let m2 = frames(&a.handle(Input::Broadcast("during"), t.snapshot_every_us + 20)).remove(0);
        assert!(
            b.handle(Input::FrameReceived(m2), t.snapshot_every_us + 30).is_empty(),
            "crashed endpoint drops frames"
        );
        let outs = b.handle(Input::Tick, t.snapshot_every_us + 40);
        assert_eq!(outs.len(), 1, "only the tick chain survives a crash");
        assert!(matches!(outs[0], Output::ScheduleTick { .. }));

        let outs = b.handle(Input::Restore, t.snapshot_every_us + 1_000);
        assert_eq!(b.recovery_counters().snapshot_restores, 1);
        assert!(!b.crashed());
        assert_eq!(b.stats().delivered, 1, "snapshot preserved the pre-crash delivery");
        assert!(known_of(&outs).is_some(), "restore probes for what it missed");
    }

    #[test]
    fn restore_replays_the_send_wal() {
        let mut a = endpoint(0, &[0, 1]);
        let t = timing();
        // Snapshot at seq 1, then two more sends that outlive the crash
        // only through the WAL.
        let _ = a.handle(Input::Broadcast("1"), 10);
        let _ = a.handle(Input::Tick, t.snapshot_every_us);
        let _ = a.handle(Input::Broadcast("2"), t.snapshot_every_us + 10);
        let _ = a.handle(Input::Broadcast("3"), t.snapshot_every_us + 20);
        let _ = a.handle(Input::Crash, t.snapshot_every_us + 30);
        let _ = a.handle(Input::Restore, t.snapshot_every_us + 40);
        let m = frames(&a.handle(Input::Broadcast("4"), t.snapshot_every_us + 50)).remove(0);
        assert_eq!(m.id().seq(), 4, "stamp heights continue past the crash");
    }

    #[test]
    fn crash_before_first_snapshot_restarts_from_zero() {
        let mut b = endpoint(1, &[1, 2]);
        let _ = b.handle(Input::Crash, 10);
        let _ = b.handle(Input::Restore, 20);
        assert_eq!(b.recovery_counters().snapshot_restores, 0, "nothing durable yet");
        assert_eq!(b.stats().delivered, 0);
        assert!(!b.crashed());
    }

    #[test]
    fn backwards_clock_is_clamped_not_obeyed() {
        // Regression: timer arithmetic used `saturating_sub`, so a shell
        // clock that jumped backwards read as "age zero" and silently
        // re-armed ticks/snapshots in the past. The clamp pins `now_us`
        // to the high-water mark instead.
        let mut a = endpoint(0, &[0, 1]);
        let outs = a.handle(Input::Tick, 6_000);
        assert!(outs.iter().any(|o| matches!(o, Output::SnapshotReady { at_us: 6_000 })));
        assert!(known_of(&outs).is_some(), "idle past stale_after: probe fires");
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::ScheduleTick { at_us } if *at_us == 6_000 + 250)));
        let (snapshots, probes) =
            (a.recovery_counters().snapshots_taken, a.recovery_counters().sync_requests);

        // The shell's clock rewinds to zero. Every deadline must behave
        // as if it were still 6_000.
        let outs = a.handle(Input::Tick, 0);
        assert!(
            outs.iter()
                .all(|o| matches!(o, Output::ScheduleTick { at_us } if *at_us == 6_000 + 250)),
            "rewound tick must not reschedule into the past: {outs:?}"
        );
        assert_eq!(a.recovery_counters().snapshots_taken, snapshots, "no snapshot re-fire");
        assert_eq!(a.recovery_counters().sync_requests, probes, "no probe storm");
    }

    #[test]
    fn zero_timeouts_still_make_strict_progress() {
        // All-zero timing is degenerate but must not wedge the tick
        // chain into firing at the same instant forever.
        let zero = RecoveryTimingUs {
            stale_after_us: 0,
            poll_every_us: 0,
            store_window_us: 0,
            snapshot_every_us: 0,
            sync_timeout_us: 0,
        };
        let mut a = Endpoint::<&str>::new(
            ProcessId::new(0),
            KeySet::from_entries(space(), &[0, 1]).unwrap(),
            PcbConfig::default(),
            Some(zero),
        );
        let mut now = 5;
        for _ in 0..8 {
            let outs = a.handle(Input::Tick, now);
            let at = outs
                .iter()
                .find_map(|o| match o {
                    Output::ScheduleTick { at_us } => Some(*at_us),
                    _ => None,
                })
                .expect("tick chain alive");
            assert!(at > now, "zero poll interval must still move time forward");
            now = at;
        }
        assert!(a.recovery_counters().sync_requests > 1, "zero sync timeout re-arms probes");
    }

    /// Order-and-content digest of an output stream (ticket-free — debug
    /// formatting is deterministic for identical state trajectories).
    fn digest<P: std::fmt::Debug>(outs: &[Output<P>]) -> Vec<String> {
        outs.iter().map(|o| format!("{o:?}")).collect()
    }

    #[test]
    fn handle_batch_is_bit_identical_to_sequential_handles() {
        let t = timing();
        // A script with frames (in-order + out-of-order), ticks, sync
        // traffic, a crash, and a restore — the full input alphabet.
        let mut sender_a = endpoint(0, &[0, 1]);
        let mut sender_c = endpoint(2, &[2, 3]);
        let mut script: Vec<(u64, Input<&'static str>)> = Vec::new();
        let mut frames_ab: Vec<Message<&'static str>> = Vec::new();
        for i in 0..20u64 {
            let at = 10 + i * 40;
            frames_ab.push(frames(&sender_a.handle(Input::Broadcast("a"), at)).remove(0));
            frames_ab.push(frames(&sender_c.handle(Input::Broadcast("c"), at)).remove(0));
        }
        // Deliver them shuffled within pairs (exercises parking).
        for (i, pair) in frames_ab.chunks(2).enumerate() {
            let at = 20 + i as u64 * 40;
            for m in pair.iter().rev() {
                script.push((at, Input::FrameReceived(m.clone())));
            }
        }
        script.push((t.snapshot_every_us + 1, Input::Tick));
        script.push((t.snapshot_every_us + 2, Input::Crash));
        script.push((t.snapshot_every_us + 3, Input::Tick));
        script.push((t.snapshot_every_us + 4, Input::Restore));
        // Post-restore frames: hints for these must have been dropped.
        for (i, pair) in frames_ab.chunks(2).enumerate().take(4) {
            let at = t.snapshot_every_us + 10 + i as u64;
            for m in pair {
                script.push((at, Input::FrameReceived(m.clone())));
            }
        }

        let mut seq = endpoint(1, &[1, 2]);
        let mut seq_out = Vec::new();
        for (at, input) in &script {
            seq_out.extend(seq.handle(input.clone(), *at));
        }

        for threads in [1usize, 2, 4] {
            let mut batched = endpoint(1, &[1, 2]);
            batched.set_parallel(threads);
            assert_eq!(batched.threads(), threads, "prob discipline opts into parallelism");
            // Split the script into uneven batch sizes for good measure.
            let mut batch_out = Vec::new();
            for chunk in script.chunks(7) {
                batch_out.extend(batched.handle_batch(chunk.to_vec()));
            }
            assert_eq!(digest(&batch_out), digest(&seq_out), "threads={threads}");
            assert_eq!(batched.status().stats, seq.status().stats, "threads={threads}");
            assert_eq!(batched.recovery_counters(), seq.recovery_counters(), "threads={threads}");
        }
    }
}
