//! Parameter planning: choosing `(R, K)` for a deployment.
//!
//! The paper's §5.3-§5.4 leave dimensioning implicit ("we have to consider
//! this probability to dimension precisely the size of the vector"); this
//! module makes it explicit: given an estimated concurrency `X` (aggregate
//! message rate × propagation delay) and a target covering probability,
//! compute the smallest vector and the best `K`.

use crate::error_model::{error_probability, optimal_k_integer};

/// A planned configuration with its predicted covering probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Vector length.
    pub r: usize,
    /// Entries per process.
    pub k: usize,
    /// Predicted `P_error` at the estimated concurrency.
    pub p_error: f64,
    /// Timestamp wire size in bytes (8-byte entries).
    pub wire_bytes: usize,
}

/// Errors from planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// The target cannot be met within the given maximum vector length.
    Infeasible {
        /// Largest `R` tried.
        max_r: usize,
        /// Best probability achievable at `max_r`.
        best_p: f64,
    },
    /// Inputs out of domain (non-positive concurrency or target).
    InvalidInput,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Infeasible { max_r, best_p } => {
                write!(f, "target unreachable: best P_error at R={max_r} is {best_p:.3e}")
            }
            Self::InvalidInput => write!(f, "concurrency and target must be positive"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Best configuration for a fixed vector length: the error-minimizing `K`
/// and its prediction.
///
/// # Panics
///
/// Panics if `r == 0` or `x <= 0`.
#[must_use]
pub fn best_for_r(r: usize, x: f64) -> Plan {
    let k = optimal_k_integer(r, x);
    Plan { r, k, p_error: error_probability(r, k, x), wire_bytes: r * 8 }
}

/// Smallest `R` (with its optimal `K`) whose predicted `P_error` is at
/// most `target`, searching `R` in `[1, max_r]` by doubling + binary
/// search (the model is monotone decreasing in `R` at optimal `K`).
///
/// # Errors
///
/// [`PlanError::InvalidInput`] for non-positive `x`/`target`;
/// [`PlanError::Infeasible`] when even `max_r` cannot reach the target.
///
/// ```
/// use pcb_analysis::planner::plan_for_target;
/// // Tolerate 1 covering in 10^4 at X = 20 concurrent messages.
/// let plan = plan_for_target(20.0, 1e-4, 10_000)?;
/// assert!(plan.p_error <= 1e-4);
/// assert!(plan.r < 10_000, "far smaller than a vector clock for large N");
/// # Ok::<(), pcb_analysis::planner::PlanError>(())
/// ```
pub fn plan_for_target(x: f64, target: f64, max_r: usize) -> Result<Plan, PlanError> {
    if x.is_nan() || x <= 0.0 || target.is_nan() || target <= 0.0 || max_r == 0 {
        return Err(PlanError::InvalidInput);
    }
    let meets = |r: usize| best_for_r(r, x).p_error <= target;
    if !meets(max_r) {
        return Err(PlanError::Infeasible { max_r, best_p: best_for_r(max_r, x).p_error });
    }
    // Doubling phase.
    let mut hi = 1usize;
    while hi < max_r && !meets(hi) {
        hi = (hi * 2).min(max_r);
    }
    // Binary search for the smallest feasible R in (hi/2, hi].
    let mut lo = (hi / 2).max(1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(best_for_r(hi, x))
}

/// Compression ratio versus a vector clock for `n` processes: how many
/// times smaller the probabilistic timestamp is.
#[must_use]
pub fn compression_vs_vector_clock(plan: &Plan, n: usize) -> f64 {
    (n * 8) as f64 / plan.wire_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_for_r_is_no_worse_than_neighbours() {
        let plan = best_for_r(100, 20.0);
        assert!(plan.k >= 1);
        let p_minus = if plan.k > 1 { error_probability(100, plan.k - 1, 20.0) } else { f64::MAX };
        let p_plus = error_probability(100, plan.k + 1, 20.0);
        assert!(plan.p_error <= p_minus);
        assert!(plan.p_error <= p_plus);
        assert_eq!(plan.wire_bytes, 800);
    }

    #[test]
    fn plan_meets_target() {
        let plan = plan_for_target(20.0, 1e-3, 100_000).unwrap();
        assert!(plan.p_error <= 1e-3);
        // Minimality: R-1 misses the target.
        if plan.r > 1 {
            assert!(best_for_r(plan.r - 1, 20.0).p_error > 1e-3);
        }
    }

    #[test]
    fn plan_rejects_bad_input() {
        assert_eq!(plan_for_target(0.0, 0.1, 100), Err(PlanError::InvalidInput));
        assert_eq!(plan_for_target(5.0, 0.0, 100), Err(PlanError::InvalidInput));
        assert_eq!(plan_for_target(5.0, 0.1, 0), Err(PlanError::InvalidInput));
    }

    #[test]
    fn plan_reports_infeasible() {
        let err = plan_for_target(1000.0, 1e-12, 4).unwrap_err();
        match err {
            PlanError::Infeasible { max_r, best_p } => {
                assert_eq!(max_r, 4);
                assert!(best_p > 1e-12);
            }
            PlanError::InvalidInput => panic!("wrong error variant"),
        }
    }

    #[test]
    fn tighter_target_needs_bigger_vector() {
        let loose = plan_for_target(20.0, 1e-2, 100_000).unwrap();
        let tight = plan_for_target(20.0, 1e-6, 100_000).unwrap();
        assert!(tight.r > loose.r);
    }

    #[test]
    fn compression_ratio() {
        let plan = Plan { r: 100, k: 4, p_error: 0.1, wire_bytes: 800 };
        // N = 10_000 processes: vector clock is 80 kB, ours 800 B.
        assert!((compression_vs_vector_clock(&plan, 10_000) - 100.0).abs() < 1e-12);
    }
}
