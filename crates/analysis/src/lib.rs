//! Closed-form analysis for probabilistic causal message ordering
//! (paper §5.3), plus the statistics utilities the simulator reports with.
//!
//! * [`error_model`] — the Bloom-filter-style covering probability
//!   `P_error(R, K, X)` and the optimal `K = ln(2)·R/X`;
//! * [`planner`] — dimensioning `(R, K)` for a target error rate;
//! * [`stats`] — Welford accumulators, Wilson intervals, quantiles,
//!   histograms.
//!
//! ```
//! use pcb_analysis::{error_probability, optimal_k};
//! // The paper's §5.4.2 working point.
//! assert!((optimal_k(100, 20.0) - 3.47).abs() < 0.01);
//! assert!(error_probability(100, 4, 20.0) < 0.11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error_model;
pub mod planner;
pub mod pnc;
pub mod stats;

pub use error_model::{
    concurrency, entry_covered_probability, error_probability, k_sweep, optimal_k,
    optimal_k_integer, wrong_delivery_bound, TheoryPoint,
};
pub use planner::{best_for_r, compression_vs_vector_clock, plan_for_target, Plan, PlanError};
pub use pnc::{
    causal_reorder_probability, erf, expected_reorder_rate, normal_cdf, predicted_violation_rate,
    reorder_probability,
};
pub use stats::{quantile, wilson_interval, Histogram, Welford};
