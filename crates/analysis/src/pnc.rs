//! Estimating `P_nc` — the network's raw reordering probability.
//!
//! The paper bounds the wrong-delivery probability by `P ≤ P_nc ·
//! P_error` (§5.3) but leaves `P_nc` to the deployment. For the §5.4
//! network model it has a clean closed form: two messages sent `Δ` apart
//! arrive reversed when the difference of their (independent) delays
//! exceeds `Δ`; with per-link delay variance `σ_tot²` the difference is
//! `N(0, 2σ_tot²)`, so
//!
//! ```text
//! P_reorder(Δ) = Φ(−Δ / (σ_tot · √2))
//! ```
//!
//! and for Poisson traffic with aggregate rate `λ` the expected pairwise
//! reorder probability is `∫₀^∞ λe^{−λΔ} Φ(−Δ/(σ_tot√2)) dΔ`, evaluated
//! numerically here. Combined with [`crate::error_model`], this predicts
//! end-to-end violation rates from first principles.

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7 — ample for rate estimates).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ`.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Probability that a message sent `delta_ms` after another arrives
/// before it, when each one-way delay has standard deviation
/// `sigma_total_ms` (per-message σ and per-receiver skew combined:
/// `σ_tot = √(σ² + σ_m²)`).
///
/// # Panics
///
/// Panics if `sigma_total_ms < 0` or `delta_ms < 0`.
#[must_use]
pub fn reorder_probability(delta_ms: f64, sigma_total_ms: f64) -> f64 {
    assert!(delta_ms >= 0.0, "time gap must be non-negative");
    assert!(sigma_total_ms >= 0.0, "sigma must be non-negative");
    if sigma_total_ms == 0.0 {
        return if delta_ms == 0.0 { 0.5 } else { 0.0 };
    }
    normal_cdf(-delta_ms / (sigma_total_ms * std::f64::consts::SQRT_2))
}

/// Expected reorder probability for a random pair of *consecutive*
/// messages under Poisson traffic: `E_Δ[P_reorder(Δ)]` with
/// `Δ ~ Exp(rate)`.
///
/// `rate_per_ms` is the aggregate send rate (messages per millisecond).
/// Evaluated by Simpson's rule over `[0, 10·max(σ, 1/rate)]`.
///
/// # Panics
///
/// Panics if `rate_per_ms <= 0` or `sigma_total_ms < 0`.
#[must_use]
pub fn expected_reorder_rate(rate_per_ms: f64, sigma_total_ms: f64) -> f64 {
    assert!(rate_per_ms > 0.0, "rate must be positive");
    assert!(sigma_total_ms >= 0.0, "sigma must be non-negative");
    if sigma_total_ms == 0.0 {
        return 0.0;
    }
    let horizon = 10.0 * sigma_total_ms.max(1.0 / rate_per_ms);
    let steps = 2000;
    let h = horizon / steps as f64;
    let f = |delta: f64| {
        rate_per_ms * (-rate_per_ms * delta).exp() * reorder_probability(delta, sigma_total_ms)
    };
    let mut acc = f(0.0) + f(horizon);
    for i in 1..steps {
        let x = i as f64 * h;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// Reorder probability for a *causally related* pair: `m → m'` means the
/// sender of `m'` first had to **deliver** `m`, so the send gap is a full
/// propagation delay `D₀ ~ N(μ, σ_tot²)` plus any think time `gap_ms`.
/// The overtake condition `D₁ > D₀ + gap + D₂` involves three independent
/// delays:
///
/// ```text
/// P = Φ(−(μ + gap) / (σ_tot · √3))
/// ```
///
/// This is why the paper observes that systems whose inter-message time
/// exceeds the transit time rarely violate causality even without control.
///
/// # Panics
///
/// Panics if `gap_ms < 0` or `sigma_total_ms < 0`.
#[must_use]
pub fn causal_reorder_probability(mean_delay_ms: f64, gap_ms: f64, sigma_total_ms: f64) -> f64 {
    assert!(gap_ms >= 0.0, "gap must be non-negative");
    assert!(sigma_total_ms >= 0.0, "sigma must be non-negative");
    if sigma_total_ms == 0.0 {
        return 0.0;
    }
    normal_cdf(-(mean_delay_ms + gap_ms) / (sigma_total_ms * 3.0f64.sqrt()))
}

/// First-principles violation-rate estimate: `P_nc · P_error(R, K, X)`,
/// with `P_nc` the zero-think-time causal reorder probability (an upper
/// flavour: the pending buffer absorbs some reorders, so measured rates
/// land below this, typically within an order of magnitude).
///
/// `sigma_total_ms = √(σ² + σ_m²)` for the paper's model.
#[must_use]
pub fn predicted_violation_rate(
    r: usize,
    k: usize,
    aggregate_rate_per_sec: f64,
    mean_delay_ms: f64,
    sigma_total_ms: f64,
) -> f64 {
    let x = crate::error_model::concurrency(aggregate_rate_per_sec, mean_delay_ms / 1000.0);
    let p_nc = causal_reorder_probability(mean_delay_ms, 0.0, sigma_total_ms);
    p_nc * crate::error_model::error_probability(r, k, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        for x in [0.5, 1.0, 1.96, 3.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn reorder_probability_shapes() {
        // Simultaneous sends: a coin flip.
        assert!((reorder_probability(0.0, 20.0) - 0.5).abs() < 1e-8);
        // Monotone decreasing in the gap.
        let mut prev = 0.6;
        for delta in [0.0, 10.0, 30.0, 60.0, 120.0] {
            let p = reorder_probability(delta, 20.0);
            assert!(p <= prev);
            prev = p;
        }
        // Wider delay spread reorders more.
        assert!(reorder_probability(20.0, 40.0) > reorder_probability(20.0, 10.0));
        // Degenerate deterministic network never reorders spaced sends.
        assert_eq!(reorder_probability(5.0, 0.0), 0.0);
    }

    #[test]
    fn expected_rate_integrates_sensibly() {
        // The paper's model: 200 msg/s aggregate, σ_tot = √(20² + 20²) ≈ 28.3.
        let p = expected_reorder_rate(0.2, 28.28);
        assert!(p > 0.0 && p < 0.5, "p = {p}");
        // Faster traffic (smaller gaps) reorders more.
        assert!(expected_reorder_rate(1.0, 28.28) > p);
        // Quieter network reorders less.
        assert!(expected_reorder_rate(0.01, 28.28) < p);
        assert_eq!(expected_reorder_rate(0.2, 0.0), 0.0);
    }

    #[test]
    fn causal_reorder_shrinks_with_delay_and_gap() {
        let base = causal_reorder_probability(100.0, 0.0, 28.28);
        assert!(base > 0.0 && base < 0.1, "paper model P_nc ≈ 2%: {base}");
        assert!(causal_reorder_probability(100.0, 100.0, 28.28) < base);
        assert!(causal_reorder_probability(50.0, 0.0, 28.28) > base);
        assert_eq!(causal_reorder_probability(100.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn predicted_rate_is_product() {
        let pred = predicted_violation_rate(100, 4, 200.0, 100.0, 28.28);
        let p_nc = causal_reorder_probability(100.0, 0.0, 28.28);
        let p_err = crate::error_model::error_probability(100, 4, 20.0);
        assert!((pred - p_nc * p_err).abs() < 1e-12);
        assert!(pred < p_err, "P_nc must discount the covering probability");
        // The paper's design point: prediction lands in the right decade
        // relative to the measured ~3.4e-4 (see EXPERIMENTS.md).
        assert!(pred > 1e-4 && pred < 1e-2, "pred = {pred}");
    }
}
