//! Streaming statistics used by the simulator's metric collection.

/// Online mean/variance accumulator (Welford's algorithm) — numerically
/// stable over the hundreds of millions of samples a long simulation
/// produces.
///
/// ```
/// use pcb_analysis::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wilson score interval for a binomial proportion — the error bars the
/// experiment reports attach to measured violation rates.
///
/// Returns `(low, high)` at approximately the given z (1.96 ≈ 95%).
///
/// ```
/// use pcb_analysis::stats::wilson_interval;
/// let (lo, hi) = wilson_interval(10, 1000, 1.96);
/// assert!(lo < 0.01 && 0.01 < hi);
/// ```
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - margin).max(0.0), (center + margin).min(1.0))
}

/// Exact quantile of a sample by sorting (nearest-rank). Suitable for the
/// tens of thousands of latency samples a run retains.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(samples: &mut [f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    Some(samples[rank - 1])
}

/// Fixed-bucket histogram for delivery-delay distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each,
    /// starting at zero; larger samples land in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width <= 0` or `buckets == 0`.
    #[must_use]
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self { bucket_width, buckets: vec![0; buckets], overflow: 0, count: 0 }
    }

    /// Records a (non-negative) sample; negatives clamp to bucket 0.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let idx = (x.max(0.0) / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Bucket counts (excluding overflow).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        let naive_var = data.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((w.sample_variance() - naive_var).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.stddev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for &(s, n) in &[(0u64, 100u64), (5, 100), (50, 100), (100, 100)] {
            let (lo, hi) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({s},{n}) p={p} not in [{lo},{hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_n() {
        let (lo1, hi1) = wilson_interval(10, 100, 1.96);
        let (lo2, hi2) = wilson_interval(1000, 10000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_zero_trials() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut data = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&mut data, 0.5), Some(3.0));
        assert_eq!(quantile(&mut data, 1.0), Some(5.0));
        assert_eq!(quantile(&mut data, 0.0), Some(1.0));
        assert_eq!(quantile(&mut [], 0.5), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 3);
        for x in [0.0, 5.0, 15.0, 25.0, 99.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[3, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
    }
}
