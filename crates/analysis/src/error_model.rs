//! The closed-form error model of paper §5.3.
//!
//! A delayed message `m` can be wrongly delivered only if concurrent
//! messages cover all `K` of its sender's entries. Modelling each of the
//! `X` concurrent messages as incrementing `K` uniformly random entries of
//! the `R`-entry vector — the same independence approximation as a Bloom
//! filter's false-positive analysis — gives
//!
//! ```text
//! P_error(R, K, X) = (1 - (1 - 1/R)^(K·X))^K
//! ```
//!
//! which is minimized at `K_min = ln(2) · R / X`. The overall probability
//! of a wrong delivery is bounded by `P <= P_nc · P_error`, where `P_nc`
//! is the network's probability that a message overtakes a causal
//! predecessor at all.

/// Probability that one specific vector entry is touched by at least one
/// of `x` concurrent messages, each incrementing `k` of `r` entries.
///
/// # Panics
///
/// Panics if `r == 0`.
///
/// ```
/// use pcb_analysis::error_model::entry_covered_probability;
/// let p = entry_covered_probability(100, 4, 20.0);
/// assert!(p > 0.55 && p < 0.56); // 1 - 0.99^80
/// ```
#[must_use]
pub fn entry_covered_probability(r: usize, k: usize, x: f64) -> f64 {
    assert!(r > 0, "vector length R must be positive");
    1.0 - (1.0 - 1.0 / r as f64).powf(k as f64 * x)
}

/// `P_error(R, K, X)`: probability that all `K` entries of a delayed
/// message are covered by `X` concurrent messages (paper §5.3).
///
/// # Panics
///
/// Panics if `r == 0`.
///
/// ```
/// use pcb_analysis::error_model::error_probability;
/// // The paper's working point: R = 100, K = 4, X = 20 concurrent msgs.
/// let p = error_probability(100, 4, 20.0);
/// assert!(p > 0.09 && p < 0.11);
/// ```
#[must_use]
pub fn error_probability(r: usize, k: usize, x: f64) -> f64 {
    entry_covered_probability(r, k, x).powi(k as i32)
}

/// The real-valued `K` minimizing [`error_probability`]:
/// `K_min = ln(2) · R / X` (paper §5.3).
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// ```
/// use pcb_analysis::error_model::optimal_k;
/// let k = optimal_k(100, 20.0);
/// assert!((k - 3.465).abs() < 0.01); // the paper's "theoretical 3.5"
/// ```
#[must_use]
pub fn optimal_k(r: usize, x: f64) -> f64 {
    assert!(x > 0.0, "concurrency X must be positive");
    std::f64::consts::LN_2 * r as f64 / x
}

/// The integer `K` with the lowest predicted error (checks the two
/// integers around [`optimal_k`], clamped to `[1, r]`).
///
/// ```
/// use pcb_analysis::error_model::optimal_k_integer;
/// assert_eq!(optimal_k_integer(100, 20.0), 3); // theory: 3.47 -> 3 beats 4
/// ```
#[must_use]
pub fn optimal_k_integer(r: usize, x: f64) -> usize {
    let ideal = optimal_k(r, x);
    let lo = (ideal.floor() as usize).clamp(1, r);
    let hi = (ideal.ceil() as usize).clamp(1, r);
    if error_probability(r, lo, x) <= error_probability(r, hi, x) {
        lo
    } else {
        hi
    }
}

/// Upper bound on the probability of an actual wrong delivery:
/// `P <= P_nc · P_error` where `p_nc` is the probability that a message
/// is received after a causal successor (network reordering rate).
#[must_use]
pub fn wrong_delivery_bound(r: usize, k: usize, x: f64, p_nc: f64) -> f64 {
    p_nc * error_probability(r, k, x)
}

/// Expected number of in-flight ("concurrent") messages: aggregate send
/// rate times mean propagation delay — the paper's `X` (e.g. 200 msg/s ×
/// 0.1 s = 20).
#[must_use]
pub fn concurrency(aggregate_rate_per_sec: f64, mean_delay_sec: f64) -> f64 {
    aggregate_rate_per_sec * mean_delay_sec
}

/// One row of the theory table printed by the `table-theory` harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryPoint {
    /// Entries per process.
    pub k: usize,
    /// Predicted covering probability `P_error`.
    pub p_error: f64,
}

/// `P_error` for each `K` in `1..=k_max` at fixed `(R, X)` — the theory
/// curve behind Figure 3.
#[must_use]
pub fn k_sweep(r: usize, k_max: usize, x: f64) -> Vec<TheoryPoint> {
    (1..=k_max.min(r)).map(|k| TheoryPoint { k, p_error: error_probability(r, k, x) }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_probability_monotone_in_load() {
        let base = entry_covered_probability(100, 4, 10.0);
        let more_msgs = entry_covered_probability(100, 4, 30.0);
        let more_keys = entry_covered_probability(100, 8, 10.0);
        assert!(more_msgs > base);
        assert!(more_keys > base);
    }

    #[test]
    fn entry_probability_decreases_with_r() {
        assert!(entry_covered_probability(200, 4, 20.0) < entry_covered_probability(100, 4, 20.0));
    }

    #[test]
    fn error_probability_bounds() {
        for &(r, k, x) in &[(100usize, 4usize, 20.0f64), (10, 2, 5.0), (1000, 7, 100.0)] {
            let p = error_probability(r, k, x);
            assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        }
        // Zero concurrency: no covering possible.
        assert_eq!(error_probability(100, 4, 0.0), 0.0);
    }

    #[test]
    fn lamport_extreme_always_errs_under_load() {
        // R = K = 1: a single shared entry is covered by any concurrent
        // message, so P_error -> 1 quickly.
        let p = error_probability(1, 1, 5.0);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimum_is_interior_minimum() {
        // The paper's intuition: some 1 < K < R beats both extremes.
        let r = 100;
        let x = 20.0;
        let best = optimal_k_integer(r, x);
        assert!(best > 1 && best < r);
        let p_best = error_probability(r, best, x);
        assert!(p_best < error_probability(r, 1, x));
        assert!(p_best < error_probability(r, 20, x));
        // Discrete curve is unimodal around the optimum.
        for k in 1..best {
            assert!(error_probability(r, k, x) >= error_probability(r, k + 1, x));
        }
        for k in best..30 {
            assert!(error_probability(r, k + 1, x) >= error_probability(r, k, x));
        }
    }

    #[test]
    fn paper_working_point() {
        // §5.4.2: R = 100, X = 20 -> ln2 * 100/20 ≈ 3.47 ("3.5" in text),
        // and the measured best K in Figure 3 is 4 — both 3 and 4 must be
        // near-optimal in the model.
        let ideal = optimal_k(100, 20.0);
        assert!((3.0..4.0).contains(&ideal));
        let p3 = error_probability(100, 3, 20.0);
        let p4 = error_probability(100, 4, 20.0);
        assert!((p3 - p4).abs() / p3 < 0.15, "K=3 and K=4 within 15%: {p3} vs {p4}");
    }

    #[test]
    fn half_coverage_at_optimum() {
        // At K_min the per-entry coverage probability is 1/2 (the Bloom
        // filter sweet spot).
        let r = 1000;
        let x = 50.0;
        let k = optimal_k(r, x);
        let p = entry_covered_probability(r, k.round() as usize, x);
        assert!((p - 0.5).abs() < 0.02, "coverage at optimum ≈ 1/2, got {p}");
    }

    #[test]
    fn bound_scales_with_pnc() {
        let p = wrong_delivery_bound(100, 4, 20.0, 0.01);
        assert!((p - 0.01 * error_probability(100, 4, 20.0)).abs() < 1e-15);
    }

    #[test]
    fn concurrency_of_paper_config() {
        // 200 msg/s aggregate, 100 ms delay -> X = 20.
        assert!((concurrency(200.0, 0.1) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn k_sweep_covers_range() {
        let sweep = k_sweep(100, 10, 20.0);
        assert_eq!(sweep.len(), 10);
        assert_eq!(sweep[0].k, 1);
        assert_eq!(sweep[9].k, 10);
        let best = sweep.iter().min_by(|a, b| a.p_error.total_cmp(&b.p_error)).unwrap();
        assert!(best.k == 3 || best.k == 4);
    }
}
