//! Convergence properties: the CRDT layer over causal broadcast.

use pcb_broadcast::Message;
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProcessId};
use pcb_crdt::{Counter, OrSet, Replica, Rga, HEAD};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Replicas over the exact (N, 1) clock configuration: the broadcast
/// layer guarantees causal delivery, so the CRDTs must converge under
/// every schedule.
fn exact_replicas<C: pcb_crdt::OpBased>(n: usize, make: impl Fn(usize) -> C) -> Vec<Replica<C>> {
    let space = KeySpace::vector(n).expect("valid");
    let mut assigner = KeyAssigner::new(space, AssignmentPolicy::RoundRobin, 0);
    (0..n)
        .map(|i| Replica::new(ProcessId::new(i), assigner.next_set().expect("keys"), make(i)))
        .collect()
}

/// Runs a random update/delivery schedule until every message reaches
/// every replica; `update` performs one random local mutation.
fn churn_schedule<C: pcb_crdt::OpBased>(
    replicas: &mut [Replica<C>],
    rng: &mut StdRng,
    rounds: usize,
    mut update: impl FnMut(&mut Replica<C>, &mut StdRng) -> Option<Message<C::Op>>,
) where
    C::Op: Clone,
{
    let n = replicas.len();
    let mut in_flight: Vec<(usize, Message<C::Op>, Vec<bool>)> = Vec::new();
    let mut clock = 0u64;
    for _ in 0..rounds {
        let actor = rng.random_range(0..n);
        // Deliver a random subset of in-flight messages to the actor.
        for (origin, msg, delivered) in &mut in_flight {
            if *origin != actor && !delivered[actor] && rng.random_bool(0.6) {
                clock += 1;
                replicas[actor].on_receive(msg.clone(), clock);
                delivered[actor] = true;
            }
        }
        if let Some(msg) = update(&mut replicas[actor], rng) {
            let mut delivered = vec![false; n];
            delivered[actor] = true;
            in_flight.push((actor, msg, delivered));
        }
    }
    // Drain: deliver everything still missing.
    for (origin, msg, delivered) in in_flight {
        for (target, got) in delivered.iter().enumerate() {
            if target != origin && !got {
                clock += 1;
                replicas[target].on_receive(msg.clone(), clock);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn orset_converges_under_causal_broadcast(seed in 0u64..5000, rounds in 4usize..40) {
        let n = 4;
        let mut replicas = exact_replicas(n, |i| OrSet::new(i as u64 + 1));
        let mut rng = StdRng::seed_from_u64(seed);
        let items = ["a", "b", "c", "d"];
        churn_schedule(&mut replicas, &mut rng, rounds, |r, rng| {
            let item = items[rng.random_range(0..items.len())];
            if rng.random_bool(0.6) {
                r.update(|s| Some(s.add(item)))
            } else {
                r.update(|s| s.remove(&item))
            }
        });
        let reference = replicas[0].state().digest();
        for (i, r) in replicas.iter().enumerate() {
            prop_assert_eq!(
                r.state().digest(),
                reference.clone(),
                "replica {} diverged",
                i
            );
            prop_assert_eq!(r.endpoint().pending_len(), 0, "all messages deliverable");
        }
    }

    #[test]
    fn rga_converges_under_causal_broadcast(seed in 0u64..5000, rounds in 4usize..30) {
        let n = 3;
        let mut replicas = exact_replicas(n, |i| Rga::new(i as u64 + 1));
        let mut rng = StdRng::seed_from_u64(seed);
        let alphabet: Vec<char> = "abcdefgh".chars().collect();
        churn_schedule(&mut replicas, &mut rng, rounds, |r, rng| {
            let ch = alphabet[rng.random_range(0..alphabet.len())];
            if rng.random_bool(0.75) {
                // Insert at the head: with concurrent editors this still
                // exercises the deterministic sibling ordering on every
                // replica (position-targeted inserts are covered by the
                // unit tests).
                r.update(|doc| doc.insert_after(HEAD, ch))
            } else {
                r.update(|doc| {
                    let len = doc.text().chars().count();
                    if len == 0 {
                        None
                    } else {
                        doc.delete_at(rng.random_range(0..len))
                    }
                })
            }
        });
        let reference = replicas[0].state().text();
        for (i, r) in replicas.iter().enumerate() {
            prop_assert_eq!(r.state().text(), reference.clone(), "replica {} diverged", i);
            prop_assert_eq!(r.state().orphan_count(), 0, "causal guard forbids orphans");
        }
    }

    #[test]
    fn counter_converges_even_without_ordering(seed in 0u64..5000, rounds in 4usize..40) {
        // Counters commute: apply ops in arbitrary (non-causal) order —
        // straight to the CRDT, bypassing the guard — and still converge.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        let mut writer = Counter::new();
        for _ in 0..rounds {
            if rng.random_bool(0.5) {
                ops.push(writer.increment(rng.random_range(1..10)));
            } else {
                ops.push(writer.decrement(rng.random_range(1..10)));
            }
        }
        let mut shuffled = ops.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut reader = Counter::new();
        for op in &shuffled {
            reader.apply(op);
        }
        prop_assert_eq!(reader.value(), writer.value());
    }

    #[test]
    fn orset_bypass_guard_can_diverge_but_guard_never_does(
        seed in 0u64..2000,
    ) {
        // The concrete anomaly: add₁ -> remove(observed add₁) -> add₂ on
        // one writer. A reader applying ops through the causal guard
        // always ends with exactly {x via add₂}; a reader applying the
        // raw ops in a bad order can first remove, then re-add the
        // *removed* tag... our tombstones absorb that, but the subtler
        // partial-observation anomaly below does diverge.
        let mut rng = StdRng::seed_from_u64(seed);
        let space = KeySpace::vector(3).unwrap();
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::RoundRobin, 0);
        let k0 = assigner.next_set().unwrap();
        let k1 = assigner.next_set().unwrap();

        let mut writer = Replica::new(ProcessId::new(0), k0, OrSet::new(1));
        let m_add1 = writer.update(|s| Some(s.add("x"))).unwrap();
        let m_rm = writer.update(|s| s.remove(&"x")).unwrap();
        let m_add2 = writer.update(|s| Some(s.add("x"))).unwrap();

        // Guarded reader, random arrival order: always converges to the
        // writer's state.
        let mut msgs = [m_add1, m_rm, m_add2];
        for i in (1..msgs.len()).rev() {
            let j = rng.random_range(0..=i);
            msgs.swap(i, j);
        }
        let mut reader = Replica::new(ProcessId::new(1), k1, OrSet::new(2));
        for (t, m) in msgs.iter().enumerate() {
            reader.on_receive(m.clone(), t as u64);
        }
        prop_assert_eq!(reader.state().digest(), writer.state().digest());
        prop_assert!(reader.state().contains(&"x"));
    }
}
