//! Binding CRDTs to the causal broadcast endpoint.
//!
//! A [`Replica`] owns an op-based CRDT and a [`PcbProcess`]: local updates
//! apply immediately and return the stamped broadcast message; received
//! messages pass through the causal guard before their operations touch
//! the CRDT. This is the full stack of the paper's motivating
//! applications — replicated data + probabilistic causal ordering.

use pcb_broadcast::{Delivery, Message, PcbProcess};
use pcb_clock::{KeySet, ProcessId};

use crate::counter::{Counter, CounterOp};
use crate::orset::OrSet;
use crate::rga::Rga;

/// An operation-based CRDT: applies (commutative-under-causal-order)
/// operations.
pub trait OpBased {
    /// The operation type broadcast between replicas.
    type Op: Clone;

    /// Applies a remote operation (local operations are applied by the
    /// datatype's own mutator methods, which also produce the op).
    fn apply_op(&mut self, op: &Self::Op);
}

impl<E: Ord + Clone> OpBased for OrSet<E> {
    type Op = crate::orset::OrSetOp<E>;

    fn apply_op(&mut self, op: &Self::Op) {
        self.apply(op);
    }
}

impl OpBased for Rga {
    type Op = crate::rga::RgaOp;

    fn apply_op(&mut self, op: &Self::Op) {
        let _ = self.apply(op);
    }
}

impl OpBased for Counter {
    type Op = CounterOp;

    fn apply_op(&mut self, op: &Self::Op) {
        self.apply(op);
    }
}

/// A CRDT replica wired to a probabilistic causal broadcast endpoint.
///
/// ```
/// use pcb_crdt::{OrSet, Replica};
/// use pcb_clock::{KeySet, KeySpace, ProcessId};
///
/// let space = KeySpace::new(8, 2)?;
/// let mut alice = Replica::new(
///     ProcessId::new(0),
///     KeySet::from_entries(space, &[0, 1])?,
///     OrSet::new(1),
/// );
/// let mut bob = Replica::new(
///     ProcessId::new(1),
///     KeySet::from_entries(space, &[2, 3])?,
///     OrSet::new(2),
/// );
///
/// let msg = alice.update(|set| Some(set.add("milk"))).expect("op emitted");
/// bob.on_receive(msg, 0);
/// assert!(bob.state().contains(&"milk"));
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug)]
pub struct Replica<C: OpBased> {
    crdt: C,
    endpoint: PcbProcess<C::Op>,
}

impl<C: OpBased> Replica<C> {
    /// Wires `crdt` to a fresh endpoint.
    #[must_use]
    pub fn new(id: ProcessId, keys: KeySet, crdt: C) -> Self {
        Self { crdt, endpoint: PcbProcess::new(id, keys) }
    }

    /// Runs a local update. The closure mutates the CRDT through its own
    /// mutators and returns the op they produced (or `None` for a no-op,
    /// e.g. removing an absent element); the op is then stamped for
    /// broadcast.
    pub fn update(&mut self, f: impl FnOnce(&mut C) -> Option<C::Op>) -> Option<Message<C::Op>> {
        let op = f(&mut self.crdt)?;
        Some(self.endpoint.broadcast(op))
    }

    /// Handles a message from the transport at local time `now`: the
    /// causal guard may deliver zero or more buffered operations, each of
    /// which is applied to the CRDT. Returns the deliveries (with their
    /// detector verdicts).
    pub fn on_receive(&mut self, message: Message<C::Op>, now: u64) -> Vec<Delivery<C::Op>> {
        let deliveries = self.endpoint.on_receive(message, now);
        for d in &deliveries {
            self.crdt.apply_op(d.message.payload());
        }
        deliveries
    }

    /// The replicated datatype.
    #[must_use]
    pub fn state(&self) -> &C {
        &self.crdt
    }

    /// The underlying protocol endpoint (stats, pending queue, clock).
    #[must_use]
    pub fn endpoint(&self) -> &PcbProcess<C::Op> {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_clock::KeySpace;

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(KeySpace::new(6, 2).unwrap(), entries).unwrap()
    }

    #[test]
    fn orset_over_broadcast_end_to_end() {
        let mut a = Replica::new(ProcessId::new(0), keys(&[0, 1]), OrSet::new(1));
        let mut b = Replica::new(ProcessId::new(1), keys(&[2, 3]), OrSet::new(2));

        let add = a.update(|s| Some(s.add("x"))).unwrap();
        assert_eq!(b.on_receive(add, 0).len(), 1);
        let remove = b.update(|s| s.remove(&"x")).unwrap();
        a.on_receive(remove, 1);

        assert!(!a.state().contains(&"x"));
        assert!(!b.state().contains(&"x"));
        assert_eq!(a.state().digest(), b.state().digest());
    }

    #[test]
    fn update_returning_none_broadcasts_nothing() {
        let mut a: Replica<OrSet<&str>> =
            Replica::new(ProcessId::new(0), keys(&[0, 1]), OrSet::new(1));
        assert!(a.update(|s| s.remove(&"absent")).is_none());
        assert_eq!(a.endpoint().stats().sent, 0);
    }

    #[test]
    fn causal_guard_protects_rga_from_reordering() {
        use crate::rga::HEAD;
        let mut writer = Replica::new(ProcessId::new(0), keys(&[0, 1]), Rga::new(1));
        let m1 = writer.update(|doc| doc.insert_after(HEAD, 'a')).unwrap();
        let parent = match m1.payload() {
            crate::rga::RgaOp::Insert { id, .. } => *id,
            crate::rga::RgaOp::Delete { .. } => unreachable!(),
        };
        let m2 = writer.update(|doc| doc.insert_after(parent, 'b')).unwrap();

        // Reader gets them reversed: the guard buffers m2 until m1 lands,
        // so the RGA never even sees an orphan.
        let mut reader = Replica::new(ProcessId::new(1), keys(&[2, 3]), Rga::new(2));
        assert!(reader.on_receive(m2, 0).is_empty());
        let flushed = reader.on_receive(m1, 1);
        assert_eq!(flushed.len(), 2);
        assert_eq!(reader.state().text(), "ab");
        assert_eq!(reader.state().orphan_count(), 0);
    }

    #[test]
    fn counter_replica_converges() {
        let mut a = Replica::new(ProcessId::new(0), keys(&[0, 1]), Counter::new());
        let mut b = Replica::new(ProcessId::new(1), keys(&[2, 3]), Counter::new());
        let m1 = a.update(|c| Some(c.increment(10))).unwrap();
        let m2 = b.update(|c| Some(c.decrement(4))).unwrap();
        a.on_receive(m2, 0);
        b.on_receive(m1, 0);
        assert_eq!(a.state().value(), 6);
        assert_eq!(b.state().value(), 6);
    }
}
