//! Observed-Remove Set (OR-Set): the canonical op-based CRDT that *needs*
//! causal delivery.
//!
//! `add(e)` generates a globally unique tag; `remove(e)` removes exactly
//! the tags the remover has *observed*. Under causal delivery a remove is
//! always applied after every add it observed, so "add wins over
//! concurrent remove" holds and replicas converge. Without causal order a
//! remove can arrive before its adds — the tags survive and the element
//! wrongly resurrects (the anomaly the `orset_replicas` example counts).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// A unique tag: (replica id, per-replica counter).
pub type Tag = (u64, u64);

/// OR-Set operations, broadcast to all replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrSetOp<E> {
    /// Insert `element` with a fresh unique tag.
    Add {
        /// The element.
        element: E,
        /// Its unique tag.
        tag: Tag,
    },
    /// Remove the *observed* tags of `element`.
    Remove {
        /// The element.
        element: E,
        /// Tags observed by the remover at remove time.
        tags: Vec<Tag>,
    },
}

/// An OR-Set replica.
///
/// ```
/// use pcb_crdt::OrSet;
/// let mut a = OrSet::new(1);
/// let add = a.add("x");
/// let mut b = OrSet::new(2);
/// b.apply(&add);
/// let remove = b.remove(&"x").expect("x is present at b");
/// a.apply(&remove);
/// assert!(!a.contains(&"x"));
/// assert_eq!(a.elements().count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrSet<E: Ord + Clone> {
    replica: u64,
    counter: u64,
    live: BTreeMap<E, BTreeSet<Tag>>,
    /// Tombstones guard against *FIFO-violating* redelivery of adds whose
    /// remove already applied (cannot happen under causal delivery; kept
    /// so the anomaly experiments measure semantics, not crashes).
    removed: BTreeSet<Tag>,
}

impl<E: Ord + Clone> OrSet<E> {
    /// An empty set owned by `replica` (unique per process).
    #[must_use]
    pub fn new(replica: u64) -> Self {
        Self { replica, counter: 0, live: BTreeMap::new(), removed: BTreeSet::new() }
    }

    /// Local add: applies immediately and returns the op to broadcast.
    pub fn add(&mut self, element: E) -> OrSetOp<E> {
        self.counter += 1;
        let op = OrSetOp::Add { element, tag: (self.replica, self.counter) };
        self.apply(&op);
        op
    }

    /// Local remove: applies immediately and returns the op to broadcast;
    /// `None` if the element is not currently present.
    pub fn remove(&mut self, element: &E) -> Option<OrSetOp<E>> {
        let tags: Vec<Tag> = self.live.get(element)?.iter().copied().collect();
        if tags.is_empty() {
            return None;
        }
        let op = OrSetOp::Remove { element: element.clone(), tags };
        self.apply(&op);
        Some(op)
    }

    /// Applies a (local or remote) operation.
    pub fn apply(&mut self, op: &OrSetOp<E>) {
        match op {
            OrSetOp::Add { element, tag } => {
                if !self.removed.contains(tag) {
                    self.live.entry(element.clone()).or_default().insert(*tag);
                }
            }
            OrSetOp::Remove { element, tags } => {
                if let Some(live) = self.live.get_mut(element) {
                    for tag in tags {
                        live.remove(tag);
                    }
                    if live.is_empty() {
                        self.live.remove(element);
                    }
                }
                self.removed.extend(tags.iter().copied());
            }
        }
    }

    /// Whether `element` is in the set.
    #[must_use]
    pub fn contains(&self, element: &E) -> bool {
        self.live.contains_key(element)
    }

    /// Iterates over current elements in order.
    pub fn elements(&self) -> impl Iterator<Item = &E> {
        self.live.keys()
    }

    /// Number of distinct elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Internal state digest for convergence checks: (element, tags) pairs.
    #[must_use]
    pub fn digest(&self) -> Vec<(E, Vec<Tag>)> {
        self.live.iter().map(|(e, tags)| (e.clone(), tags.iter().copied().collect())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_remove_round_trip() {
        let mut s = OrSet::new(1);
        s.add(7);
        assert!(s.contains(&7));
        let _ = s.remove(&7).unwrap();
        assert!(!s.contains(&7));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_absent_returns_none() {
        let mut s: OrSet<i32> = OrSet::new(1);
        assert!(s.remove(&1).is_none());
    }

    #[test]
    fn add_wins_over_concurrent_remove() {
        // a adds x (tag A1); b observed only an older add and removes it;
        // the newer add survives.
        let mut a = OrSet::new(1);
        let mut b = OrSet::new(2);
        let add1 = a.add("x");
        b.apply(&add1);
        let remove = b.remove(&"x").unwrap(); // removes tag of add1 only
        let add2 = a.add("x"); // concurrent with the remove
        a.apply(&remove);
        b.apply(&add2);
        assert!(a.contains(&"x"), "concurrent add must win at a");
        assert!(b.contains(&"x"), "concurrent add must win at b");
        assert_eq!(a.digest(), b.digest(), "replicas converge");
    }

    #[test]
    fn causal_order_converges() {
        // Ops applied in any causal-consistent order converge.
        let mut a = OrSet::new(1);
        let mut b = OrSet::new(2);
        let op1 = a.add("x");
        let op2 = a.add("y");
        b.apply(&op1);
        let op3 = b.remove(&"x").unwrap();
        b.apply(&op2);
        a.apply(&op3);
        assert_eq!(a.digest(), b.digest());
        assert!(!a.contains(&"x") && a.contains(&"y"));
    }

    #[test]
    fn unordered_delivery_causes_resurrection() {
        // The anomaly causal broadcast prevents: a remove applied before
        // the add it observed lets the add resurrect the element.
        let mut writer = OrSet::new(1);
        let add = writer.add("x");
        let remove = writer.remove(&"x").unwrap();

        let mut ordered = OrSet::new(2);
        ordered.apply(&add);
        ordered.apply(&remove);
        assert!(!ordered.contains(&"x"));

        let mut reordered = OrSet::new(3);
        reordered.apply(&remove); // arrives first: tags unknown
        reordered.apply(&add); // resurrects without tombstones...
                               // ...but our tombstone guard absorbs exactly this case:
        assert!(!reordered.contains(&"x"), "tombstones absorb remove-before-add of *known* tags");
        // The unfixable anomaly is a remove that lists only part of the
        // adds because causality was broken upstream — see the replica
        // property tests for the end-to-end divergence measurement.
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = OrSet::new(1);
        a.add(3);
        a.add(1);
        a.add(2);
        let d = a.digest();
        assert_eq!(d.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
