//! A Replicated Growable Array (RGA) — collaborative text editing, the
//! paper's flagship motivation (§1, refs [10][14]).
//!
//! Each character is inserted *after* an existing character's id; ties
//! between concurrent inserts at the same position are broken by id so
//! all replicas linearize identically. `insert` **requires causal
//! delivery**: the parent id must already be present. Under unordered
//! delivery an insert can reference an unseen parent — the op is lost or
//! deferred and replicas diverge (measured by the replica experiments).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identity of one inserted element: (replica, counter). Ordered so
/// concurrent siblings sort deterministically (newer-first, then replica).
pub type ElemId = (u64, u64);

/// Sentinel parent for inserts at the head of the document.
pub const HEAD: ElemId = (0, 0);

/// RGA operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RgaOp {
    /// Insert `ch` after the element `parent`.
    Insert {
        /// New element id.
        id: ElemId,
        /// Element to insert after ([`HEAD`] for the front).
        parent: ElemId,
        /// The character.
        ch: char,
    },
    /// Tombstone the element `id`.
    Delete {
        /// Element to delete.
        id: ElemId,
    },
}

#[derive(Debug, Clone)]
struct Node {
    id: ElemId,
    ch: char,
    deleted: bool,
    children: Vec<usize>,
}

/// One replica of the text document.
///
/// ```
/// use pcb_crdt::{Rga, HEAD};
/// let mut a = Rga::new(1);
/// let op1 = a.insert_after(HEAD, 'h').unwrap();
/// let op2 = a.insert_after(op1_id(&op1), 'i').unwrap();
/// assert_eq!(a.text(), "hi");
/// # fn op1_id(op: &pcb_crdt::RgaOp) -> pcb_crdt::ElemId {
/// #     match op { pcb_crdt::RgaOp::Insert { id, .. } => *id, _ => unreachable!() }
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rga {
    replica: u64,
    counter: u64,
    nodes: Vec<Node>,
    index: HashMap<ElemId, usize>,
    /// Ops whose parent has not arrived (only possible when the transport
    /// violated causal order); retried as parents appear.
    orphans: Vec<RgaOp>,
}

impl Rga {
    /// An empty document owned by `replica` (must be nonzero and unique).
    ///
    /// # Panics
    ///
    /// Panics if `replica == 0` (reserved for [`HEAD`]).
    #[must_use]
    pub fn new(replica: u64) -> Self {
        assert!(replica != 0, "replica id 0 is reserved for HEAD");
        let head = Node { id: HEAD, ch: '\0', deleted: true, children: Vec::new() };
        let mut index = HashMap::new();
        index.insert(HEAD, 0);
        Self { replica, counter: 0, nodes: vec![head], index, orphans: Vec::new() }
    }

    /// Local insert after `parent`; applies immediately and returns the
    /// op to broadcast, or `None` if `parent` is unknown here.
    pub fn insert_after(&mut self, parent: ElemId, ch: char) -> Option<RgaOp> {
        if !self.index.contains_key(&parent) {
            return None;
        }
        self.counter += 1;
        let op = RgaOp::Insert { id: (self.replica, self.counter), parent, ch };
        self.apply(&op);
        Some(op)
    }

    /// Local delete of the element at visible position `pos`; applies
    /// immediately and returns the op to broadcast.
    pub fn delete_at(&mut self, pos: usize) -> Option<RgaOp> {
        let id = self.visible_ids().nth(pos)?;
        let op = RgaOp::Delete { id };
        self.apply(&op);
        Some(op)
    }

    /// Applies a (local or remote) operation. Returns `false` when the
    /// op had to be parked as an orphan (parent/target unseen — a causal
    /// violation upstream).
    pub fn apply(&mut self, op: &RgaOp) -> bool {
        let applied = self.try_apply(op);
        if applied {
            // An arrived parent may unblock parked orphans.
            let mut retry = std::mem::take(&mut self.orphans);
            retry.retain(|orphan| !self.try_apply(orphan));
            self.orphans = retry;
        } else {
            self.orphans.push(op.clone());
        }
        applied
    }

    fn try_apply(&mut self, op: &RgaOp) -> bool {
        match op {
            RgaOp::Insert { id, parent, ch } => {
                if self.index.contains_key(id) {
                    return true; // duplicate delivery
                }
                let Some(&parent_idx) = self.index.get(parent) else {
                    return false;
                };
                let node_idx = self.nodes.len();
                self.nodes.push(Node { id: *id, ch: *ch, deleted: false, children: Vec::new() });
                self.index.insert(*id, node_idx);
                // Concurrent siblings: larger id first, so all replicas
                // order them identically regardless of arrival order.
                let mut insert_at = self.nodes[parent_idx].children.len();
                for (i, &c) in self.nodes[parent_idx].children.iter().enumerate() {
                    if *id > self.nodes[c].id {
                        insert_at = i;
                        break;
                    }
                }
                self.nodes[parent_idx].children.insert(insert_at, node_idx);
                true
            }
            RgaOp::Delete { id } => {
                let Some(&idx) = self.index.get(id) else {
                    return false;
                };
                self.nodes[idx].deleted = true;
                true
            }
        }
    }

    /// Number of operations parked because causality was violated.
    #[must_use]
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }

    /// The visible text.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.walk(0, &mut |node| {
            if !node.deleted {
                out.push(node.ch);
            }
        });
        out
    }

    fn visible_ids(&self) -> impl Iterator<Item = ElemId> + '_ {
        let mut ids = Vec::new();
        self.walk(0, &mut |node| {
            if !node.deleted {
                ids.push(node.id);
            }
        });
        ids.into_iter()
    }

    fn walk(&self, idx: usize, f: &mut impl FnMut(&Node)) {
        let node = &self.nodes[idx];
        f(node);
        for &child in &node.children {
            self.walk(child, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id_of(op: &RgaOp) -> ElemId {
        match op {
            RgaOp::Insert { id, .. } => *id,
            RgaOp::Delete { id } => *id,
        }
    }

    #[test]
    fn sequential_typing() {
        let mut doc = Rga::new(1);
        let mut parent = HEAD;
        for ch in "hello".chars() {
            parent = id_of(&doc.insert_after(parent, ch).unwrap());
        }
        assert_eq!(doc.text(), "hello");
    }

    #[test]
    fn delete_at_position() {
        let mut doc = Rga::new(1);
        let mut parent = HEAD;
        for ch in "abc".chars() {
            parent = id_of(&doc.insert_after(parent, ch).unwrap());
        }
        doc.delete_at(1).unwrap();
        assert_eq!(doc.text(), "ac");
        assert!(doc.delete_at(9).is_none());
    }

    #[test]
    fn concurrent_inserts_converge_identically() {
        // Two replicas insert at the head concurrently; both linearize
        // the same way after exchanging ops.
        let mut a = Rga::new(1);
        let mut b = Rga::new(2);
        let op_a = a.insert_after(HEAD, 'A').unwrap();
        let op_b = b.insert_after(HEAD, 'B').unwrap();
        a.apply(&op_b);
        b.apply(&op_a);
        assert_eq!(a.text(), b.text(), "deterministic sibling order");
    }

    #[test]
    fn causal_chain_applies_cleanly() {
        let mut a = Rga::new(1);
        let op1 = a.insert_after(HEAD, 'x').unwrap();
        let mut b = Rga::new(2);
        assert!(b.apply(&op1));
        let op2 = b.insert_after(id_of(&op1), 'y').unwrap();
        let mut c = Rga::new(3);
        assert!(c.apply(&op1));
        assert!(c.apply(&op2));
        assert_eq!(c.text(), "xy");
        assert_eq!(c.orphan_count(), 0);
    }

    #[test]
    fn causal_violation_parks_orphan_then_recovers() {
        let mut a = Rga::new(1);
        let op1 = a.insert_after(HEAD, 'x').unwrap();
        let op2 = a.insert_after(id_of(&op1), 'y').unwrap();

        let mut late = Rga::new(2);
        assert!(!late.apply(&op2), "child before parent must park");
        assert_eq!(late.orphan_count(), 1);
        assert_eq!(late.text(), "");
        assert!(late.apply(&op1));
        assert_eq!(late.orphan_count(), 0, "parent arrival unblocks the orphan");
        assert_eq!(late.text(), "xy");
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut a = Rga::new(1);
        let op = a.insert_after(HEAD, 'z').unwrap();
        let mut b = Rga::new(2);
        b.apply(&op);
        b.apply(&op);
        assert_eq!(b.text(), "z");
    }

    #[test]
    #[should_panic(expected = "reserved for HEAD")]
    fn replica_zero_rejected() {
        let _ = Rga::new(0);
    }
}
