//! An op-based PN-counter — the contrast case: increments and decrements
//! commute, so this CRDT converges under *any* delivery order and does
//! not need causal broadcast at all. Including it makes the experiments
//! honest: causal ordering is a per-datatype requirement, not a blanket
//! one (paper §1's applications differ in exactly this way).

use serde::{Deserialize, Serialize};

/// Counter operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterOp {
    /// Add `1..` to the counter.
    Increment(u64),
    /// Subtract `1..` from the counter.
    Decrement(u64),
}

/// A PN-counter replica.
///
/// ```
/// use pcb_crdt::{Counter, CounterOp};
/// let mut a = Counter::new();
/// let op = a.increment(5);
/// let mut b = Counter::new();
/// b.apply(&op);
/// b.apply(&CounterOp::Decrement(2));
/// assert_eq!(b.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    increments: u64,
    decrements: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Local increment; applies immediately and returns the op to
    /// broadcast.
    pub fn increment(&mut self, by: u64) -> CounterOp {
        let op = CounterOp::Increment(by);
        self.apply(&op);
        op
    }

    /// Local decrement; applies immediately and returns the op to
    /// broadcast.
    pub fn decrement(&mut self, by: u64) -> CounterOp {
        let op = CounterOp::Decrement(by);
        self.apply(&op);
        op
    }

    /// Applies a (local or remote) operation.
    pub fn apply(&mut self, op: &CounterOp) {
        match op {
            CounterOp::Increment(by) => self.increments += by,
            CounterOp::Decrement(by) => self.decrements += by,
        }
    }

    /// Current value (may be negative).
    #[must_use]
    pub fn value(&self) -> i128 {
        i128::from(self.increments) - i128::from(self.decrements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutes_under_any_order() {
        let ops = [
            CounterOp::Increment(3),
            CounterOp::Decrement(1),
            CounterOp::Increment(4),
            CounterOp::Decrement(2),
        ];
        let mut forward = Counter::new();
        for op in &ops {
            forward.apply(op);
        }
        let mut backward = Counter::new();
        for op in ops.iter().rev() {
            backward.apply(op);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.value(), 4);
    }

    #[test]
    fn can_go_negative() {
        let mut c = Counter::new();
        c.decrement(10);
        c.increment(3);
        assert_eq!(c.value(), -7);
    }
}
