//! Operation-based CRDTs over probabilistic causal broadcast — the
//! application layer the paper's introduction motivates (§1: replicated
//! data structures "have an underlying requirement: causally ordered
//! communication").
//!
//! Three datatypes span the requirement spectrum:
//!
//! * [`OrSet`] — observed-remove set: removes must follow the adds they
//!   observed; causal delivery makes "add wins" hold and replicas
//!   converge.
//! * [`Rga`] — replicated growable array (collaborative text): inserts
//!   reference their parent element; causal delivery guarantees the
//!   parent exists.
//! * [`Counter`] — PN-counter: fully commutative, needs **no** ordering —
//!   the honest contrast case.
//!
//! [`Replica`] wires any of them to a
//! [`pcb_broadcast::PcbProcess`] endpoint so operations ride the paper's
//! constant-size timestamps.
//!
//! ```
//! use pcb_crdt::{OrSet, Replica};
//! use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProcessId};
//!
//! let space = KeySpace::new(100, 4)?;
//! let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 1);
//! let mut alice = Replica::new(ProcessId::new(0), assigner.next_set()?, OrSet::new(1));
//! let mut bob = Replica::new(ProcessId::new(1), assigner.next_set()?, OrSet::new(2));
//!
//! let add = alice.update(|s| Some(s.add("shared state"))).expect("op");
//! bob.on_receive(add, 0);
//! assert!(bob.state().contains(&"shared state"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod orset;
pub mod replica;
pub mod rga;

pub use counter::{Counter, CounterOp};
pub use orset::{OrSet, OrSetOp, Tag};
pub use replica::{OpBased, Replica};
pub use rga::{ElemId, Rga, RgaOp, HEAD};
