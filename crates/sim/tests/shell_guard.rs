//! Shell-purity guard: the sans-IO refactor moved the whole per-process
//! protocol — dedup, snapshots, anti-entropy policy, sync backoff — into
//! `pcb-broadcast::Endpoint`. The shells (the simulator's event loop and
//! the runtime's node loop) must never grow it back: any reference to the
//! protocol's internals from a shell source file means the chaos
//! certificates and the live path have started to diverge again.
//!
//! This is a source-text guard on purpose. The tokens below are internal
//! identifiers a shell has no legitimate reason to even *mention*; an
//! import or a re-implementation both trip it.

use std::fs;
use std::path::Path;

/// Identifiers that may only appear inside `pcb-broadcast`:
/// duplicate-suppression internals, durable-snapshot internals, and the
/// anti-entropy backoff machinery.
const FORBIDDEN: &[&str] =
    &["DedupFilter", "ProcessSnapshot", "encode_snapshot", "sync_in_flight", "idle_backoff"];

/// Shell sources, relative to this crate's manifest dir. These files own
/// scheduling, IO/fault interpretation, and oracles — nothing else.
const SHELLS: &[&str] =
    &["src/engine.rs", "src/chaos.rs", "../runtime/src/node.rs", "../runtime/src/loopback.rs"];

#[test]
fn shells_do_not_regrow_protocol_logic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offences = Vec::new();
    for rel in SHELLS {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("guard cannot read {}: {e}", path.display()));
        for (lineno, line) in text.lines().enumerate() {
            for token in FORBIDDEN {
                if line.contains(token) {
                    offences.push(format!("{rel}:{}: `{token}` in: {}", lineno + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        offences.is_empty(),
        "shell source references protocol internals — move that logic into \
         pcb-broadcast::Endpoint instead:\n{}",
        offences.join("\n")
    );
}

#[test]
fn guard_token_list_is_still_meaningful() {
    // If the protocol crate renames these internals the guard silently
    // guards nothing, so require each token to still exist there.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let broadcast = root.join("../broadcast/src");
    let mut corpus = String::new();
    for entry in fs::read_dir(&broadcast).expect("read pcb-broadcast sources") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            corpus.push_str(&fs::read_to_string(&path).expect("read source"));
        }
    }
    for token in FORBIDDEN {
        assert!(
            corpus.contains(token),
            "guard token `{token}` no longer exists in pcb-broadcast — update the guard list"
        );
    }
}
