//! Differential harness for the sharded parallel endpoint: replaying the
//! chaos corpus through [`Endpoint::handle_batch`] at several thread
//! counts must reproduce the recorded behaviour **bit-identically**.
//!
//! Each case records a seeded chaos run (crash/recover, partition, and
//! link-fault windows) through `pcb_sim::record_endpoint_chaos` — the
//! same 24-trace corpus the sim/runtime equivalence harness uses — then
//! replays every node's captured input stream through a fresh endpoint
//! with `set_parallel(threads)`, feeding the inputs in multi-hundred
//! element batches. Nodes are independent at replay time (all cross-node
//! coupling is already baked into the recorded log), so batching per
//! node is exactly the contended many-frames-per-sweep shape the
//! parallel decode/pre-scan path optimizes.
//!
//! Diffed per node, at every thread count: delivery order, message ids,
//! Algorithm 4/5 alert flags, and the full recovery counters. Any
//! divergence means sharding or batching leaked into observable protocol
//! behaviour — the exact regression this harness exists to catch.

use pcb_broadcast::endpoint::{Endpoint, Output};
use pcb_broadcast::{Counters, MessageId};
use pcb_clock::{AssignmentPolicy, KeySpace, ProcessId};
use pcb_sim::{chaos_config, record_endpoint_chaos, ChaosRecord};

const N: usize = 9;
const DURATION_MS: f64 = 2500.0;
const THREADS: [usize; 3] = [1, 2, 8];
const BATCH: usize = 256;

/// Per-node delivery digest: `(id, instant_alert, recent_alert)` per delivery.
type DeliveryDigest = Vec<(MessageId, bool, bool)>;

/// Replays `record`'s per-node input streams through fresh endpoints at
/// the given parallelism, returning per-node delivery digests and
/// recovery counters.
fn replay_batched(record: &ChaosRecord, threads: usize) -> (Vec<DeliveryDigest>, Vec<Counters>) {
    let n = record.keys.len();
    let mut digests: Vec<DeliveryDigest> = vec![Vec::new(); n];
    let mut counters = Vec::with_capacity(n);
    for (node, digest) in digests.iter_mut().enumerate() {
        let mut ep = Endpoint::new(
            ProcessId::new(node),
            record.keys[node].clone(),
            record.pcb_config.clone(),
            Some(record.timing),
        );
        ep.set_parallel(threads);
        assert_eq!(ep.threads(), threads, "prob discipline opts into parallelism");
        let stream: Vec<_> = record
            .inputs
            .iter()
            .filter(|(_, p, _)| *p as usize == node)
            .map(|(t, _, input)| (*t, input.clone()))
            .collect();
        for chunk in stream.chunks(BATCH) {
            for out in ep.handle_batch(chunk.to_vec()) {
                if let Output::Deliver(d) = out {
                    digest.push((d.message.id(), d.instant_alert, d.recent_alert));
                }
            }
        }
        counters.push(ep.recovery_counters());
    }
    (digests, counters)
}

/// Records one chaos run and asserts the batched replay is bit-identical
/// at every thread count.
fn assert_sharding_invariant(seed: u64, space: KeySpace, policy: AssignmentPolicy) {
    let cfg = chaos_config(seed, N, DURATION_MS);
    let record = record_endpoint_chaos(&cfg, space, policy)
        .unwrap_or_else(|e| panic!("seed {seed}: chaos run failed: {e}"));
    assert!(!record.inputs.is_empty(), "seed {seed}: empty input log");

    for threads in THREADS {
        let (deliveries, counters) = replay_batched(&record, threads);
        assert_eq!(
            deliveries, record.deliveries,
            "seed {seed}, threads {threads}: delivery order / alert flags diverged under sharding"
        );
        assert_eq!(
            counters, record.counters,
            "seed {seed}, threads {threads}: recovery counters diverged under sharding"
        );
    }
}

#[test]
fn vector_chaos_traces_are_shard_invariant() {
    // Exact (vector-equivalent) clocks: one distinct key per node.
    let space = KeySpace::vector(N).unwrap();
    for seed in 1..=16u64 {
        assert_sharding_invariant(seed, space, AssignmentPolicy::RoundRobin);
    }
}

#[test]
fn probabilistic_chaos_traces_are_shard_invariant() {
    // The paper's compressed clocks: entry collisions make the wake
    // channels genuinely contended, so shard invariance here covers the
    // interesting case, not just the one-key-per-node special case.
    let space = KeySpace::new(100, 4).unwrap();
    for seed in 101..=108u64 {
        assert_sharding_invariant(seed, space, AssignmentPolicy::UniformRandom);
    }
}
