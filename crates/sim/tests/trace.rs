//! End-to-end trace acceptance: a seeded chaos run on the colliding
//! `(16, 2)` clock must yield an explainable story — missing predecessor
//! plus a non-empty concurrent covering set — for EVERY exact-checker
//! violation, via the serialized JSONL form.

use pcb_clock::KeySpace;
use pcb_sim::{chaos_config, simulate_prob_traced, SimConfig};
use pcb_telemetry::{explain, parse_jsonl, write_jsonl, ExplainMode, TraceRecord};

fn traced_chaos(seed: u64) -> (u64, Vec<TraceRecord>) {
    let mut cfg = chaos_config(seed, 9, 4000.0);
    cfg.trace_capacity = 1 << 20;
    let space = KeySpace::new(16, 2).expect("(16,2) is a valid space");
    let (metrics, trace) = simulate_prob_traced(&cfg, space).expect("chaos run");
    (metrics.exact_violations, trace)
}

#[test]
fn every_chaos_violation_gets_a_complete_story() {
    let (violations, trace) = traced_chaos(3);
    assert!(violations > 0, "seed 3 must actually produce violations to explain");

    // Through the file format, as an operator would consume it.
    let reparsed = parse_jsonl(&write_jsonl(&trace)).expect("round trip");
    assert_eq!(reparsed, trace);

    let report = explain(&reparsed, ExplainMode::Violations);
    assert_eq!(report.violations, violations, "trace flags must match RunMetrics");
    assert_eq!(report.skipped_unknown, 0, "ring was large enough for the whole run");
    assert_eq!(report.explanations.len() as u64, violations);
    for e in &report.explanations {
        assert!(e.violation);
        assert!(
            !e.missing.is_empty(),
            "violation at node {} t={} names no missing",
            e.node,
            e.time
        );
        for m in &e.missing {
            assert!(
                !m.covering.is_empty(),
                "missing p{}#{} at node {} has no concurrent covering message",
                m.sender,
                m.seq,
                e.node
            );
        }
        assert!(e.inflight_x > 0, "a collision needs concurrent traffic in flight");
    }
}

#[test]
fn trace_lifecycle_is_consistent_with_metrics() {
    let mut cfg = SimConfig {
        n: 8,
        mean_send_interval_ms: 120.0,
        duration_ms: 2500.0,
        warmup_ms: 0.0,
        seed: 11,
        track_exact: true,
        ..SimConfig::default()
    };
    cfg.trace_capacity = 1 << 18;
    let space = KeySpace::new(16, 2).unwrap();
    let (metrics, trace) = simulate_prob_traced(&cfg, space).unwrap();

    assert!(trace.windows(2).all(|w| w[0].time <= w[1].time), "merged trace is time-sorted");
    let count = |name: &str| trace.iter().filter(|r| r.event.name() == name).count() as u64;
    assert_eq!(count("Sent"), metrics.sent, "one Sent per measured broadcast");
    assert_eq!(count("Delivered"), metrics.deliveries, "one Delivered per delivery");
    assert_eq!(count("Alert"), metrics.alg4_alerts + metrics.alg5_alerts);
    let violations_flagged = trace
        .iter()
        .filter(|r| matches!(r.event, pcb_telemetry::TraceEvent::Delivered { violation: true, .. }))
        .count() as u64;
    assert_eq!(violations_flagged, metrics.exact_violations);
    // Every Parked eventually has a matching Woken (liveness: nothing
    // stays stuck under direct dissemination).
    assert_eq!(metrics.stuck, 0);
    assert!(count("Parked") <= count("Received"));

    // Blocking histogram agrees with the trace's blocked_for field.
    let blocked: Vec<u64> = trace
        .iter()
        .filter_map(|r| match r.event {
            pcb_telemetry::TraceEvent::Delivered { blocked_for, .. } => Some(blocked_for),
            _ => None,
        })
        .collect();
    let positive = blocked.iter().filter(|&&b| b > 0).count() as u64;
    assert_eq!(metrics.blocking_ms.count(), metrics.deliveries);
    assert!(positive > 0, "some deliveries must actually have blocked");
}

#[test]
fn zero_capacity_emits_nothing() {
    let cfg = SimConfig {
        n: 6,
        mean_send_interval_ms: 200.0,
        duration_ms: 1000.0,
        warmup_ms: 0.0,
        seed: 5,
        ..SimConfig::default()
    };
    let space = KeySpace::new(16, 2).unwrap();
    let (metrics, trace) = simulate_prob_traced(&cfg, space).unwrap();
    assert!(metrics.deliveries > 0);
    assert!(trace.is_empty(), "trace_capacity 0 disables the rings");
}
