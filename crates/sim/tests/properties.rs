//! Property-based tests for the simulator: invariants that must hold for
//! *every* configuration, not just the paper's.

use pcb_clock::KeySpace;
use pcb_sim::{
    simulate_prob, simulate_vector, ChurnModel, LatencyDistribution, LossModel, SimConfig,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        2usize..12,   // n
        20f64..400.0, // mean send interval ms
        10f64..120.0, // latency mean
        0f64..30.0,   // latency sigma
        0f64..30.0,   // skew sigma
        0u64..1000,   // seed
        0usize..4,    // distribution selector
    )
        .prop_map(|(n, interval, lat, sigma, skew, seed, dist)| SimConfig {
            n,
            mean_send_interval_ms: interval,
            latency_mean_ms: lat,
            latency_sigma_ms: sigma,
            latency_distribution: match dist {
                0 => LatencyDistribution::Gaussian,
                1 => LatencyDistribution::Uniform,
                2 => LatencyDistribution::LogNormal,
                _ => LatencyDistribution::Bimodal,
            },
            skew_sigma_ms: skew,
            duration_ms: 1500.0,
            warmup_ms: 100.0,
            seed,
            ..SimConfig::default()
        })
}

fn arb_space() -> impl Strategy<Value = KeySpace> {
    (1usize..32).prop_flat_map(|r| {
        (Just(r), 1usize..=r).prop_map(|(r, k)| KeySpace::new(r, k).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness (Lemma 1) under every static direct configuration: no
    /// message stays blocked, every message reaches every process.
    #[test]
    fn lemma1_liveness_everywhere(cfg in arb_config(), space in arb_space()) {
        let m = simulate_prob(&cfg, space).unwrap();
        prop_assert_eq!(m.stuck, 0);
        prop_assert_eq!(m.undelivered, 0);
        prop_assert_eq!(m.deliveries, m.sent * (cfg.n as u64 - 1));
    }

    /// The exact vector-clock baseline never violates causality, under
    /// any latency distribution or load.
    #[test]
    fn vector_baseline_always_exact(cfg in arb_config()) {
        let m = simulate_vector(&cfg).unwrap();
        prop_assert_eq!(m.exact_violations, 0);
        prop_assert_eq!(m.eps_min, 0);
        prop_assert_eq!(m.eps_max, 0);
    }

    /// The paper's ε_min is a sound lower bound for every configuration.
    /// (ε_max is *not* a strict upper bound — see the documented caveat
    /// on `EpsilonEstimator`: clustered violations sharing one missing
    /// message are undercounted. The bracketing at the paper's operating
    /// points is verified by `epsilon_validation` instead.)
    #[test]
    fn epsilon_lower_bound_always_sound(cfg in arb_config(), space in arb_space()) {
        let m = simulate_prob(&cfg, space).unwrap();
        prop_assert!(m.eps_min <= m.exact_violations);
        prop_assert!(m.eps_min <= m.eps_max);
    }

    /// Determinism: identical config and seed produce identical metrics.
    #[test]
    fn full_determinism(cfg in arb_config(), space in arb_space()) {
        let a = simulate_prob(&cfg, space).unwrap();
        let b = simulate_prob(&cfg, space).unwrap();
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.deliveries, b.deliveries);
        prop_assert_eq!(a.exact_violations, b.exact_violations);
        prop_assert_eq!(a.eps_max, b.eps_max);
        prop_assert_eq!(a.alg4_alerts, b.alg4_alerts);
        prop_assert_eq!(a.delay_ms.mean().to_bits(), b.delay_ms.mean().to_bits());
    }

    /// Lossy links with retransmission preserve liveness at any loss rate.
    #[test]
    fn loss_preserves_liveness(
        cfg in arb_config(),
        drop in 0.0f64..0.6,
        rto in 20f64..300.0,
    ) {
        let cfg = SimConfig {
            loss: Some(LossModel { drop_probability: drop, retransmit_ms: rto }),
            ..cfg
        };
        let space = KeySpace::new(16, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        prop_assert_eq!(m.stuck, 0);
        prop_assert_eq!(m.undelivered, 0);
    }

    /// Churn never breaks the engine's accounting: deliveries, joins and
    /// leaves are consistent and violations stay classified.
    #[test]
    fn churn_accounting_consistent(
        seed in 0u64..500,
        n in 6usize..14,
        join_rate in 0.5f64..6.0,
    ) {
        let cfg = SimConfig {
            n,
            mean_send_interval_ms: 80.0,
            duration_ms: 3000.0,
            warmup_ms: 100.0,
            seed,
            churn: Some(ChurnModel {
                mean_lifetime_ms: Some(2500.0),
                ..ChurnModel::growing(n / 2, join_rate)
            }),
            ..SimConfig::default()
        };
        let space = KeySpace::new(24, 3).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        prop_assert!(m.joins <= (n - n / 2) as u64);
        prop_assert!(m.leaves <= m.joins + n as u64);
        prop_assert!(m.exact_violations <= m.deliveries);
        // Undelivered covers blocked + lost-by-departure, never negative
        // (checked by type) and bounded by what was sent.
        prop_assert!(m.undelivered <= m.sent * n as u64);
    }

    /// Alert ordering invariant: Algorithm 5 alerts never exceed
    /// Algorithm 4 alerts (Alg 5 = Alg 4 ∧ witness).
    #[test]
    fn alg5_never_exceeds_alg4(cfg in arb_config()) {
        let space = KeySpace::new(12, 2).unwrap();
        let m = pcb_sim::simulate_prob_detecting(&cfg, space, 2.0 * cfg.latency_mean_ms)
            .unwrap();
        prop_assert!(m.alg5_alerts <= m.alg4_alerts);
    }
}
