//! Determinism of the parallel sweep runner: thread count is a pure
//! wall-clock knob. Every rendered artifact — tables, CSV rows, chaos
//! outcomes — must be **byte-identical** at any `threads` setting,
//! because each replication's seed is a function of (point, rep) alone
//! and results are merged in fixed index order.

use pcb_clock::KeySpace;
use pcb_sim::{chaos_run, chaos_run_vector, report, runner, RunMetrics, SweepOptions};

/// Debug-formats a run's metrics with the one legitimately
/// nondeterministic field (measured wall-clock time) zeroed out.
fn fingerprint(metrics: &RunMetrics) -> String {
    let mut m = metrics.clone();
    m.wall_secs = 0.0;
    format!("{m:?}")
}

/// A figure-3 sweep small enough for CI but with enough points (3 × 3
/// × 2 reps = 18 jobs) that an order-dependent merge would be caught.
fn sweep(threads: usize) -> (String, String) {
    let opts = SweepOptions { scale: 0.02, seed: 11, reps: 2, threads };
    let points = runner::figure3(opts, &[40, 60, 80], &[2, 4, 6]).expect("sweep runs");
    let table = report::render_table("Figure 3", "N", &points, |p| p.n.to_string());
    let csv = report::render_csv(&points);
    (table, csv)
}

#[test]
fn figure3_rows_are_byte_identical_across_thread_counts() {
    let (table_1, csv_1) = sweep(1);
    for threads in [2, 8] {
        let (table_t, csv_t) = sweep(threads);
        assert_eq!(table_1, table_t, "table diverged at {threads} threads");
        assert_eq!(csv_1, csv_t, "csv diverged at {threads} threads");
    }
    // Sanity: the sweep actually produced all nine points.
    assert_eq!(csv_1.lines().count(), 1 + 9, "header plus one row per point");
}

#[test]
fn chaos_outcomes_are_identical_and_violation_free_under_parallelism() {
    // The chaos_soak fan-out shape: (seed, discipline) jobs spread
    // across workers must reproduce the serial outcomes exactly, and
    // the safety oracle must report zero undetected violations.
    let seeds = [3u64, 17, 41];
    let space = KeySpace::new(100, 4).expect("paper space");
    let serial: Vec<String> = seeds
        .iter()
        .flat_map(|&s| {
            let p = chaos_run(s, 7, 1500.0, space).expect("prob run");
            let v = chaos_run_vector(s, 7, 1500.0).expect("vector run");
            [fingerprint(&p.metrics), fingerprint(&v.metrics)]
        })
        .collect();

    let parallel = pcb_sim::pool::run_indexed(4, seeds.len() * 2, |job| {
        let seed = seeds[job / 2];
        let outcome = if job % 2 == 0 {
            chaos_run(seed, 7, 1500.0, space).expect("prob run")
        } else {
            chaos_run_vector(seed, 7, 1500.0).expect("vector run")
        };
        assert_eq!(
            outcome.metrics.undetected_violations, 0,
            "seed {seed}: oracle saw a violation no detector alerted on"
        );
        fingerprint(&outcome.metrics)
    });

    assert_eq!(serial, parallel, "parallel chaos runs diverged from serial replay");
}
