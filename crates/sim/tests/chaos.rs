//! Chaos-engine integration tests: deterministic fault injection with
//! crash-durable snapshots, anti-entropy catch-up, and the always-on
//! safety oracle, all inside the discrete-event simulator.

use pcb_clock::KeySpace;
use pcb_sim::{
    chaos_run, chaos_run_vector, simulate_prob, simulate_vector, FaultKind, FaultPlan, SimConfig,
};

fn space() -> KeySpace {
    KeySpace::new(100, 4).expect("paper space")
}

fn chaos_base(n: usize, duration_ms: f64, seed: u64, plan: FaultPlan) -> SimConfig {
    SimConfig {
        n,
        mean_send_interval_ms: 150.0,
        duration_ms,
        warmup_ms: 0.0,
        seed,
        track_exact: true,
        track_epsilon: false,
        faults: Some(plan),
        ..SimConfig::default()
    }
}

/// The acceptance criterion: the same seed replays bit-identically —
/// plan, workload, fault interleaving, and every counter.
#[test]
fn same_seed_replays_bit_identically() {
    for seed in [7u64, 0xC0FFEE] {
        let a = chaos_run(seed, 9, 4000.0, space()).unwrap();
        let b = chaos_run(seed, 9, 4000.0, space()).unwrap();
        assert_eq!(a.plan, b.plan, "seed {seed}: plans diverged");
        let (mut ma, mut mb) = (a.metrics, b.metrics);
        // Wall-clock time is the only legitimately nondeterministic field.
        ma.wall_secs = 0.0;
        mb.wall_secs = 0.0;
        assert_eq!(format!("{ma:?}"), format!("{mb:?}"), "seed {seed}: metrics diverged");
    }
}

/// Crash → restore-from-snapshot → anti-entropy catch-up, end to end:
/// the run converges (nothing undelivered, nothing stuck) and the
/// recovery machinery demonstrably did the work.
#[test]
fn crash_recover_catchup_converges() {
    let plan = FaultPlan::new(250.0, 200.0)
        .with_event(800.0, FaultKind::Crash { node: 2 })
        .with_event(2000.0, FaultKind::Recover { node: 2 });
    let m = simulate_prob(&chaos_base(6, 4000.0, 11, plan), space()).unwrap();
    assert_eq!(m.crashes, 1);
    assert_eq!(m.recoveries, 1);
    assert_eq!(m.recovery.snapshot_restores, 1, "recovery must resume from a snapshot");
    assert!(m.recovery.snapshots_taken > 0);
    assert!(m.recovery.refetched > 0, "the restored node must re-fetch missed messages");
    assert!(m.recovery.sync_served > 0);
    assert_eq!(m.undelivered, 0, "all survivors must converge: {m:?}");
    assert_eq!(m.stuck, 0, "no message may stay blocked forever: {m:?}");
}

/// 3-way partition of a 9-node cluster healing mid-run: zero lost
/// streams, asserted by the exact oracle under vector clocks (so any
/// violation is a real safety bug, not a probabilistic collision).
#[test]
fn three_way_partition_heals_with_zero_lost_streams() {
    let plan = FaultPlan::new(250.0, 200.0)
        .with_event(1000.0, FaultKind::PartitionStart { groups: FaultPlan::split_groups(9, 3) })
        .with_event(2500.0, FaultKind::PartitionEnd);
    let m = simulate_vector(&chaos_base(9, 5000.0, 23, plan)).unwrap();
    assert!(m.partition_dropped > 0, "the partition must actually cut traffic");
    assert!(m.recovery.refetched > 0, "healing must catch up via anti-entropy");
    assert_eq!(m.undelivered, 0, "zero lost streams after heal: {m:?}");
    assert_eq!(m.stuck, 0);
    assert_eq!(m.exact_violations, 0, "vector clocks must stay causally exact: {m:?}");
    assert_eq!(m.undetected_violations, 0);
}

/// Link-level chaos (loss, duplication, reordering, corruption) never
/// breaks safety: duplicates are suppressed, corrupted frames discarded,
/// and the cluster still converges.
#[test]
fn link_faults_are_survived_and_deduplicated() {
    let plan = FaultPlan::new(250.0, 200.0)
        .with_event(
            200.0,
            FaultKind::LinkFaultStart {
                faults: pcb_sim::LinkFaults {
                    drop: 0.15,
                    dup: 0.15,
                    reorder: 0.15,
                    reorder_extra_ms: 40.0,
                    corrupt: 0.05,
                },
            },
        )
        .with_event(2200.0, FaultKind::LinkFaultEnd);
    let m = simulate_vector(&chaos_base(6, 4000.0, 31, plan)).unwrap();
    assert!(m.link_dropped > 0);
    assert!(m.duplicate_frames > 0, "injected duplicates must hit the dedup layer");
    assert!(m.corrupted_frames > 0);
    assert_eq!(m.undelivered, 0, "loss must be repaired by anti-entropy: {m:?}");
    assert_eq!(m.stuck, 0);
    assert_eq!(m.exact_violations, 0);
}

/// Once the last fault heals, anti-entropy quiesces: re-fetch activity
/// stops within a bounded number of sync rounds instead of probe-storming
/// forever.
#[test]
fn sync_quiesces_after_heal() {
    let out = chaos_run_vector(41, 9, 4000.0).unwrap();
    assert!(out.converged(), "chaos run must converge: {:?}", out.metrics);
    let last_fault_ms = out.plan.events.iter().map(|e| e.at_ms).fold(0.0f64, f64::max);
    let bound_ms = last_fault_ms + 12.0 * out.plan.sync_interval_ms + 4000.0 * 0.25;
    assert!(
        out.metrics.last_refetch_ms <= bound_ms,
        "last re-fetch at {} ms, bound {} ms — probe storm?",
        out.metrics.last_refetch_ms,
        bound_ms
    );
}

/// The full random plan (crash + partition + link faults from one seed)
/// under both the probabilistic discipline and the vector baseline: the
/// vector run certifies safety, the probabilistic run keeps the paper's
/// error model (violations possible, all flagged or counted).
#[test]
fn random_plans_converge_under_both_disciplines() {
    for seed in [3u64, 17] {
        let v = chaos_run_vector(seed, 9, 4000.0).unwrap();
        assert!(v.converged(), "seed {seed} vector run: {:?}", v.metrics);
        assert_eq!(v.metrics.exact_violations, 0, "seed {seed}: {:?}", v.metrics);
        assert!(v.metrics.crashes == 1 && v.metrics.recoveries == 1);

        let p = chaos_run(seed, 9, 4000.0, space()).unwrap();
        assert!(p.converged(), "seed {seed} prob run: {:?}", p.metrics);
        assert_eq!(p.plan, v.plan, "both disciplines must inject the identical plan");
    }
}
