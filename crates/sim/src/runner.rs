//! Experiment sweeps regenerating the paper's figures (§5.4.2–§5.4.3).
//!
//! Each `figure*` function runs the corresponding parameter sweep and
//! returns one row per configuration; the `pcb-bench` binaries print them
//! as tables. [`SweepOptions::scale`] multiplies the measured
//! virtual-time window (1.0 ≈ 14 simulated seconds per point — minutes of
//! wall time for the full sweeps; use 0.1–0.3 for a quick look) and
//! [`SweepOptions::reps`] replicates each point under derived seeds,
//! pooling the counts — causal violations arrive in bursts (one covering
//! event fans out), so replication tightens the effective error bars far
//! more than a longer single run.

use pcb_analysis::error_model;
use pcb_clock::KeySpace;

use crate::config::SimConfig;
use crate::engine::{simulate_prob, simulate_vector, SimError};
use crate::fault::FaultPlan;
use crate::metrics::RunMetrics;
use crate::pool;
use crate::rng::derive_seed;

/// The paper's vector length for all §5.4 experiments.
pub const PAPER_R: usize = 100;
/// The paper's per-process receive rate for Figures 3 and 6 (msg/s).
pub const PAPER_RECEIVE_RATE: f64 = 200.0;
/// The paper's §5.4.3 per-process inter-send interval (ms).
pub const PAPER_LAMBDA_MS: f64 = 5000.0;
/// The paper's §5.4.3 process count.
pub const PAPER_N: usize = 1000;
/// The paper's §5.4.3 number of entries per process.
pub const PAPER_K: usize = 4;

/// Common sweep controls.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Multiplier on the measured window (1.0 ≈ 14 simulated seconds).
    pub scale: f64,
    /// Master seed; replication seeds are derived from it.
    pub seed: u64,
    /// Independent replications pooled per point.
    pub reps: usize,
    /// Worker threads fanning `points × reps` jobs out across cores.
    /// Every replication derives its seed from `(seed, point, rep)` alone
    /// and results are merged in job order, so tables and CSVs are
    /// byte-identical at any thread count. Defaults to 1 (serial); the
    /// `pcb-bench` binaries default to the machine's available cores.
    pub threads: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self { scale: 0.25, seed: 1, reps: 3, threads: 1 }
    }
}

impl SweepOptions {
    /// Options with everything defaulted except the scale.
    #[must_use]
    pub fn with_scale(scale: f64) -> Self {
        Self { scale, ..Self::default() }
    }

    /// These options with the given worker-thread count.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }
}

fn base_config(opts: SweepOptions) -> SimConfig {
    SimConfig {
        warmup_ms: 1000.0,
        duration_ms: 1000.0 + 14_000.0 * opts.scale,
        seed: opts.seed,
        // Figures track the exact oracle only; the ε estimator is
        // exercised by `epsilon_validation`.
        track_exact: true,
        track_epsilon: false,
        ..SimConfig::default()
    }
}

/// One measured point of a sweep (counts pooled over the replications).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of processes.
    pub n: usize,
    /// Entries per process.
    pub k: usize,
    /// Per-process mean inter-send interval (ms).
    pub lambda_ms: f64,
    /// Expected concurrency `X` for this configuration.
    pub concurrency: f64,
    /// Model prediction `P_error(R, K, X)`.
    pub theory_p_error: f64,
    /// Measured causal-order violations per delivery.
    pub violation_rate: f64,
    /// 95% confidence interval on the violation rate.
    pub violation_ci: (f64, f64),
    /// Pooled metrics of the replications.
    pub metrics: RunMetrics,
}

impl SweepPoint {
    fn build(cfg: &SimConfig, k: usize, metrics: RunMetrics) -> Self {
        let x = cfg.expected_concurrency();
        Self {
            n: cfg.n,
            k,
            lambda_ms: cfg.mean_send_interval_ms,
            concurrency: x,
            theory_p_error: error_model::error_probability(PAPER_R, k, x),
            violation_rate: metrics.violation_rate(),
            violation_ci: metrics.violation_interval(),
            metrics,
        }
    }
}

/// Runs a list of `(config, k)` sweep points, fanning the
/// `points × reps` replication grid across `opts.threads` workers.
///
/// Determinism: each replication's seed is `derive_seed(cfg.seed,
/// 1000 + rep)` — exactly what the serial loop used — and per-point
/// metrics are merged in replication order, so the pooled counts (and
/// every float in them) are bit-identical at any thread count.
fn run_points(
    opts: SweepOptions,
    specs: &[(SimConfig, usize)],
) -> Result<Vec<SweepPoint>, SimError> {
    let reps = opts.reps.max(1);
    let results = pool::run_indexed(opts.threads, specs.len() * reps, |job| {
        let (cfg, k) = &specs[job / reps];
        let space =
            KeySpace::new(PAPER_R, *k).map_err(|e| SimError::InvalidConfig(e.to_string()))?;
        let rep = (job % reps) as u64;
        let cfg = SimConfig { seed: derive_seed(cfg.seed, 1000 + rep), ..cfg.clone() };
        simulate_prob(&cfg, space)
    });
    specs
        .iter()
        .enumerate()
        .map(|(pi, (cfg, k))| {
            let mut pooled = RunMetrics::default();
            for rep in 0..reps {
                pooled.merge(results[pi * reps + rep].as_ref().map_err(Clone::clone)?);
            }
            Ok(SweepPoint::build(cfg, *k, pooled))
        })
        .collect()
}

/// **Figure 3**: error rate vs `K` for several population sizes, with the
/// per-process receive rate held at 200 msg/s (`λ = N/200 s`). The paper
/// reports the empirical minimum at `K = 4` against a theoretical optimum
/// of `ln(2)·100/20 ≈ 3.5`.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn figure3(
    opts: SweepOptions,
    ns: &[usize],
    ks: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    let mut specs = Vec::new();
    for &n in ns {
        for &k in ks {
            let cfg =
                SimConfig { n, ..base_config(opts) }.with_constant_receive_rate(PAPER_RECEIVE_RATE);
            specs.push((cfg, k));
        }
    }
    run_points(opts, &specs)
}

/// Default sweep axes for [`figure3`] (the paper's four population sizes
/// and `K` up to 10).
#[must_use]
pub fn figure3_defaults() -> (Vec<usize>, Vec<usize>) {
    (vec![500, 1000, 1500, 2000], vec![1, 2, 3, 4, 5, 6, 8, 10])
}

/// **Figure 4**: error rate vs `λ` at `N = 1000`, `R = 100`, `K = 4`.
/// Stable around the λ = 5000 ms design point, rising sharply below
/// 3000 ms.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn figure4(opts: SweepOptions, lambdas_ms: &[f64]) -> Result<Vec<SweepPoint>, SimError> {
    let specs: Vec<_> = lambdas_ms
        .iter()
        .map(|&lambda| {
            let cfg = SimConfig { n: PAPER_N, mean_send_interval_ms: lambda, ..base_config(opts) };
            (cfg, PAPER_K)
        })
        .collect();
    run_points(opts, &specs)
}

/// Default λ axis for [`figure4`] (ms).
#[must_use]
pub fn figure4_defaults() -> Vec<f64> {
    vec![1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 4000.0, 5000.0, 6000.0, 8000.0, 10_000.0]
}

/// **Figure 5**: error rate vs `N` with `λ` fixed at 5000 ms — the
/// aggregate load grows with `N`, so the error rate climbs past the
/// `N = 1000` design point.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn figure5(opts: SweepOptions, ns: &[usize]) -> Result<Vec<SweepPoint>, SimError> {
    let specs: Vec<_> = ns
        .iter()
        .map(|&n| {
            let cfg = SimConfig { n, mean_send_interval_ms: PAPER_LAMBDA_MS, ..base_config(opts) };
            (cfg, PAPER_K)
        })
        .collect();
    run_points(opts, &specs)
}

/// Default `N` axis for [`figure5`].
#[must_use]
pub fn figure5_defaults() -> Vec<usize> {
    vec![250, 500, 750, 1000, 1250, 1500, 2000]
}

/// **Figure 6**: error rate vs `N` at a constant aggregate receive rate
/// of 200 msg/s — flat at and above the design point, rising when fewer
/// nodes each send faster.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn figure6(opts: SweepOptions, ns: &[usize]) -> Result<Vec<SweepPoint>, SimError> {
    let specs: Vec<_> = ns
        .iter()
        .map(|&n| {
            let cfg =
                SimConfig { n, ..base_config(opts) }.with_constant_receive_rate(PAPER_RECEIVE_RATE);
            (cfg, PAPER_K)
        })
        .collect();
    run_points(opts, &specs)
}

/// Default `N` axis for [`figure6`].
#[must_use]
pub fn figure6_defaults() -> Vec<usize> {
    figure5_defaults()
}

/// Result of the §5.4.1 methodology validation: the paper's ε bounds and
/// the detectors, against the exact oracle, on one configuration.
#[derive(Debug, Clone)]
pub struct EpsilonValidation {
    /// Raw metrics (with both oracles enabled).
    pub metrics: RunMetrics,
}

impl EpsilonValidation {
    /// Whether the paper's bounds bracket the exact count.
    #[must_use]
    pub fn brackets_exact(&self) -> bool {
        self.metrics.eps_min <= self.metrics.exact_violations
            && self.metrics.exact_violations <= self.metrics.eps_max
    }
}

/// Runs the ε_min/ε_max estimator alongside the exact checker on a
/// down-scaled §5.4.3 configuration (smaller `N` so the run is cheap; the
/// estimators are per-receiver and independent of `N`).
///
/// # Errors
///
/// Propagates simulation failure.
pub fn epsilon_validation(opts: SweepOptions, n: usize) -> Result<EpsilonValidation, SimError> {
    let cfg = SimConfig { n, track_epsilon: true, ..base_config(opts) }
        .with_constant_receive_rate(PAPER_RECEIVE_RATE);
    let space =
        KeySpace::new(PAPER_R, PAPER_K).map_err(|e| SimError::InvalidConfig(e.to_string()))?;
    let metrics = simulate_prob(&cfg, space)?;
    Ok(EpsilonValidation { metrics })
}

/// Outcome of one chaos run: the injected plan (replayable via
/// [`FaultPlan::to_text`]) and the run's metrics.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// Metrics of the run, including the chaos counters.
    pub metrics: RunMetrics,
}

impl ChaosOutcome {
    /// Whether every surviving node converged to the full message set
    /// after the faults healed (the liveness half of the safety oracle).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.metrics.undelivered == 0 && self.metrics.stuck == 0
    }
}

/// The configuration a seeded chaos run uses: `n` nodes, a generated
/// [`FaultPlan::random`] schedule occupying the middle of the run, and a
/// tail of fault-free time for anti-entropy to converge in.
#[must_use]
pub fn chaos_config(seed: u64, n: usize, duration_ms: f64) -> SimConfig {
    let plan = FaultPlan::random(seed, n, 0.10 * duration_ms, 0.80 * duration_ms);
    SimConfig {
        n,
        mean_send_interval_ms: 150.0,
        duration_ms,
        warmup_ms: 0.0,
        seed,
        track_exact: true,
        track_epsilon: false,
        faults: Some(plan),
        ..SimConfig::default()
    }
}

/// One deterministic chaos run of the probabilistic discipline: same
/// `seed` ⇒ bit-identical plan, workload, and metrics.
///
/// # Errors
///
/// Propagates simulation failure.
pub fn chaos_run(
    seed: u64,
    n: usize,
    duration_ms: f64,
    space: KeySpace,
) -> Result<ChaosOutcome, SimError> {
    let cfg = chaos_config(seed, n, duration_ms);
    let plan = cfg.faults.clone().expect("chaos_config sets a plan");
    let metrics = simulate_prob(&cfg, space)?;
    Ok(ChaosOutcome { plan, metrics })
}

/// The same chaos run under exact vector clocks — the certification
/// variant: any `exact_violations` here is a real safety bug, not a
/// probabilistic hash collision.
///
/// # Errors
///
/// Propagates simulation failure.
pub fn chaos_run_vector(seed: u64, n: usize, duration_ms: f64) -> Result<ChaosOutcome, SimError> {
    let cfg = chaos_config(seed, n, duration_ms);
    let plan = cfg.faults.clone().expect("chaos_config sets a plan");
    let metrics = simulate_vector(&cfg)?;
    Ok(ChaosOutcome { plan, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scale: f64, seed: u64) -> SweepOptions {
        SweepOptions { scale, seed, reps: 1, threads: 1 }
    }

    #[test]
    fn figure3_rows_cover_grid() {
        let rows = figure3(tiny(0.01, 1), &[50], &[1, 2, 4]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.n == 50));
        assert_eq!(rows.iter().map(|r| r.k).collect::<Vec<_>>(), vec![1, 2, 4]);
        for r in &rows {
            assert!(r.metrics.deliveries > 0);
            assert!((0.0..=1.0).contains(&r.violation_rate));
            assert!(r.violation_ci.0 <= r.violation_rate + 1e-12);
        }
    }

    #[test]
    fn figure3_constant_receive_rate() {
        let rows = figure3(tiny(0.01, 1), &[40, 80], &[2]).unwrap();
        // λ scales with N so X (concurrency) is constant.
        assert!((rows[0].concurrency - rows[1].concurrency).abs() < 1e-9);
        assert!(rows[1].lambda_ms > rows[0].lambda_ms);
    }

    #[test]
    fn replication_pools_counts() {
        let one = figure3(tiny(0.01, 1), &[40], &[2]).unwrap();
        let three = figure3(SweepOptions { reps: 3, ..tiny(0.01, 1) }, &[40], &[2]).unwrap();
        // Each replication uses a derived seed, so counts are only
        // approximately 3x (Poisson workload lengths differ per seed).
        let ratio = three[0].metrics.deliveries as f64 / one[0].metrics.deliveries as f64;
        assert!((2.0..4.0).contains(&ratio), "pooled deliveries ratio {ratio}");
        assert!(three[0].metrics.sent > one[0].metrics.sent);
    }

    #[test]
    fn figure4_lambda_axis() {
        let rows = figure4(tiny(0.002, 1), &[4000.0, 8000.0]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].concurrency > rows[1].concurrency);
        assert!(rows[0].theory_p_error > rows[1].theory_p_error);
    }

    #[test]
    fn epsilon_validation_brackets() {
        let v = epsilon_validation(tiny(0.05, 3), 60).unwrap();
        assert!(v.brackets_exact(), "eps bounds must bracket exact: {:?}", v.metrics);
    }
}
