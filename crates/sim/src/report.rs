//! Plain-text and CSV rendering of sweep results.

use std::fmt::Write as _;

use crate::runner::SweepPoint;

/// Renders sweep points as an aligned text table (one row per point).
///
/// `label` names the swept axis and `axis` extracts its display value.
#[must_use]
pub fn render_table(
    title: &str,
    label: &str,
    points: &[SweepPoint],
    axis: impl Fn(&SweepPoint) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{label:>10} {:>8} {:>12} {:>12} {:>24} {:>12} {:>10}",
        "K", "theory", "measured", "95% CI", "deliveries", "stuck"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>12.3e} {:>12.3e} [{:>10.3e}, {:>10.3e}] {:>12} {:>10}",
            axis(p),
            p.k,
            p.theory_p_error,
            p.violation_rate,
            p.violation_ci.0,
            p.violation_ci.1,
            p.metrics.deliveries,
            p.metrics.stuck,
        );
    }
    out
}

/// Renders the latency distributions of sweep points: one row per point
/// with p50/p90/p99/max of end-to-end delay and pending-queue blocking,
/// from the log-bucketed histograms in `RunMetrics`.
///
/// `label` names the swept axis and `axis` extracts its display value.
#[must_use]
pub fn render_latency_table(
    title: &str,
    label: &str,
    points: &[SweepPoint],
    axis: impl Fn(&SweepPoint) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title} — latency quantiles (ms)");
    let _ = writeln!(
        out,
        "{label:>10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "K", "dly_p50", "dly_p90", "dly_p99", "dly_max", "blk_p50", "blk_p90", "blk_p99", "blk_max"
    );
    for p in points {
        let d = &p.metrics.delay_ms;
        let b = &p.metrics.blocking_ms;
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            axis(p),
            p.k,
            d.p50(),
            d.p90(),
            d.p99(),
            d.max(),
            b.p50(),
            b.p90(),
            b.p99(),
            b.max(),
        );
    }
    out
}

/// Renders sweep points as CSV with a fixed header.
#[must_use]
pub fn render_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "n,k,lambda_ms,concurrency,theory_p_error,violation_rate,ci_low,ci_high,\
         deliveries,violations,alg4_alerts,alg5_alerts,mean_delay_ms,mean_blocking_ms,\
         p50_delay_ms,p99_delay_ms,p50_blocking_ms,p99_blocking_ms,\
         pending_peak,stuck\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.n,
            p.k,
            p.lambda_ms,
            p.concurrency,
            p.theory_p_error,
            p.violation_rate,
            p.violation_ci.0,
            p.violation_ci.1,
            p.metrics.deliveries,
            p.metrics.exact_violations,
            p.metrics.alg4_alerts,
            p.metrics.alg5_alerts,
            p.metrics.delay_ms.mean(),
            p.metrics.blocking_ms.mean(),
            p.metrics.delay_ms.p50(),
            p.metrics.delay_ms.p99(),
            p.metrics.blocking_ms.p50(),
            p.metrics.blocking_ms.p99(),
            p.metrics.pending_peak,
            p.metrics.stuck,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunMetrics;
    use crate::runner::figure3;

    /// A hand-built point with fully known contents, for golden tests.
    fn fixed_point() -> SweepPoint {
        let mut metrics = RunMetrics {
            deliveries: 64,
            exact_violations: 2,
            alg4_alerts: 3,
            alg5_alerts: 1,
            pending_peak: 5,
            stuck: 0,
            ..RunMetrics::default()
        };
        // 1..=64 ms uniformly: median 32, max 64 (up to bucket width).
        for i in 1..=64 {
            metrics.delay_ms.push(f64::from(i));
            metrics.blocking_ms.push(f64::from(i) / 4.0);
        }
        SweepPoint {
            n: 8,
            k: 2,
            lambda_ms: 250.0,
            concurrency: 1.5,
            theory_p_error: 0.001,
            violation_rate: 2.0 / 64.0,
            violation_ci: (0.01, 0.09),
            metrics,
        }
    }

    #[test]
    fn table_and_csv_render() {
        let rows = figure3(
            crate::runner::SweepOptions { scale: 0.01, seed: 1, reps: 1, threads: 1 },
            &[30],
            &[1, 2],
        )
        .unwrap();
        let table = render_table("Figure 3 (mini)", "N", &rows, |p| p.n.to_string());
        assert!(table.contains("Figure 3 (mini)"));
        assert!(table.lines().count() >= 4);

        let csv = render_csv(&rows);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("n,k,lambda_ms"));
        assert_eq!(lines.count(), 2);
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), 20);
    }

    #[test]
    fn csv_golden_row() {
        let csv = render_csv(&[fixed_point()]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 20);
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(&row[..4], &["8", "2", "250", "1.5"]);
        assert_eq!(row[8], "64", "deliveries");
        assert_eq!(row[9], "2", "violations");
        // Quantile columns: log-bucketed, so only bracket them.
        let p50_delay: f64 = row[14].parse().unwrap();
        let p99_delay: f64 = row[15].parse().unwrap();
        assert!((28.0..=40.0).contains(&p50_delay), "p50 near 32, got {p50_delay}");
        assert!((56.0..=64.0).contains(&p99_delay), "p99 near 64, got {p99_delay}");
        assert!(p50_delay <= p99_delay);
        assert_eq!(&row[18..], &["5", "0"], "pending_peak,stuck");
    }

    #[test]
    fn latency_table_golden() {
        let table = render_latency_table("Demo", "N", &[fixed_point()], |p| p.n.to_string());
        let mut lines = table.lines();
        assert_eq!(lines.next().unwrap(), "# Demo — latency quantiles (ms)");
        let header = lines.next().unwrap();
        for col in ["dly_p50", "dly_p99", "blk_p50", "blk_max"] {
            assert!(header.contains(col), "missing column {col}");
        }
        let row = lines.next().unwrap();
        let fields: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(fields.len(), 10);
        assert_eq!(fields[0], "8");
        assert_eq!(fields[1], "2");
        let dly: Vec<f64> = fields[2..6].iter().map(|f| f.parse().unwrap()).collect();
        assert!(dly.windows(2).all(|w| w[0] <= w[1]), "delay quantiles monotone: {dly:?}");
        // blocking = delay / 4, bucket error is multiplicative, so the
        // ratio survives rendering.
        let blk_max: f64 = fields[9].parse().unwrap();
        assert!((blk_max - dly[3] / 4.0).abs() < 0.5, "blk_max {blk_max} vs dly_max/4");
    }

    #[test]
    fn empty_histograms_render_as_zero() {
        let mut p = fixed_point();
        p.metrics.delay_ms = pcb_telemetry::Hist::new();
        p.metrics.blocking_ms = pcb_telemetry::Hist::new();
        let csv = render_csv(&[p.clone()]);
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(&row[12..18], &["0", "0", "0", "0", "0", "0"]);
        let table = render_latency_table("Empty", "N", &[p], |p| p.n.to_string());
        assert!(table.lines().count() == 3);
    }
}
