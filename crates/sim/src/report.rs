//! Plain-text and CSV rendering of sweep results.

use std::fmt::Write as _;

use crate::runner::SweepPoint;

/// Renders sweep points as an aligned text table (one row per point).
///
/// `label` names the swept axis and `axis` extracts its display value.
#[must_use]
pub fn render_table(
    title: &str,
    label: &str,
    points: &[SweepPoint],
    axis: impl Fn(&SweepPoint) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{label:>10} {:>8} {:>12} {:>12} {:>24} {:>12} {:>10}",
        "K", "theory", "measured", "95% CI", "deliveries", "stuck"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>12.3e} {:>12.3e} [{:>10.3e}, {:>10.3e}] {:>12} {:>10}",
            axis(p),
            p.k,
            p.theory_p_error,
            p.violation_rate,
            p.violation_ci.0,
            p.violation_ci.1,
            p.metrics.deliveries,
            p.metrics.stuck,
        );
    }
    out
}

/// Renders sweep points as CSV with a fixed header.
#[must_use]
pub fn render_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "n,k,lambda_ms,concurrency,theory_p_error,violation_rate,ci_low,ci_high,\
         deliveries,violations,alg4_alerts,alg5_alerts,mean_delay_ms,mean_blocking_ms,\
         pending_peak,stuck\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.n,
            p.k,
            p.lambda_ms,
            p.concurrency,
            p.theory_p_error,
            p.violation_rate,
            p.violation_ci.0,
            p.violation_ci.1,
            p.metrics.deliveries,
            p.metrics.exact_violations,
            p.metrics.alg4_alerts,
            p.metrics.alg5_alerts,
            p.metrics.delay_ms.mean(),
            p.metrics.blocking_ms.mean(),
            p.metrics.pending_peak,
            p.metrics.stuck,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::figure3;

    #[test]
    fn table_and_csv_render() {
        let rows =
            figure3(crate::runner::SweepOptions { scale: 0.01, seed: 1, reps: 1 }, &[30], &[1, 2])
                .unwrap();
        let table = render_table("Figure 3 (mini)", "N", &rows, |p| p.n.to_string());
        assert!(table.contains("Figure 3 (mini)"));
        assert!(table.lines().count() >= 4);

        let csv = render_csv(&rows);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("n,k,lambda_ms"));
        assert_eq!(lines.count(), 2);
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), 16);
    }
}
