//! Deterministic fault plans for chaos runs.
//!
//! A [`FaultPlan`] is a seedable, serializable schedule of fault events —
//! crashes, recoveries, network partitions, and link-level misbehaviour
//! (burst loss, duplication, reordering, corruption). The simulation
//! engine interprets the plan inside its event loop; the live runtime
//! replays the same plan through a fault-controller thread driving the
//! transport router. Because plans serialize to a small text format and
//! generate deterministically from a seed, any failing chaos run can be
//! replayed bit-identically from its seed alone (`scripts/replay.sh`).

use serde::{Deserialize, Serialize};

use crate::rng::{derive_seed, SimRng};

/// Link-level fault rates, applied per transmission while a
/// [`FaultKind::LinkFaultStart`] window is open. All probabilities are
/// independent per frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a frame is dropped outright (burst loss).
    pub drop: f64,
    /// Probability a frame is duplicated (the copy arrives later; the
    /// receiver's dedup layer must suppress it).
    pub dup: f64,
    /// Probability a frame is delayed by [`Self::reorder_extra_ms`],
    /// overtaking later traffic.
    pub reorder: f64,
    /// Extra delay applied to reordered (and duplicated) frames, ms.
    pub reorder_extra_ms: f64,
    /// Probability a frame is corrupted in flight. The wire checksum
    /// detects this and the frame is discarded, so corruption behaves
    /// like loss — but it exercises the decode-hardening path.
    pub corrupt: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self { drop: 0.0, dup: 0.0, reorder: 0.0, reorder_extra_ms: 50.0, corrupt: 0.0 }
    }
}

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node halts: it loses its in-memory state (pending queue,
    /// anything past its last snapshot) and stops receiving.
    Crash {
        /// Index of the crashing node.
        node: usize,
    },
    /// The node restarts from its last durable snapshot and catches up
    /// through anti-entropy.
    Recover {
        /// Index of the recovering node.
        node: usize,
    },
    /// The network splits: traffic crosses group boundaries no more
    /// (including anti-entropy sync). Nodes not listed in any group form
    /// one implicit extra group.
    PartitionStart {
        /// Disjoint groups of node indices that can still talk internally.
        groups: Vec<Vec<usize>>,
    },
    /// The partition heals; all links work again.
    PartitionEnd,
    /// A window of link-level misbehaviour opens on every link.
    LinkFaultStart {
        /// The rates in force until the matching [`FaultKind::LinkFaultEnd`].
        faults: LinkFaults,
    },
    /// The link-fault window closes.
    LinkFaultEnd,
}

/// A fault at a point in virtual (sim) or wall-clock (runtime) time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, in milliseconds from run start.
    pub at_ms: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A full, deterministic schedule of faults for one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault events, sorted by [`FaultEvent::at_ms`].
    pub events: Vec<FaultEvent>,
    /// Period of the durable snapshots every node takes (ms). A
    /// recovering node resumes from its last snapshot, so this bounds how
    /// much state a crash can lose.
    pub snapshot_every_ms: f64,
    /// Period of each node's anti-entropy sync probe (ms). Convergence
    /// after a partition heals takes a bounded number of these rounds.
    pub sync_interval_ms: f64,
}

/// A parse failure in [`FaultPlan::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan with the given snapshot and sync periods.
    #[must_use]
    pub fn new(snapshot_every_ms: f64, sync_interval_ms: f64) -> Self {
        Self { events: Vec::new(), snapshot_every_ms, sync_interval_ms }
    }

    /// Appends an event (builder style). Events must be appended in
    /// non-decreasing `at_ms` order; [`Self::validate`] enforces it.
    #[must_use]
    pub fn with_event(mut self, at_ms: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_ms, kind });
        self
    }

    /// Splits `0..n` into `ways` contiguous groups — a convenient
    /// partition shape for tests and generated plans.
    #[must_use]
    pub fn split_groups(n: usize, ways: usize) -> Vec<Vec<usize>> {
        let ways = ways.clamp(1, n.max(1));
        (0..ways)
            .map(|g| (n * g / ways..n * (g + 1) / ways).collect())
            .filter(|v: &Vec<usize>| !v.is_empty())
            .collect()
    }

    /// Generates a deterministic random plan from `seed`: one
    /// crash/recover pair, one multi-way partition window, and one
    /// link-fault window, all inside `[start_ms, end_ms)`. Same seed,
    /// same plan — this is the contract `scripts/replay.sh` relies on.
    #[must_use]
    pub fn random(seed: u64, n: usize, start_ms: f64, end_ms: f64) -> Self {
        let mut rng = SimRng::new(derive_seed(seed, 0xFA17));
        let span = (end_ms - start_ms).max(1.0);
        let cap = |t: f64| t.min(end_ms - span * 0.02);
        let mut events = Vec::new();

        // A link-fault window early on, so loss/dup/reorder stress the
        // steady state before the structural faults hit.
        let lf_start = start_ms + span * (0.02 + 0.08 * rng.uniform_open());
        let lf_end = cap(lf_start + span * (0.2 + 0.2 * rng.uniform_open()));
        let faults = LinkFaults {
            drop: 0.05 + 0.10 * rng.uniform_open(),
            dup: 0.05 + 0.10 * rng.uniform_open(),
            reorder: 0.05 + 0.10 * rng.uniform_open(),
            reorder_extra_ms: 30.0 + 50.0 * rng.uniform_open(),
            corrupt: 0.02 + 0.05 * rng.uniform_open(),
        };
        events.push(FaultEvent { at_ms: lf_start, kind: FaultKind::LinkFaultStart { faults } });
        events.push(FaultEvent { at_ms: lf_end, kind: FaultKind::LinkFaultEnd });

        // One crash/recover pair.
        let node = rng.index(n);
        let t_crash = start_ms + span * (0.15 + 0.15 * rng.uniform_open());
        let t_recover = cap(t_crash + span * (0.15 + 0.15 * rng.uniform_open()));
        events.push(FaultEvent { at_ms: t_crash, kind: FaultKind::Crash { node } });
        events.push(FaultEvent { at_ms: t_recover, kind: FaultKind::Recover { node } });

        // One partition window (3-way when the cluster is big enough).
        let ways = if n >= 6 { 3 } else { 2 };
        let t_split = start_ms + span * (0.45 + 0.1 * rng.uniform_open());
        let t_heal = cap(t_split + span * (0.15 + 0.15 * rng.uniform_open()));
        let groups = Self::split_groups(n, ways);
        events.push(FaultEvent { at_ms: t_split, kind: FaultKind::PartitionStart { groups } });
        events.push(FaultEvent { at_ms: t_heal, kind: FaultKind::PartitionEnd });

        events.sort_by(|a, b| a.at_ms.partial_cmp(&b.at_ms).expect("finite times"));
        Self { events, snapshot_every_ms: 250.0, sync_interval_ms: 200.0 }
    }

    /// Checks the plan is well-formed for an `n`-node run of
    /// `duration_ms`: events sorted and in range, crash/recover and
    /// partition/heal properly paired, at least two nodes alive at all
    /// times, partition groups disjoint, rates in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self, n: usize, duration_ms: f64) -> Result<(), String> {
        let bad = |v: f64| v.is_nan() || v <= 0.0;
        if bad(self.snapshot_every_ms) {
            return Err("snapshot_every_ms must be positive".into());
        }
        if bad(self.sync_interval_ms) {
            return Err("sync_interval_ms must be positive".into());
        }
        let mut crashed = vec![false; n];
        let mut down = 0usize;
        let mut partitioned = false;
        let mut link_faulted = false;
        let mut prev = 0.0f64;
        for ev in &self.events {
            if ev.at_ms.is_nan() || ev.at_ms < 0.0 || ev.at_ms >= duration_ms {
                return Err(format!("event time {} outside [0, {duration_ms})", ev.at_ms));
            }
            if ev.at_ms < prev {
                return Err("events must be sorted by at_ms".into());
            }
            prev = ev.at_ms;
            match &ev.kind {
                FaultKind::Crash { node } => {
                    if *node >= n {
                        return Err(format!("crash of node {node} in an {n}-node run"));
                    }
                    if crashed[*node] {
                        return Err(format!("node {node} crashed twice without recovering"));
                    }
                    crashed[*node] = true;
                    down += 1;
                    if n - down < 2 {
                        return Err("a crash may not leave fewer than 2 nodes alive".into());
                    }
                }
                FaultKind::Recover { node } => {
                    if *node >= n || !crashed[*node] {
                        return Err(format!("recover of node {node} which is not crashed"));
                    }
                    crashed[*node] = false;
                    down -= 1;
                }
                FaultKind::PartitionStart { groups } => {
                    if partitioned {
                        return Err("nested partitions are not supported".into());
                    }
                    partitioned = true;
                    if groups.len() < 2 {
                        return Err("a partition needs at least 2 groups".into());
                    }
                    let mut seen = vec![false; n];
                    for g in groups {
                        if g.is_empty() {
                            return Err("partition groups must be non-empty".into());
                        }
                        for &m in g {
                            if m >= n {
                                return Err(format!("partition member {m} out of range"));
                            }
                            if seen[m] {
                                return Err(format!("node {m} appears in two partition groups"));
                            }
                            seen[m] = true;
                        }
                    }
                }
                FaultKind::PartitionEnd => {
                    if !partitioned {
                        return Err("partition heal without an open partition".into());
                    }
                    partitioned = false;
                }
                FaultKind::LinkFaultStart { faults } => {
                    if link_faulted {
                        return Err("nested link-fault windows are not supported".into());
                    }
                    link_faulted = true;
                    let rate_ok = |r: f64| (0.0..1.0).contains(&r);
                    if !rate_ok(faults.drop)
                        || !rate_ok(faults.dup)
                        || !rate_ok(faults.reorder)
                        || !rate_ok(faults.corrupt)
                    {
                        return Err("link-fault rates must be in [0, 1)".into());
                    }
                    if faults.reorder_extra_ms.is_nan() || faults.reorder_extra_ms < 0.0 {
                        return Err("reorder_extra_ms must be non-negative".into());
                    }
                }
                FaultKind::LinkFaultEnd => {
                    if !link_faulted {
                        return Err("link-fault end without an open window".into());
                    }
                    link_faulted = false;
                }
            }
        }
        Ok(())
    }

    /// Renders the plan in the line-oriented text format
    /// [`Self::from_text`] parses — the interchange format logged by the
    /// chaos soak and consumed by `scripts/replay.sh`.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("faultplan v1\n");
        let _ = writeln!(out, "snapshot_every_ms {}", self.snapshot_every_ms);
        let _ = writeln!(out, "sync_interval_ms {}", self.sync_interval_ms);
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Crash { node } => {
                    let _ = writeln!(out, "crash {node} @ {}", ev.at_ms);
                }
                FaultKind::Recover { node } => {
                    let _ = writeln!(out, "recover {node} @ {}", ev.at_ms);
                }
                FaultKind::PartitionStart { groups } => {
                    let rendered: Vec<String> = groups
                        .iter()
                        .map(|g| g.iter().map(ToString::to_string).collect::<Vec<_>>().join(","))
                        .collect();
                    let _ = writeln!(out, "partition {} @ {}", rendered.join("|"), ev.at_ms);
                }
                FaultKind::PartitionEnd => {
                    let _ = writeln!(out, "heal @ {}", ev.at_ms);
                }
                FaultKind::LinkFaultStart { faults } => {
                    let _ = writeln!(
                        out,
                        "linkfault drop={} dup={} reorder={} reorder_ms={} corrupt={} @ {}",
                        faults.drop,
                        faults.dup,
                        faults.reorder,
                        faults.reorder_extra_ms,
                        faults.corrupt,
                        ev.at_ms
                    );
                }
                FaultKind::LinkFaultEnd => {
                    let _ = writeln!(out, "linkclear @ {}", ev.at_ms);
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`Self::to_text`]. Blank lines
    /// and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] pointing at the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, PlanParseError> {
        let err = |line: usize, reason: &str| PlanParseError { line, reason: reason.into() };
        let parse_f64 = |line: usize, s: &str| {
            s.parse::<f64>().map_err(|_| err(line, &format!("bad number {s:?}")))
        };
        let parse_usize = |line: usize, s: &str| {
            s.parse::<usize>().map_err(|_| err(line, &format!("bad node index {s:?}")))
        };
        let mut plan = Self::new(0.0, 0.0);
        let mut saw_header = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != "faultplan v1" {
                    return Err(err(lineno, "expected header `faultplan v1`"));
                }
                saw_header = true;
                continue;
            }
            // `<verb> [args] @ <time>` or a `<key> <value>` parameter.
            let (head, at_ms) = match line.rsplit_once('@') {
                Some((head, t)) => (head.trim(), Some(parse_f64(lineno, t.trim())?)),
                None => (line, None),
            };
            let mut words = head.split_whitespace();
            let verb = words.next().ok_or_else(|| err(lineno, "empty statement"))?;
            match (verb, at_ms) {
                ("snapshot_every_ms", None) => {
                    let v = words.next().ok_or_else(|| err(lineno, "missing value"))?;
                    plan.snapshot_every_ms = parse_f64(lineno, v)?;
                }
                ("sync_interval_ms", None) => {
                    let v = words.next().ok_or_else(|| err(lineno, "missing value"))?;
                    plan.sync_interval_ms = parse_f64(lineno, v)?;
                }
                ("crash", Some(at)) => {
                    let node = words.next().ok_or_else(|| err(lineno, "crash needs a node"))?;
                    let kind = FaultKind::Crash { node: parse_usize(lineno, node)? };
                    plan.events.push(FaultEvent { at_ms: at, kind });
                }
                ("recover", Some(at)) => {
                    let node = words.next().ok_or_else(|| err(lineno, "recover needs a node"))?;
                    let kind = FaultKind::Recover { node: parse_usize(lineno, node)? };
                    plan.events.push(FaultEvent { at_ms: at, kind });
                }
                ("partition", Some(at)) => {
                    let spec = words.next().ok_or_else(|| err(lineno, "partition needs groups"))?;
                    let mut groups = Vec::new();
                    for group in spec.split('|') {
                        let members: Result<Vec<usize>, PlanParseError> =
                            group.split(',').map(|m| parse_usize(lineno, m.trim())).collect();
                        groups.push(members?);
                    }
                    plan.events
                        .push(FaultEvent { at_ms: at, kind: FaultKind::PartitionStart { groups } });
                }
                ("heal", Some(at)) => {
                    plan.events.push(FaultEvent { at_ms: at, kind: FaultKind::PartitionEnd });
                }
                ("linkfault", Some(at)) => {
                    let mut faults = LinkFaults::default();
                    for pair in words {
                        let (key, value) = pair.split_once('=').ok_or_else(|| {
                            err(lineno, &format!("expected key=value, got {pair:?}"))
                        })?;
                        let v = parse_f64(lineno, value)?;
                        match key {
                            "drop" => faults.drop = v,
                            "dup" => faults.dup = v,
                            "reorder" => faults.reorder = v,
                            "reorder_ms" => faults.reorder_extra_ms = v,
                            "corrupt" => faults.corrupt = v,
                            _ => return Err(err(lineno, &format!("unknown rate {key:?}"))),
                        }
                    }
                    plan.events
                        .push(FaultEvent { at_ms: at, kind: FaultKind::LinkFaultStart { faults } });
                }
                ("linkclear", Some(at)) => {
                    plan.events.push(FaultEvent { at_ms: at, kind: FaultKind::LinkFaultEnd });
                }
                _ => return Err(err(lineno, &format!("unknown statement {verb:?}"))),
            }
        }
        if !saw_header {
            return Err(err(1, "empty plan: expected header `faultplan v1`"));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::new(250.0, 200.0)
            .with_event(
                500.0,
                FaultKind::LinkFaultStart {
                    faults: LinkFaults { drop: 0.1, dup: 0.05, ..LinkFaults::default() },
                },
            )
            .with_event(900.0, FaultKind::LinkFaultEnd)
            .with_event(1000.0, FaultKind::Crash { node: 3 })
            .with_event(
                2000.0,
                FaultKind::PartitionStart {
                    groups: vec![vec![0, 1, 2], vec![4, 5], vec![6, 7, 8]],
                },
            )
            .with_event(2500.0, FaultKind::Recover { node: 3 })
            .with_event(3000.0, FaultKind::PartitionEnd)
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let plan = sample();
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        for seed in [1u64, 2, 0xC0FFEE] {
            let a = FaultPlan::random(seed, 9, 500.0, 8000.0);
            let b = FaultPlan::random(seed, 9, 500.0, 8000.0);
            assert_eq!(a, b, "seed {seed} must reproduce the plan");
            a.validate(9, 8000.0).unwrap();
            let rt = FaultPlan::from_text(&a.to_text()).unwrap();
            assert_eq!(a, rt, "seed {seed} plan must survive the text codec");
        }
        assert_ne!(FaultPlan::random(1, 9, 500.0, 8000.0), FaultPlan::random(2, 9, 500.0, 8000.0));
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let ok = sample();
        assert!(ok.validate(9, 5000.0).is_ok());
        assert!(ok.validate(4, 5000.0).is_err(), "partition member out of range");
        assert!(ok.validate(9, 2000.0).is_err(), "event past duration");
        let double_crash = FaultPlan::new(100.0, 100.0)
            .with_event(1.0, FaultKind::Crash { node: 0 })
            .with_event(2.0, FaultKind::Crash { node: 0 });
        assert!(double_crash.validate(4, 10.0).is_err());
        let too_many_down = FaultPlan::new(100.0, 100.0)
            .with_event(1.0, FaultKind::Crash { node: 0 })
            .with_event(2.0, FaultKind::Crash { node: 1 });
        assert!(too_many_down.validate(3, 10.0).is_err());
        let unsorted = FaultPlan::new(100.0, 100.0)
            .with_event(5.0, FaultKind::Crash { node: 0 })
            .with_event(1.0, FaultKind::Recover { node: 0 });
        assert!(unsorted.validate(4, 10.0).is_err());
        let overlap = FaultPlan::new(100.0, 100.0)
            .with_event(1.0, FaultKind::PartitionStart { groups: vec![vec![0, 1], vec![1, 2]] });
        assert!(overlap.validate(4, 10.0).is_err());
        let stray_heal = FaultPlan::new(100.0, 100.0).with_event(1.0, FaultKind::PartitionEnd);
        assert!(stray_heal.validate(4, 10.0).is_err());
    }

    #[test]
    fn split_groups_covers_everyone_disjointly() {
        let groups = FaultPlan::split_groups(9, 3);
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        assert_eq!(FaultPlan::split_groups(5, 2).concat().len(), 5);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = FaultPlan::from_text("faultplan v1\ncrash x @ 5").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("not a plan").is_err());
    }
}
