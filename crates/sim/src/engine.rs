//! The discrete-event simulation engine.
//!
//! Reproduces the paper's §5.4 methodology: every process generates
//! messages as a Poisson process (exponential inter-send times), each
//! message draws a propagation delay `d ~ N(μ, σ²)` and each receiver an
//! individual delay `~ N(d, σ_m²)`; receptions enqueue into the ordering
//! discipline's pending buffer and deliveries are classified against the
//! ground-truth oracle. Beyond the paper's model, the engine optionally
//! simulates lossy links with retransmission ([`crate::config::LossModel`])
//! and membership churn with join-time state transfer
//! ([`crate::config::ChurnModel`]). All virtual times are in
//! **microseconds**; the engine is fully deterministic for a given
//! [`SimConfig::seed`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pcb_broadcast::Discipline;
use pcb_clock::{AssignmentPolicy, Gap, KeyAssigner, KeySet, KeySpace, ProcessId};
use pcb_telemetry::{TraceEvent, TraceRecord, Tracer};

use crate::config::{Dissemination, SimConfig};
use crate::metrics::RunMetrics;
use crate::oracle::{EpsilonEstimator, ExactChecker};
use crate::rng::SimRng;
use crate::wake::WakeTable;

/// Errors building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// Key assignment failed (distinct policy exhausted, bad space).
    Assignment(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            Self::Assignment(msg) => write!(f, "key assignment failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

pub(crate) const MICROS_PER_MS: f64 = 1000.0;

pub(crate) fn ms_to_us(ms: f64) -> u64 {
    (ms * MICROS_PER_MS).round() as u64
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    tie: u64,
    kind: EvKind,
}

#[derive(Debug, PartialEq, Eq)]
enum EvKind {
    Send { p: u32 },
    Recv { p: u32, msg: u32 },
    Join { p: u32 },
    SyncDone { p: u32 },
    Leave { p: u32 },
}

// Min-heap ordering on (time, tie): BinaryHeap is a max-heap, so reverse.
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.tie).cmp(&(self.time, self.tie))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct MsgRec<S> {
    sender: u32,
    seq: u32,
    sent_at: u64,
    measured: bool,
    targets: u32,
    delivered_to: u32,
    stamp: Option<S>,
    tvc: Option<Box<[u32]>>,
}

struct Proc<D> {
    disc: D,
    active: bool,
    syncing: bool,
    /// Entry-indexed pending set: received messages parked on the wake
    /// channel they are blocked on (see [`crate::wake`]).
    wake: WakeTable,
    true_vc: Vec<u32>,
    sent_count: u32,
    exact: Option<ExactChecker>,
    eps: Option<EpsilonEstimator>,
    seen: Option<Vec<u64>>,
    tracer: Tracer,
}

impl<D> Proc<D> {
    fn saw(&mut self, msg: u32) -> bool {
        let bits = self.seen.as_mut().expect("seen bitmap in gossip mode");
        let (word, bit) = ((msg / 64) as usize, msg % 64);
        if bits.len() <= word {
            bits.resize(word + 1, 0);
        }
        let already = bits[word] & (1 << bit) != 0;
        bits[word] |= 1 << bit;
        already
    }
}

struct Engine<'c, D: Discipline> {
    cfg: &'c SimConfig,
    keys: Vec<KeySet>,
    procs: Vec<Proc<D>>,
    msgs: Vec<MsgRec<D::Stamp>>,
    heap: BinaryHeap<Ev>,
    tie: u64,
    rng: SimRng,
    metrics: RunMetrics,
    gossip_fanout: Option<usize>,
    track_truth: bool,
    duration_us: u64,
    warmup_us: u64,
}

impl<D: Discipline + Clone> Engine<'_, D> {
    fn push(&mut self, time: u64, kind: EvKind) {
        self.tie += 1;
        self.heap.push(Ev { time, tie: self.tie, kind });
    }

    fn schedule_next_send(&mut self, p: u32, now: u64) {
        let next =
            now + self.rng.exponential(self.cfg.mean_send_interval_ms * MICROS_PER_MS) as u64;
        if next <= self.duration_us {
            self.push(next, EvKind::Send { p });
        }
    }

    fn schedule_leave(&mut self, p: u32, now: u64) {
        if let Some(lifetime) = self.cfg.churn.and_then(|c| c.mean_lifetime_ms) {
            let at = now + self.rng.exponential(lifetime * MICROS_PER_MS) as u64;
            if at <= self.duration_us {
                self.push(at, EvKind::Leave { p });
            }
        }
    }

    /// Per-message base delay `d` (ms) under the configured distribution
    /// shape, moment-matched to `(μ, σ)`.
    fn sample_base_delay_ms(&mut self) -> f64 {
        use crate::config::LatencyDistribution::{Bimodal, Gaussian, LogNormal, Uniform};
        let mu = self.cfg.latency_mean_ms;
        let sigma = self.cfg.latency_sigma_ms;
        let floor = self.cfg.latency_floor_ms;
        match self.cfg.latency_distribution {
            Gaussian => self.rng.normal_clamped(mu, sigma, floor),
            Uniform => self.rng.uniform_matched(mu, sigma).max(floor),
            LogNormal => self.rng.lognormal_matched(mu, sigma).max(floor),
            Bimodal => {
                let cluster_mu = if self.rng.uniform_open() < 0.5 { mu * 0.5 } else { mu * 1.5 };
                self.rng.normal_clamped(cluster_mu, sigma, floor)
            }
        }
    }

    /// Link delay in microseconds around base `d_ms`, including the
    /// lossy-link retransmission penalty when configured.
    fn link_delay_us(&mut self, d_ms: f64) -> u64 {
        let delay =
            self.rng.normal_clamped(d_ms, self.cfg.skew_sigma_ms, self.cfg.latency_floor_ms);
        let mut us = ms_to_us(delay);
        if let Some(loss) = self.cfg.loss {
            while self.rng.uniform_open() < loss.drop_probability {
                us += ms_to_us(loss.retransmit_ms);
            }
        }
        us
    }

    fn activate(&mut self, p: u32, now: u64) {
        self.procs[p as usize].active = true;
        self.schedule_next_send(p, now);
        self.schedule_leave(p, now);
    }

    /// Join phase 1: start receiving (buffered) and wait one sync window
    /// so everything in flight at join time lands at the future donor.
    fn begin_join(&mut self, p: u32, now: u64) {
        let window = self.cfg.churn.map_or(500.0, |c| c.sync_window_ms);
        let proc = &mut self.procs[p as usize];
        proc.active = true;
        proc.syncing = true;
        self.push(now + ms_to_us(window), EvKind::SyncDone { p });
    }

    /// Join phase 2: adopt a donor's protocol + oracle state, discard
    /// buffered messages the snapshot already contains, and go live.
    fn finish_join(&mut self, p: u32, now: u64) {
        let pi = p as usize;
        if !self.procs[pi].active {
            return; // left (or never completed) before syncing finished
        }
        self.procs[pi].syncing = false;
        if let Some(di) = self.pick_donor(p) {
            let di = di as usize;
            let (donor_exact, donor_eps, donor_vc) = {
                let dp = &self.procs[di];
                (dp.exact.clone(), dp.eps.clone(), dp.true_vc.clone())
            };
            // Split borrows to copy the discipline state.
            let (lo, hi) = self.procs.split_at_mut(pi.max(di));
            let (joiner, donor_ref) =
                if pi < di { (&mut lo[pi], &hi[0]) } else { (&mut hi[0], &lo[di]) };
            joiner.disc.adopt_state(&donor_ref.disc);
            joiner.exact = donor_exact;
            joiner.eps = donor_eps;
            joiner.true_vc = donor_vc;
            // State adoption moved the clock non-monotonically: every
            // parked threshold and Never verdict is stale. Pull the whole
            // buffer out and re-classify from scratch, dropping messages
            // the snapshot already contains — in a real system the
            // recovery layer's dedup does this.
            let pending = self.procs[pi].wake.drain_all();
            for (midx, arrived) in pending {
                let in_snapshot = {
                    let rec = &self.msgs[midx as usize];
                    self.procs[pi]
                        .exact
                        .as_ref()
                        .is_some_and(|e| e.contains(rec.sender as usize, rec.seq))
                };
                if in_snapshot {
                    self.msgs[midx as usize].delivered_to += 1; // via the snapshot
                } else {
                    let ticket = self.procs[pi].wake.ticket();
                    self.classify(pi, ticket, midx, arrived, 0);
                }
            }
        }
        self.metrics.joins += 1;
        self.schedule_next_send(p, now);
        self.schedule_leave(p, now);
        self.drain(pi, now);
    }

    fn pick_donor(&mut self, exclude: u32) -> Option<u32> {
        let candidates: Vec<u32> = (0..self.procs.len() as u32)
            .filter(|&q| {
                q != exclude && self.procs[q as usize].active && !self.procs[q as usize].syncing
            })
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.index(candidates.len())])
        }
    }

    fn handle_send(&mut self, p: u32, now: u64) {
        let pi = p as usize;
        if !self.procs[pi].active || self.procs[pi].syncing {
            return;
        }
        self.schedule_next_send(p, now);

        // Algorithm 1: stamp and broadcast.
        let proc = &mut self.procs[pi];
        proc.sent_count += 1;
        let seq = proc.sent_count;
        if self.track_truth {
            proc.true_vc[pi] += 1;
        }
        // A process's own sends belong to its causal past without ever
        // being delivered to it; tell the oracles.
        if let Some(exact) = &mut proc.exact {
            exact.record(pi, seq);
        }
        if let Some(eps) = &mut proc.eps {
            eps.record_own_send(pi);
        }
        let stamp = proc.disc.stamp_send();
        let tvc = self.track_truth.then(|| proc.true_vc.clone().into_boxed_slice());
        let measured = now >= self.warmup_us;
        if measured {
            self.metrics.sent += 1;
            self.metrics.control_bytes += D::stamp_wire_size(&stamp) as u64;
        }
        let midx = self.msgs.len() as u32;
        let targets = self.procs.iter().filter(|q| q.active).count() as u32 - 1;
        {
            let keys = &self.keys[pi];
            let key_vals =
                self.procs[pi].tracer.enabled().then(|| D::stamp_key_values(&stamp, keys));
            self.procs[pi].tracer.emit_at(now, || TraceEvent::Sent {
                sender: p,
                seq: u64::from(seq),
                keys: keys.entries().to_vec(),
                key_vals: key_vals.unwrap_or_default(),
            });
        }
        self.msgs.push(MsgRec {
            sender: p,
            seq,
            sent_at: now,
            measured,
            targets,
            delivered_to: 0,
            stamp: Some(stamp),
            tvc,
        });

        match self.gossip_fanout {
            None => {
                // Reliable broadcast: one delivery per other active process.
                let d = self.sample_base_delay_ms();
                for q in 0..self.procs.len() as u32 {
                    if q == p || !self.procs[q as usize].active {
                        continue;
                    }
                    let delay = self.link_delay_us(d);
                    self.push(now + delay, EvKind::Recv { p: q, msg: midx });
                }
            }
            Some(fanout) => {
                self.procs[pi].saw(midx);
                self.relay(pi, midx, now, fanout);
            }
        }
    }

    fn relay(&mut self, from: usize, msg: u32, now: u64, fanout: usize) {
        let n = self.procs.len();
        for _ in 0..fanout {
            // Uniform peer other than the relayer (repeats across picks
            // are allowed: real gossip targets are sampled with
            // replacement).
            let mut q = self.rng.index(n - 1);
            if q >= from {
                q += 1;
            }
            let delay = self.sample_base_delay_ms();
            self.push(now + ms_to_us(delay), EvKind::Recv { p: q as u32, msg });
        }
    }

    fn handle_recv(&mut self, p: u32, msg: u32, now: u64) {
        let pi = p as usize;
        if !self.procs[pi].active {
            return;
        }
        if let Some(fanout) = self.gossip_fanout {
            if self.procs[pi].saw(msg) {
                if self.msgs[msg as usize].measured {
                    self.metrics.duplicates += 1;
                }
                return;
            }
            self.relay(pi, msg, now, fanout);
        }
        // Snapshot dedup (churn only): a joiner's adopted state may
        // already contain a message that was still in flight to it — the
        // recovery layer's id-based dedup drops such late copies.
        if self.cfg.churn.is_some() {
            let rec = &self.msgs[msg as usize];
            let in_snapshot = self.procs[pi]
                .exact
                .as_ref()
                .is_some_and(|e| e.contains(rec.sender as usize, rec.seq));
            if in_snapshot {
                self.msgs[msg as usize].delivered_to += 1;
                return;
            }
        }
        let (sender, seq) = {
            let rec = &self.msgs[msg as usize];
            (rec.sender, u64::from(rec.seq))
        };
        self.procs[pi].tracer.emit_at(now, || TraceEvent::Received { sender, seq });
        let ticket = self.procs[pi].wake.ticket();
        let gap = self.classify(pi, ticket, msg, now, 0);
        if let Gap::Blocked { entry, required } = gap {
            self.procs[pi].tracer.emit_at(now, || TraceEvent::Parked {
                sender,
                seq,
                entry: entry as u32,
                threshold: required,
            });
        }
        self.metrics.pending_peak = self.metrics.pending_peak.max(self.procs[pi].wake.len());
        // A syncing joiner only buffers; the sync-done reconciliation
        // drains whatever the snapshot does not cover.
        if !self.procs[pi].syncing {
            self.drain(pi, now);
        }
    }

    /// Asks the discipline where the message blocks (resuming the channel
    /// scan at `start`), files the verdict in the wake table, and returns
    /// it so callers can trace where the message went.
    fn classify(&mut self, pi: usize, ticket: u64, msg: u32, arrived: u64, start: usize) -> Gap {
        let gap = {
            let rec = &self.msgs[msg as usize];
            let sender = ProcessId::new(rec.sender as usize);
            let stamp = rec.stamp.as_ref().expect("stamp alive while pending");
            self.procs[pi].disc.wait_gap(sender, &self.keys[rec.sender as usize], stamp, start)
        };
        match gap {
            Gap::Ready => self.procs[pi].wake.make_ready(ticket, msg, arrived),
            Gap::Blocked { entry, required } => {
                self.procs[pi].wake.park(entry, required, ticket, msg, arrived);
            }
            Gap::Never => self.procs[pi].wake.kill(msg, arrived),
        }
        gap
    }

    /// Delivers everything ready, waking only the waiters parked on the
    /// channels each delivery advanced — `O(actually-unblocked)` per
    /// delivery instead of the old `O(pending)` restart scan. Ready
    /// messages pop in arrival order, so the delivery order is exactly
    /// the legacy scan's.
    fn drain(&mut self, pi: usize, now: u64) {
        let n = self.procs.len();
        let direct = self.gossip_fanout.is_none();
        let mut advanced: Vec<usize> = Vec::new();
        let mut woken: Vec<(u64, u32, u64)> = Vec::new();
        while let Some((midx, arrived_at)) = self.procs[pi].wake.pop_ready() {
            advanced.clear();
            {
                let rec = &self.msgs[midx as usize];
                let sender = ProcessId::new(rec.sender as usize);
                let stamp = rec.stamp.as_ref().expect("stamp alive while pending");
                self.procs[pi].disc.advanced_channels(
                    sender,
                    &self.keys[rec.sender as usize],
                    stamp,
                    &mut advanced,
                );
            }
            self.deliver(pi, midx, arrived_at, now, n, direct);
            for &channel in &advanced {
                let value = self.procs[pi].disc.channel_value(channel);
                woken.clear();
                self.procs[pi].wake.pop_woken(channel, value, &mut woken);
                for &(ticket, msg, arrived) in &woken {
                    let (sender, seq) = {
                        let rec = &self.msgs[msg as usize];
                        (rec.sender, u64::from(rec.seq))
                    };
                    self.procs[pi].tracer.emit_at(now, || TraceEvent::Woken {
                        sender,
                        seq,
                        entry: channel as u32,
                    });
                    // Resume each waiter's scan at the channel it was
                    // parked on: earlier channels stayed satisfied.
                    self.classify(pi, ticket, msg, arrived, channel);
                }
            }
        }
    }

    fn deliver(&mut self, pi: usize, midx: u32, arrived_at: u64, now: u64, n: usize, direct: bool) {
        let proc = &mut self.procs[pi];
        let rec = &mut self.msgs[midx as usize];
        let sender = ProcessId::new(rec.sender as usize);
        let sender_keys = &self.keys[rec.sender as usize];
        let stamp = rec.stamp.take().expect("stamp alive while pending");
        let alerts = proc.disc.record_delivery(now, sender, sender_keys, &stamp);

        let mut violation = false;
        if let Some(tvc) = rec.tvc.as_deref() {
            if let Some(exact) = &mut proc.exact {
                violation = exact.deliver(rec.sender as usize, rec.seq, tvc);
            }
            let mut eps_outcome = None;
            if let Some(eps) = &mut proc.eps {
                eps_outcome = Some(eps.deliver(rec.sender as usize, tvc));
            }
            if rec.measured {
                use crate::oracle::EpsilonOutcome;
                match eps_outcome {
                    Some(EpsilonOutcome::Wrong) => {
                        self.metrics.eps_min += 1;
                        self.metrics.eps_max += 1;
                    }
                    Some(EpsilonOutcome::Stale) => self.metrics.eps_max += 1,
                    _ => {}
                }
            }
            // Merge the message's causal knowledge into ours.
            for (mine, &theirs) in proc.true_vc.iter_mut().zip(tvc) {
                *mine = (*mine).max(theirs);
            }
        }

        rec.delivered_to += 1;
        let (ev_sender, ev_seq) = (rec.sender, u64::from(rec.seq));
        let blocked_for = now.saturating_sub(arrived_at);
        proc.tracer.emit_at(now, || TraceEvent::Delivered {
            sender: ev_sender,
            seq: ev_seq,
            blocked_for,
            alert4: alerts.instant,
            alert5: alerts.recent,
            violation,
        });
        // `suspects` approximates the in-flight concurrency X an operator
        // sees at alert time: the local pending backlog.
        let suspects = proc.wake.len() as u32;
        if alerts.instant {
            proc.tracer.emit_at(now, || TraceEvent::Alert {
                alg: 4,
                sender: ev_sender,
                seq: ev_seq,
                suspects,
            });
        }
        if alerts.recent {
            proc.tracer.emit_at(now, || TraceEvent::Alert {
                alg: 5,
                sender: ev_sender,
                seq: ev_seq,
                suspects,
            });
        }
        if rec.measured {
            self.metrics.deliveries += 1;
            self.metrics.exact_violations += u64::from(violation);
            self.metrics.alg4_alerts += u64::from(alerts.instant);
            self.metrics.alg5_alerts += u64::from(alerts.recent);
            self.metrics.undetected_violations += u64::from(violation && !alerts.instant);
            self.metrics.delay_ms.push((now - rec.sent_at) as f64 / MICROS_PER_MS);
            self.metrics.blocking_ms.push((now - arrived_at) as f64 / MICROS_PER_MS);
        }
        // Free the arena slot once everyone has it (direct mode).
        if direct && rec.delivered_to >= rec.targets {
            rec.tvc = None;
        } else {
            rec.stamp = Some(stamp);
        }
        let _ = n;
    }
}

/// Runs one simulation, constructing each process's discipline with
/// `make(id, keys)`.
///
/// The discipline's `record_delivery` receives the virtual time in
/// microseconds, so Algorithm 5 windows must be specified in microseconds.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for bad parameters,
/// [`SimError::Assignment`] if key assignment fails.
pub fn simulate<D, F>(config: &SimConfig, space: KeySpace, make: F) -> Result<RunMetrics, SimError>
where
    D: Discipline + Clone,
    F: FnMut(ProcessId, KeySet) -> D,
{
    simulate_traced(config, space, make).map(|(metrics, _)| metrics)
}

/// [`simulate`] that also returns the collected lifecycle trace: every
/// process's ring drained at run end, globally ordered by virtual time
/// (ties keep per-node emission order — the sort is stable over the
/// node-order concatenation). Empty unless
/// [`SimConfig::trace_capacity`] is non-zero.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_traced<D, F>(
    config: &SimConfig,
    space: KeySpace,
    mut make: F,
) -> Result<(RunMetrics, Vec<TraceRecord>), SimError>
where
    D: Discipline + Clone,
    F: FnMut(ProcessId, KeySet) -> D,
{
    config.validate().map_err(SimError::InvalidConfig)?;
    if config.faults.is_some() {
        return Err(SimError::InvalidConfig(
            "fault plans run through the endpoint chaos engine \
             (crate::chaos::simulate_endpoint_chaos, or the simulate_prob / \
             simulate_vector fronts), not the discipline engine"
                .into(),
        ));
    }
    let started = Instant::now();
    let n = config.n;
    let track_truth = config.track_exact || config.track_epsilon;
    let gossip_fanout = match config.dissemination {
        Dissemination::Direct => None,
        Dissemination::Gossip { fanout } => Some(fanout.min(n - 1)),
    };

    let mut assigner =
        KeyAssigner::new(space, config.policy, crate::rng::derive_seed(config.seed, 1));
    let keys: Vec<KeySet> =
        assigner.assign_n(n).map_err(|e| SimError::Assignment(e.to_string()))?;

    let initial_active = config.churn.map_or(n, |c| c.initial);
    let procs: Vec<Proc<D>> = (0..n)
        .map(|i| {
            let disc = make(ProcessId::new(i), keys[i].clone());
            let wake = WakeTable::new(disc.channel_count());
            Proc {
                disc,
                active: false,
                syncing: false,
                wake,
                true_vc: if track_truth { vec![0u32; n] } else { Vec::new() },
                sent_count: 0,
                exact: config.track_exact.then(|| ExactChecker::new(n)),
                eps: config.track_epsilon.then(|| EpsilonEstimator::new(n)),
                seen: gossip_fanout.is_some().then(Vec::new),
                tracer: Tracer::ring(i as u32, config.trace_capacity),
            }
        })
        .collect();

    let mut engine = Engine {
        cfg: config,
        keys,
        procs,
        msgs: Vec::new(),
        heap: BinaryHeap::new(),
        tie: 0,
        rng: SimRng::new(crate::rng::derive_seed(config.seed, 2)),
        metrics: RunMetrics::default(),
        gossip_fanout,
        track_truth,
        duration_us: ms_to_us(config.duration_ms),
        warmup_us: ms_to_us(config.warmup_ms),
    };

    // Bring up the initial membership (no state transfer at time zero).
    for p in 0..initial_active as u32 {
        engine.activate(p, 0);
    }
    // Schedule later joins as Poisson arrivals over the remaining ids.
    if let Some(churn) = config.churn {
        if churn.join_rate_per_sec > 0.0 {
            let mut t = 0u64;
            for p in initial_active as u32..n as u32 {
                t +=
                    engine.rng.exponential(1000.0 * MICROS_PER_MS / churn.join_rate_per_sec) as u64;
                if t > engine.duration_us {
                    break;
                }
                engine.push(t, EvKind::Join { p });
            }
        }
    }

    let mut last_time = 0u64;
    while let Some(ev) = engine.heap.pop() {
        debug_assert!(ev.time >= last_time, "event times must be monotone");
        last_time = ev.time;
        match ev.kind {
            EvKind::Send { p } => engine.handle_send(p, ev.time),
            EvKind::Recv { p, msg } => engine.handle_recv(p, msg, ev.time),
            EvKind::Join { p } => engine.begin_join(p, ev.time),
            EvKind::SyncDone { p } => engine.finish_join(p, ev.time),
            EvKind::Leave { p } => {
                let proc = &mut engine.procs[p as usize];
                if proc.active {
                    proc.active = false;
                    proc.syncing = false;
                    proc.wake.clear();
                    engine.metrics.leaves += 1;
                }
            }
        }
    }

    let mut metrics = engine.metrics;
    // Liveness accounting (Lemma 1: zero under direct dissemination with
    // static membership).
    metrics.stuck = engine
        .procs
        .iter()
        .flat_map(|pr| pr.wake.pending_msgs())
        .filter(|(m, _)| engine.msgs[*m as usize].measured)
        .count() as u64;
    for pr in &engine.procs {
        metrics.wake_gap_checks += pr.wake.stats().gap_checks;
        metrics.wake_wakeups += pr.wake.stats().wakeups;
    }
    metrics.undelivered = engine
        .msgs
        .iter()
        .filter(|m| m.measured)
        .map(|m| u64::from(m.targets.saturating_sub(m.delivered_to)))
        .sum();
    metrics.wall_secs = started.elapsed().as_secs_f64();
    metrics.virtual_ms = last_time as f64 / MICROS_PER_MS;
    let mut trace: Vec<TraceRecord> = Vec::new();
    for pr in &mut engine.procs {
        trace.extend(pr.tracer.drain());
    }
    trace.sort_by_key(|r| r.time);
    Ok((metrics, trace))
}

/// Convenience: simulate the paper's probabilistic discipline over `space`.
///
/// Configurations carrying a fault plan run through the endpoint chaos
/// engine ([`crate::chaos`]): every process is hosted by the production
/// [`pcb_broadcast::Endpoint`] rather than a lean discipline.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_prob(config: &SimConfig, space: KeySpace) -> Result<RunMetrics, SimError> {
    simulate_prob_traced(config, space).map(|(metrics, _)| metrics)
}

/// Convenience: [`simulate_traced`] over the paper's probabilistic
/// discipline (fault plans dispatch to [`crate::chaos`], see
/// [`simulate_prob`]).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_prob_traced(
    config: &SimConfig,
    space: KeySpace,
) -> Result<(RunMetrics, Vec<TraceRecord>), SimError> {
    if config.faults.is_some() {
        return crate::chaos::simulate_endpoint_chaos(config, space, config.policy);
    }
    simulate_traced(config, space, |_, keys| pcb_broadcast::ProbDiscipline::new(keys))
}

/// Convenience: probabilistic discipline with the Algorithm 5 detector
/// (window in milliseconds, converted to engine microseconds).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_prob_detecting(
    config: &SimConfig,
    space: KeySpace,
    window_ms: f64,
) -> Result<RunMetrics, SimError> {
    let window_us = ms_to_us(window_ms);
    simulate(config, space, |_, keys| pcb_broadcast::DetectingProbDiscipline::new(keys, window_us))
}

/// Convenience: the exact vector-clock baseline.
///
/// Fault plans dispatch to the endpoint chaos engine with the full
/// per-process key space — `(R, K) = (N, 1)` distinct entries behave
/// exactly like a vector clock, so the certified code path is still the
/// production [`pcb_broadcast::Endpoint`].
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_vector(config: &SimConfig) -> Result<RunMetrics, SimError> {
    let n = config.n;
    if config.faults.is_some() {
        let space = KeySpace::vector(n).map_err(|e| SimError::InvalidConfig(e.to_string()))?;
        return crate::chaos::simulate_endpoint_chaos(config, space, AssignmentPolicy::RoundRobin)
            .map(|(metrics, _)| metrics);
    }
    let space = KeySpace::new(1, 1).expect("trivial space");
    simulate(config, space, |id, _| pcb_broadcast::VectorDiscipline::new(id, n))
}

/// Convenience: FIFO-only ordering baseline.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_fifo(config: &SimConfig) -> Result<RunMetrics, SimError> {
    let space = KeySpace::new(1, 1).expect("trivial space");
    let n = config.n;
    simulate(config, space, |_, _| pcb_broadcast::FifoDiscipline::new(n))
}

/// Convenience: unordered delivery baseline.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_immediate(config: &SimConfig) -> Result<RunMetrics, SimError> {
    let space = KeySpace::new(1, 1).expect("trivial space");
    simulate(config, space, |_, _| pcb_broadcast::ImmediateDiscipline::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChurnModel, LossModel};

    fn tiny_config() -> SimConfig {
        SimConfig {
            n: 8,
            mean_send_interval_ms: 200.0,
            duration_ms: 3000.0,
            warmup_ms: 200.0,
            seed: 42,
            ..SimConfig::default()
        }
    }

    #[test]
    fn vector_baseline_has_zero_violations() {
        let metrics = simulate_vector(&tiny_config()).unwrap();
        assert!(metrics.deliveries > 0);
        assert_eq!(metrics.exact_violations, 0, "vector clocks are exact");
        assert_eq!(metrics.eps_min, 0);
        assert_eq!(metrics.eps_max, 0);
        assert_eq!(metrics.stuck, 0);
        assert_eq!(metrics.undelivered, 0);
    }

    #[test]
    fn prob_with_full_vector_is_exact() {
        // (R, K) = (N, 1) distinct entries: behaves like a vector clock.
        let cfg = tiny_config();
        let space = KeySpace::vector(cfg.n).unwrap();
        let cfg_distinct = SimConfig { policy: pcb_clock::AssignmentPolicy::RoundRobin, ..cfg };
        let metrics = simulate_prob(&cfg_distinct, space).unwrap();
        assert!(metrics.deliveries > 0);
        assert_eq!(metrics.exact_violations, 0);
        assert_eq!(metrics.stuck, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = tiny_config();
        let space = KeySpace::new(16, 2).unwrap();
        let a = simulate_prob(&cfg, space).unwrap();
        let b = simulate_prob(&cfg, space).unwrap();
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.exact_violations, b.exact_violations);
        assert_eq!(a.alg4_alerts, b.alg4_alerts);
        assert_eq!(a.delay_ms.mean(), b.delay_ms.mean());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = tiny_config();
        let space = KeySpace::new(16, 2).unwrap();
        let a = simulate_prob(&cfg, space).unwrap();
        let b = simulate_prob(&SimConfig { seed: 43, ..cfg }, space).unwrap();
        // Counts could coincide, but full delay statistics colliding is
        // implausible.
        assert!(a.sent != b.sent || a.delay_ms.mean() != b.delay_ms.mean());
    }

    #[test]
    fn direct_dissemination_delivers_everything() {
        let cfg = tiny_config();
        let space = KeySpace::new(16, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert_eq!(m.stuck, 0, "Lemma 1: no message stays blocked");
        assert_eq!(m.undelivered, 0);
        assert_eq!(m.deliveries % (cfg.n as u64 - 1), 0);
        assert_eq!(m.deliveries, m.sent * (cfg.n as u64 - 1));
    }

    #[test]
    fn immediate_discipline_sees_raw_reorder_rate() {
        // Without ordering, violations happen at the raw network rate;
        // with a heavy send rate they must show up.
        let cfg = SimConfig {
            n: 8,
            mean_send_interval_ms: 20.0,
            duration_ms: 2000.0,
            warmup_ms: 100.0,
            ..SimConfig::default()
        };
        let m = simulate_immediate(&cfg).unwrap();
        assert!(m.deliveries > 1000);
        assert!(m.exact_violations > 0, "heavy concurrency must produce unordered violations");
    }

    #[test]
    fn fifo_fixes_same_sender_but_not_cross_sender() {
        let cfg = SimConfig {
            n: 8,
            mean_send_interval_ms: 20.0,
            duration_ms: 2000.0,
            warmup_ms: 100.0,
            ..SimConfig::default()
        };
        let fifo = simulate_fifo(&cfg).unwrap();
        let none = simulate_immediate(&cfg).unwrap();
        assert!(fifo.exact_violations > 0, "FIFO alone cannot ensure causality");
        assert!(
            fifo.violation_rate() < none.violation_rate(),
            "but FIFO must beat no ordering: {} vs {}",
            fifo.violation_rate(),
            none.violation_rate()
        );
    }

    #[test]
    fn epsilon_brackets_exact() {
        // Under heavy load with a tiny clock, violations occur; the
        // paper's bounds must bracket the exact count.
        let cfg = SimConfig {
            n: 10,
            mean_send_interval_ms: 30.0,
            duration_ms: 3000.0,
            warmup_ms: 100.0,
            ..SimConfig::default()
        };
        let space = KeySpace::new(8, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert!(m.exact_violations > 0, "tiny clock under load must err");
        assert!(m.eps_min <= m.exact_violations, "{} > {}", m.eps_min, m.exact_violations);
        assert!(m.eps_max >= m.exact_violations, "{} < {}", m.eps_max, m.exact_violations);
    }

    #[test]
    fn alerts_are_sound_no_alert_no_late_error() {
        let cfg = SimConfig {
            n: 10,
            mean_send_interval_ms: 30.0,
            duration_ms: 3000.0,
            warmup_ms: 100.0,
            ..SimConfig::default()
        };
        let space = KeySpace::new(8, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        if m.exact_violations > 0 {
            assert!(m.alg4_alerts > 0, "violations without any Algorithm 4 alert");
        }
        assert!(m.alg4_alerts >= m.eps_min, "Alg 4 over-estimates");
    }

    #[test]
    fn gossip_reaches_most_processes_with_log_fanout() {
        let cfg = SimConfig {
            n: 32,
            mean_send_interval_ms: 2000.0,
            duration_ms: 6000.0,
            warmup_ms: 500.0,
            dissemination: Dissemination::Gossip { fanout: 6 },
            ..SimConfig::default()
        };
        let space = KeySpace::new(16, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert!(m.deliveries > 0);
        assert!(m.duplicates > 0, "gossip must produce duplicates");
        let possible = m.sent * (cfg.n as u64 - 1);
        // Transport-level reach: delivered plus causally blocked (blocked
        // messages did arrive; their dependencies were lost by gossip).
        let reached = (m.deliveries + m.stuck) as f64 / possible as f64;
        assert!(reached > 0.95, "fanout 6 should reach >95%, got {reached}");
        let delivered = m.deliveries as f64 / possible as f64;
        assert!(
            delivered > 0.5,
            "most messages should still clear the causal guard, got {delivered}"
        );
        assert!(m.undelivered >= m.stuck, "undelivered covers both lost and blocked messages");
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = SimConfig { n: 1, ..SimConfig::default() };
        let err = simulate_vector(&cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("2 processes"));
    }

    #[test]
    fn detector_rates_ordered_alg5_below_alg4() {
        let cfg = SimConfig {
            n: 12,
            mean_send_interval_ms: 40.0,
            duration_ms: 3000.0,
            warmup_ms: 100.0,
            ..SimConfig::default()
        };
        let space = KeySpace::new(8, 2).unwrap();
        let m = simulate_prob_detecting(&cfg, space, 250.0).unwrap();
        assert!(
            m.alg5_alerts <= m.alg4_alerts,
            "Algorithm 5 refines Algorithm 4: {} > {}",
            m.alg5_alerts,
            m.alg4_alerts
        );
    }

    #[test]
    fn loss_with_retransmission_stays_live_but_reorders_more() {
        let cfg = tiny_config();
        let lossy = SimConfig {
            loss: Some(LossModel { drop_probability: 0.3, retransmit_ms: 150.0 }),
            mean_send_interval_ms: 40.0,
            ..cfg.clone()
        };
        let clean = SimConfig { mean_send_interval_ms: 40.0, ..cfg };
        let space = KeySpace::new(16, 2).unwrap();
        let a = simulate_prob(&clean, space).unwrap();
        let b = simulate_prob(&lossy, space).unwrap();
        assert_eq!(b.stuck, 0, "retransmission preserves liveness");
        assert_eq!(b.undelivered, 0);
        assert!(
            b.delay_ms.mean() > a.delay_ms.mean(),
            "retransmits add delay: {} vs {}",
            b.delay_ms.mean(),
            a.delay_ms.mean()
        );
        assert!(
            b.violation_rate() >= a.violation_rate(),
            "loss-induced reordering must not reduce violations: {} vs {}",
            b.violation_rate(),
            a.violation_rate()
        );
    }

    #[test]
    fn churn_joins_and_leaves_processes() {
        let cfg = SimConfig {
            n: 24,
            mean_send_interval_ms: 100.0,
            duration_ms: 8000.0,
            warmup_ms: 200.0,
            churn: Some(ChurnModel {
                mean_lifetime_ms: Some(6000.0),
                ..ChurnModel::growing(8, 4.0)
            }),
            ..SimConfig::default()
        };
        let space = KeySpace::new(32, 3).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert!(m.joins > 0, "joins must happen");
        assert!(m.leaves > 0, "leaves must happen");
        assert!(m.deliveries > 0);
        // Stamp size unchanged by churn: 32 entries * 8 bytes.
        assert_eq!(m.control_bytes_per_message(), 256.0);
    }

    #[test]
    fn churn_join_state_transfer_keeps_joiners_current() {
        // Joins with state transfer: the joiner can deliver new messages
        // whose causal past predates its join. Without transfer it would
        // sit blocked forever; with it, stuck stays small relative to
        // deliveries.
        let cfg = SimConfig {
            n: 20,
            mean_send_interval_ms: 100.0,
            duration_ms: 8000.0,
            warmup_ms: 200.0,
            churn: Some(ChurnModel::growing(10, 2.0)),
            ..SimConfig::default()
        };
        let space = KeySpace::new(32, 3).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert!(m.joins > 0);
        assert_eq!(m.leaves, 0);
        assert!(
            (m.stuck as f64) < 0.02 * m.deliveries as f64,
            "state transfer keeps blocking negligible: stuck={} deliveries={}",
            m.stuck,
            m.deliveries
        );
    }

    #[test]
    fn latency_distributions_all_run_live() {
        use crate::config::LatencyDistribution;
        let space = KeySpace::new(16, 2).unwrap();
        let mut rates = Vec::new();
        for dist in [
            LatencyDistribution::Gaussian,
            LatencyDistribution::Uniform,
            LatencyDistribution::LogNormal,
            LatencyDistribution::Bimodal,
        ] {
            let cfg = SimConfig {
                latency_distribution: dist,
                mean_send_interval_ms: 50.0,
                ..tiny_config()
            };
            let m = simulate_prob(&cfg, space).unwrap();
            assert_eq!(m.stuck, 0, "{dist:?} must stay live");
            assert!(m.deliveries > 0);
            // Moment matching: mean delay within 20% of the configured μ
            // (skew and clamping shift it slightly).
            assert!(
                (m.delay_ms.mean() - 100.0).abs() < 25.0,
                "{dist:?} mean delay {} too far from 100 ms",
                m.delay_ms.mean()
            );
            rates.push((dist, m.violation_rate()));
        }
        // Bimodal (two latency clusters) reorders far more than uniform
        // (bounded support).
        let get = |d: LatencyDistribution| rates.iter().find(|(x, _)| *x == d).expect("present").1;
        assert!(
            get(LatencyDistribution::Bimodal) > get(LatencyDistribution::Uniform),
            "bimodal {} should exceed uniform {}",
            get(LatencyDistribution::Bimodal),
            get(LatencyDistribution::Uniform)
        );
    }

    #[test]
    fn wake_stats_are_populated_and_bounded() {
        let cfg = tiny_config();
        let space = KeySpace::new(16, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert!(
            m.wake_gap_checks >= m.deliveries,
            "every delivered message is classified at least once: {} < {}",
            m.wake_gap_checks,
            m.deliveries
        );
        assert!(m.wake_wakeups <= m.wake_gap_checks, "each wake is re-classified");
    }

    #[test]
    fn churn_static_config_unchanged() {
        // churn = None must reproduce the original static behaviour.
        let cfg = tiny_config();
        let space = KeySpace::new(16, 2).unwrap();
        let m = simulate_prob(&cfg, space).unwrap();
        assert_eq!(m.joins, 0);
        assert_eq!(m.leaves, 0);
        assert_eq!(m.deliveries, m.sent * (cfg.n as u64 - 1));
    }
}
