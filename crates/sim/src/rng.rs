//! Deterministic randomness for the simulator.
//!
//! The paper's workload model (§5.4) needs exponential inter-send times
//! (Poisson generation), and Gaussian propagation delays with a Gaussian
//! per-receiver skew. `rand` supplies the uniform source; the two
//! distributions are implemented here (inverse CDF and Box-Muller) so the
//! crate stays within the sanctioned dependency set.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Derives an independent stream seed from a master seed — SplitMix64
/// finalizer, the standard seed-spreading hash.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulator's random source: a seeded [`StdRng`] plus the two
/// distribution samplers the workload model needs.
///
/// ```
/// use pcb_sim::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.exponential(5000.0), b.exponential(5000.0));
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a deterministic generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// A uniform `f64` in `(0, 1]` (never zero, safe for `ln`).
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u: f64 = self.inner.random();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// Exponential sample with the given mean (inverse CDF). Models the
    /// paper's Poisson message generation: the time to the next send.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.uniform_open().ln()
    }

    /// Gaussian sample `N(mu, sigma^2)` via Box-Muller (with spare reuse).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                let u1 = self.uniform_open();
                let u2 = self.uniform_open();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mu + sigma * z
    }

    /// Gaussian sample clamped below at `floor` — used for propagation
    /// delays, which must stay positive.
    pub fn normal_clamped(&mut self, mu: f64, sigma: f64, floor: f64) -> f64 {
        self.normal(mu, sigma).max(floor)
    }

    /// Uniform sample over `[mu - √3·sigma, mu + √3·sigma]` — same mean
    /// and variance as `N(mu, sigma²)`, but bounded support.
    pub fn uniform_matched(&mut self, mu: f64, sigma: f64) -> f64 {
        let half_width = 3.0f64.sqrt() * sigma;
        mu - half_width + 2.0 * half_width * self.uniform_open()
    }

    /// Log-normal sample with the given *target* mean and standard
    /// deviation (moment-matched) — a heavy-tailed delay model.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn lognormal_matched(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "log-normal mean must be positive");
        let variance_ratio = (sigma / mean).powi(2);
        let log_var = (1.0 + variance_ratio).ln();
        let log_mu = mean.ln() - log_var / 2.0;
        (log_mu + log_var.sqrt() * self.normal(0.0, 1.0)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_spreads() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derive_seed(1, 0), a, "pure function");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let mean = 5000.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.02,
            "empirical mean {empirical} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::new(2);
        assert!((0..10_000).all(|_| rng.exponential(1.0) > 0.0));
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let (mu, sigma) = (100.0, 20.0);
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(mu, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.5, "sigma {}", var.sqrt());
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut rng = SimRng::new(4);
        assert!((0..10_000).all(|_| rng.normal_clamped(0.0, 100.0, 1.0) >= 1.0));
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::new(5);
        assert!((0..1000).all(|_| rng.index(7) < 7));
    }

    #[test]
    fn uniform_matched_moments() {
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let (mu, sigma) = (100.0, 20.0);
        let samples: Vec<f64> = (0..n).map(|_| rng.uniform_matched(mu, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.5, "sigma {}", var.sqrt());
        let half = 3.0f64.sqrt() * sigma;
        assert!(samples.iter().all(|&x| x > mu - half - 1e-9 && x <= mu + half + 1e-9));
    }

    #[test]
    fn lognormal_matched_moments() {
        let mut rng = SimRng::new(7);
        let n = 400_000;
        let (mu, sigma) = (100.0, 20.0);
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal_matched(mu, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 1.0, "sigma {}", var.sqrt());
        assert!(samples.iter().all(|&x| x > 0.0), "log-normal is positive");
    }
}
