//! Simulation configuration (the paper's §5.4 model parameters).

use pcb_clock::AssignmentPolicy;

use crate::fault::FaultPlan;

/// How broadcasts reach the other processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dissemination {
    /// Reliable broadcast: every process receives each message exactly
    /// once, after its own propagation delay. The paper's model.
    Direct,
    /// Probabilistic broadcast (Eugster et al.'s lightweight gossip,
    /// paper Definition 2): the sender and each first-time receiver relay
    /// to `fanout` random peers; duplicates are suppressed, and a message
    /// may miss some processes entirely.
    Gossip {
        /// Peers each infected process relays to.
        fanout: usize,
    },
}

/// Shape of the per-message base-delay distribution. All shapes are
/// moment-matched to the configured `(latency_mean_ms, latency_sigma_ms)`
/// so the concurrency `X = rate · mean` — and therefore the §5.3 error
/// model — is identical across shapes; only tail behaviour differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyDistribution {
    /// The paper's `N(μ, σ²)`.
    #[default]
    Gaussian,
    /// Uniform over `[μ − √3σ, μ + √3σ]` (bounded, no tail).
    Uniform,
    /// Log-normal with matched mean/variance (heavy upper tail).
    LogNormal,
    /// Half the messages on "near" links `N(μ/2, σ²)`, half on "far"
    /// links `N(3μ/2, σ²)` — a crude two-cluster WAN.
    Bimodal,
}

/// Lossy-link model (only meaningful under [`Dissemination::Direct`]):
/// each transmission is lost with `drop_probability`, and the reliable
/// broadcast layer retransmits after `retransmit_ms` until it gets
/// through. Loss therefore shows up as extra, highly variable delay —
/// exactly the reordering stress the probabilistic clock must absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Per-transmission loss probability in `[0, 1)`.
    pub drop_probability: f64,
    /// Retransmission timeout of the reliable-broadcast layer (ms).
    pub retransmit_ms: f64,
}

/// Membership churn: a fraction of processes is up at the start, the rest
/// join over time (Poisson arrivals), and active processes may leave
/// after an exponential lifetime. Joins perform a state transfer from a
/// random active member; nobody else changes anything — the property the
/// paper's constant-size stamps make possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Processes active at time zero.
    pub initial: usize,
    /// Poisson join arrivals per second (consumes the remaining process
    /// ids; joins stop when all `n` have been used).
    pub join_rate_per_sec: f64,
    /// Mean active lifetime in ms (exponential); `None` = nobody leaves.
    pub mean_lifetime_ms: Option<f64>,
    /// Join sync window (ms): a joiner listens for this long, then adopts
    /// a donor's state — by which time everything in flight at join time
    /// has landed at the donor. Use several propagation delays.
    pub sync_window_ms: f64,
}

impl ChurnModel {
    /// A churn model with the given initial membership and join rate, a
    /// 500 ms sync window, and no departures.
    #[must_use]
    pub fn growing(initial: usize, join_rate_per_sec: f64) -> Self {
        Self { initial, join_rate_per_sec, mean_lifetime_ms: None, sync_window_ms: 500.0 }
    }
}

/// Full description of one simulation run.
///
/// Defaults reproduce §5.4.3: `N = 1000` processes each sending on
/// average every `λ = 5000 ms`, propagation `d ~ N(100, 20²) ms`,
/// per-receiver skew `N(d, 20²)`, i.e. aggregate 200 msg/s and
/// concurrency `X ≈ 20`.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes `N`.
    pub n: usize,
    /// Mean per-process inter-send interval `λ`, in milliseconds.
    pub mean_send_interval_ms: f64,
    /// Mean propagation delay `μ` (ms).
    pub latency_mean_ms: f64,
    /// Per-message delay deviation `σ` (ms).
    pub latency_sigma_ms: f64,
    /// Shape of the base-delay distribution (moment-matched to μ, σ).
    pub latency_distribution: LatencyDistribution,
    /// Per-receiver skew deviation `σ_m` (ms).
    pub skew_sigma_ms: f64,
    /// Minimum effective delay (ms) — Gaussians are clamped here.
    pub latency_floor_ms: f64,
    /// Sends stop at this virtual time (ms); in-flight messages drain.
    pub duration_ms: f64,
    /// Messages sent before this time are excluded from metrics (clock
    /// warm-up transient).
    pub warmup_ms: f64,
    /// Master seed: same seed, same event history.
    pub seed: u64,
    /// Key-assignment policy for the probabilistic clocks.
    pub policy: AssignmentPolicy,
    /// Transport behaviour.
    pub dissemination: Dissemination,
    /// Lossy links with retransmission (direct dissemination only).
    pub loss: Option<LossModel>,
    /// Membership churn; `None` = static membership (the paper's §5.4).
    pub churn: Option<ChurnModel>,
    /// Deterministic fault schedule (crashes, partitions, link faults);
    /// `None` = the fault-free model. Chaos runs require
    /// [`Self::track_exact`], [`Dissemination::Direct`], and no churn.
    pub faults: Option<FaultPlan>,
    /// Run the exact ground-truth checker (primary error metric).
    pub track_exact: bool,
    /// Run the paper's ε_min/ε_max estimator alongside.
    pub track_epsilon: bool,
    /// Per-process lifecycle-trace ring capacity (events); `0` disables
    /// tracing — the emit path never constructs an event. Collect the
    /// records with [`crate::simulate_traced`].
    pub trace_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            mean_send_interval_ms: 5000.0,
            latency_mean_ms: 100.0,
            latency_sigma_ms: 20.0,
            latency_distribution: LatencyDistribution::Gaussian,
            skew_sigma_ms: 20.0,
            latency_floor_ms: 1.0,
            duration_ms: 20_000.0,
            warmup_ms: 1000.0,
            seed: 0xC0FFEE,
            policy: AssignmentPolicy::UniformRandom,
            dissemination: Dissemination::Direct,
            loss: None,
            churn: None,
            faults: None,
            track_exact: true,
            track_epsilon: true,
            trace_capacity: 0,
        }
    }
}

impl SimConfig {
    /// The paper's §5.4.3 parameters (also the `Default`).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Configuration for a *constant aggregate receive rate*: each process
    /// receives `rate_per_sec` messages per second regardless of `N`
    /// (Figures 3 and 6), i.e. per-node interval `N / rate` seconds.
    #[must_use]
    pub fn with_constant_receive_rate(mut self, rate_per_sec: f64) -> Self {
        self.mean_send_interval_ms = self.n as f64 / rate_per_sec * 1000.0;
        self
    }

    /// Expected aggregate send rate (msg/s) over all processes.
    #[must_use]
    pub fn aggregate_rate_per_sec(&self) -> f64 {
        self.n as f64 / (self.mean_send_interval_ms / 1000.0)
    }

    /// Expected concurrency `X`: messages in flight during one propagation
    /// delay (feeds the §5.3 model).
    #[must_use]
    pub fn expected_concurrency(&self) -> f64 {
        self.aggregate_rate_per_sec() * self.latency_mean_ms / 1000.0
    }

    /// Expected number of messages sent during the measured window.
    #[must_use]
    pub fn expected_messages(&self) -> f64 {
        self.aggregate_rate_per_sec() * (self.duration_ms - self.warmup_ms) / 1000.0
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        // Rejects NaN along with the out-of-range value.
        let not_positive = |v: f64| v.is_nan() || v <= 0.0;
        if self.n < 2 {
            return Err(format!("need at least 2 processes, got {}", self.n));
        }
        if not_positive(self.mean_send_interval_ms) {
            return Err("mean_send_interval_ms must be positive".into());
        }
        if not_positive(self.latency_mean_ms) {
            return Err("latency_mean_ms must be positive".into());
        }
        if self.latency_sigma_ms < 0.0 || self.skew_sigma_ms < 0.0 {
            return Err("sigmas must be non-negative".into());
        }
        if not_positive(self.latency_floor_ms) {
            return Err("latency_floor_ms must be positive".into());
        }
        if self.duration_ms.is_nan()
            || self.warmup_ms.is_nan()
            || self.duration_ms <= self.warmup_ms
            || self.warmup_ms < 0.0
        {
            return Err("need 0 <= warmup_ms < duration_ms".into());
        }
        if let Dissemination::Gossip { fanout } = self.dissemination {
            if fanout == 0 {
                return Err("gossip fanout must be at least 1".into());
            }
            if self.loss.is_some() {
                return Err("loss model applies to direct dissemination only".into());
            }
        }
        if let Some(loss) = &self.loss {
            if !(0.0..1.0).contains(&loss.drop_probability) {
                return Err("drop_probability must be in [0, 1)".into());
            }
            if not_positive(loss.retransmit_ms) {
                return Err("retransmit_ms must be positive".into());
            }
        }
        if let Some(churn) = &self.churn {
            if churn.initial < 2 || churn.initial > self.n {
                return Err(format!(
                    "churn.initial must be in [2, n], got {} of {}",
                    churn.initial, self.n
                ));
            }
            if churn.join_rate_per_sec < 0.0 {
                return Err("join_rate_per_sec must be non-negative".into());
            }
            if churn.mean_lifetime_ms.is_some_and(not_positive) {
                return Err("mean_lifetime_ms must be positive".into());
            }
            if not_positive(churn.sync_window_ms) {
                return Err("sync_window_ms must be positive".into());
            }
            if !self.track_exact {
                return Err("churn requires track_exact (join-time state transfer \
                             uses the oracle to reconcile the snapshot)"
                    .into());
            }
        }
        if let Some(plan) = &self.faults {
            if self.dissemination != Dissemination::Direct {
                return Err("fault plans require direct dissemination".into());
            }
            if self.churn.is_some() {
                return Err("fault plans and churn cannot be combined".into());
            }
            if !self.track_exact {
                return Err("fault plans require track_exact (the safety oracle \
                             certifies exactly-once delivery and convergence)"
                    .into());
            }
            plan.validate(self.n, self.duration_ms).map_err(|e| format!("fault plan: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.n, 1000);
        assert_eq!(c.mean_send_interval_ms, 5000.0);
        assert!((c.aggregate_rate_per_sec() - 200.0).abs() < 1e-9);
        assert!((c.expected_concurrency() - 20.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn constant_receive_rate_scales_interval() {
        let c = SimConfig { n: 500, ..SimConfig::default() }.with_constant_receive_rate(200.0);
        assert!((c.mean_send_interval_ms - 2500.0).abs() < 1e-9);
        assert!((c.aggregate_rate_per_sec() - 200.0).abs() < 1e-9);
        let c2 = SimConfig { n: 2000, ..SimConfig::default() }.with_constant_receive_rate(200.0);
        assert!((c2.mean_send_interval_ms - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let ok = SimConfig::default();
        assert!(SimConfig { n: 1, ..ok.clone() }.validate().is_err());
        assert!(SimConfig { mean_send_interval_ms: 0.0, ..ok.clone() }.validate().is_err());
        assert!(SimConfig { latency_mean_ms: -1.0, ..ok.clone() }.validate().is_err());
        assert!(SimConfig { latency_sigma_ms: -0.1, ..ok.clone() }.validate().is_err());
        assert!(SimConfig { warmup_ms: 30_000.0, ..ok.clone() }.validate().is_err());
        assert!(SimConfig { dissemination: Dissemination::Gossip { fanout: 0 }, ..ok.clone() }
            .validate()
            .is_err());
        assert!(SimConfig { latency_floor_ms: 0.0, ..ok.clone() }.validate().is_err());
        let bad_loss = LossModel { drop_probability: 1.0, retransmit_ms: 100.0 };
        assert!(SimConfig { loss: Some(bad_loss), ..ok.clone() }.validate().is_err());
        let no_rto = LossModel { drop_probability: 0.1, retransmit_ms: 0.0 };
        assert!(SimConfig { loss: Some(no_rto), ..ok.clone() }.validate().is_err());
        let loss_on_gossip = SimConfig {
            dissemination: Dissemination::Gossip { fanout: 3 },
            loss: Some(LossModel { drop_probability: 0.1, retransmit_ms: 50.0 }),
            ..ok.clone()
        };
        assert!(loss_on_gossip.validate().is_err());
        let bad_churn = ChurnModel { initial: 1, ..ChurnModel::growing(2, 1.0) };
        assert!(SimConfig { churn: Some(bad_churn), ..ok.clone() }.validate().is_err());
        let bad_lifetime =
            ChurnModel { mean_lifetime_ms: Some(0.0), ..ChurnModel::growing(10, 1.0) };
        assert!(SimConfig { churn: Some(bad_lifetime), ..ok }.validate().is_err());
    }

    #[test]
    fn expected_messages_counts_window() {
        let c = SimConfig::default();
        // 200 msg/s for 19 measured seconds.
        assert!((c.expected_messages() - 3800.0).abs() < 1e-9);
    }
}
