//! Deterministic discrete-event simulator for causal broadcast protocols —
//! the evaluation substrate of the Mostefaoui-Weiss PaCT'17 reproduction.
//!
//! Implements the paper's §5.4 model exactly: Poisson message generation
//! per process, Gaussian propagation delay per message, Gaussian
//! per-receiver skew, and a ground-truth oracle classifying every delivery
//! as causally correct or violating. Sweeps in [`runner`] regenerate
//! Figures 3–6.
//!
//! ```
//! use pcb_sim::{simulate_prob, SimConfig};
//! use pcb_clock::KeySpace;
//!
//! let cfg = SimConfig {
//!     n: 20,
//!     mean_send_interval_ms: 500.0,
//!     duration_ms: 3000.0,
//!     warmup_ms: 200.0,
//!     ..SimConfig::default()
//! };
//! let space = KeySpace::new(16, 2)?;
//! let metrics = simulate_prob(&cfg, space)?;
//! assert_eq!(metrics.stuck, 0); // liveness: everything delivered
//! println!("violation rate: {:.2e}", metrics.violation_rate());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod engine;
pub mod export;
pub mod fault;
pub mod metrics;
pub mod oracle;
pub mod pool;
pub mod report;
pub mod rng;
pub mod runner;
pub mod wake;

pub use chaos::{record_endpoint_chaos, simulate_endpoint_chaos, ChaosRecord};
pub use config::{ChurnModel, Dissemination, LatencyDistribution, LossModel, SimConfig};
pub use engine::{
    simulate, simulate_fifo, simulate_immediate, simulate_prob, simulate_prob_detecting,
    simulate_prob_traced, simulate_traced, simulate_vector, SimError,
};
pub use export::{
    decode_counters, decode_digests, decode_node_spec, decode_step, encode_counters,
    encode_digests, encode_node_spec, encode_step, message_from_wire, message_to_wire,
    snapshot_from_wire, snapshot_to_wire, ExportError, NodeSpec, ReplayScript,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, LinkFaults, PlanParseError};
pub use metrics::RunMetrics;
pub use oracle::{EpsilonEstimator, EpsilonOutcome, ExactChecker, StreamOracle, StreamViolation};
pub use report::{render_csv, render_latency_table, render_table};
pub use runner::{
    chaos_config, chaos_run, chaos_run_vector, epsilon_validation, figure3, figure3_defaults,
    figure4, figure4_defaults, figure5, figure5_defaults, figure6, figure6_defaults, ChaosOutcome,
    EpsilonValidation, SweepOptions, SweepPoint,
};
