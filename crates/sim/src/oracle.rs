//! Ground-truth causal-order checking (paper §5.4.1).
//!
//! Measuring the error rate requires knowing, for every delivery, whether
//! some causal predecessor was still undelivered. The paper instruments
//! its simulator with vector clocks and reports two bounds, `ε_min` and
//! `ε_max`, because a contaminated vector clock cannot classify the
//! late-arriving "missing" messages precisely.
//!
//! We provide both:
//!
//! * [`ExactChecker`] — per-(receiver, sender) delivered-prefix counters
//!   with a sparse out-of-order set; classifies *every* delivery exactly.
//!   This is affordable at laptop scale and is the primary metric.
//! * [`EpsilonEstimator`] — the paper's methodology: a per-receiver
//!   vector clock, max-merged on wrong deliveries so that skipped
//!   messages surface later as "stale" arrivals; `ε_min` counts only the
//!   definite wrong deliveries, `ε_max` additionally counts every stale
//!   arrival.
//!
//! Both consume the *true* vector timestamp of each message (maintained
//! by the simulator outside the protocol under test; it is measurement
//! instrumentation, not protocol state).

use std::collections::BTreeSet;

/// Exact per-receiver causal-delivery checker.
///
/// For a message `m` from sender `j` with true vector timestamp `tvc`
/// (where `tvc[j]` counts `m` itself), the delivery at this receiver is
/// causally correct iff every message of every process `l` up to
/// `tvc[l]` (and up to `tvc[j] - 1` for `j`) has already been delivered
/// here.
#[derive(Debug, Clone)]
pub struct ExactChecker {
    /// Contiguous delivered prefix per sender.
    prefix: Vec<u32>,
    /// Delivered sequence numbers beyond the prefix, per sender (rare).
    ooo: Vec<BTreeSet<u32>>,
}

impl ExactChecker {
    /// A fresh checker for a universe of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { prefix: vec![0; n], ooo: vec![BTreeSet::new(); n] }
    }

    /// Whether all messages of `sender` with sequence `<= upto` have been
    /// delivered at this receiver.
    #[must_use]
    pub fn has_all_upto(&self, sender: usize, upto: u32) -> bool {
        let p = self.prefix[sender];
        if p >= upto {
            return true;
        }
        let ooo = &self.ooo[sender];
        // Every gap seq in (p, upto] must be present out-of-order.
        ooo.range(p + 1..=upto).count() as u32 == upto - p
    }

    /// Classifies and records a delivery. Returns `true` iff the delivery
    /// **violates** causal order (some causal predecessor undelivered).
    ///
    /// `tvc` must have one entry per process, counting messages *sent*
    /// (with `tvc[sender]` including this message).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the same `(sender, seq)` is delivered twice.
    pub fn deliver(&mut self, sender: usize, seq: u32, tvc: &[u32]) -> bool {
        let violation = !self.is_ready(sender, seq, tvc);
        self.record(sender, seq);
        violation
    }

    /// The readiness test alone (no recording).
    #[must_use]
    pub fn is_ready(&self, sender: usize, seq: u32, tvc: &[u32]) -> bool {
        debug_assert_eq!(tvc.len(), self.prefix.len());
        debug_assert_eq!(tvc[sender], seq, "tvc must count the message itself");
        // Fast path: compare against the contiguous prefixes.
        for (l, (&need_raw, &have)) in tvc.iter().zip(&self.prefix).enumerate() {
            let need = if l == sender { need_raw - 1 } else { need_raw };
            if have < need && !self.has_all_upto(l, need) {
                return false;
            }
        }
        true
    }

    /// Records a delivery without classifying (used when replaying).
    pub fn record(&mut self, sender: usize, seq: u32) {
        let p = &mut self.prefix[sender];
        if seq == *p + 1 {
            *p += 1;
            // Absorb any out-of-order deliveries now contiguous.
            let ooo = &mut self.ooo[sender];
            while ooo.remove(&(*p + 1)) {
                *p += 1;
            }
        } else {
            debug_assert!(seq > *p, "duplicate delivery of {sender}#{seq}");
            let inserted = self.ooo[sender].insert(seq);
            debug_assert!(inserted, "duplicate delivery of {sender}#{seq}");
        }
    }

    /// Whether this receiver has delivered `sender`'s message `seq`.
    #[must_use]
    pub fn contains(&self, sender: usize, seq: u32) -> bool {
        seq <= self.prefix[sender] || self.ooo[sender].contains(&seq)
    }

    /// Total messages delivered at this receiver.
    #[must_use]
    pub fn delivered_total(&self) -> u64 {
        self.prefix.iter().map(|&p| u64::from(p)).sum::<u64>()
            + self.ooo.iter().map(|s| s.len() as u64).sum::<u64>()
    }

    /// Number of out-of-order (gap-leaving) deliveries currently held.
    #[must_use]
    pub fn gap_count(&self) -> usize {
        self.ooo.iter().map(BTreeSet::len).sum()
    }
}

/// Outcome classes of the paper's ε-estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsilonOutcome {
    /// Causally ready per the (possibly contaminated) oracle clock.
    Ok,
    /// Definitely wrong: a fresh message delivered before its causal past.
    /// Counted in both `ε_min` and `ε_max`.
    Wrong,
    /// A "missing" message arriving after being skipped over. `ε_min`
    /// assumes it was fine, `ε_max` assumes it was a violation.
    Stale,
}

/// The paper's §5.4.1 estimator: a per-receiver vector clock that is
/// max-merged on wrong deliveries.
///
/// # Caveat (reproduction finding)
///
/// `ε_max` is *not* a strict upper bound on the exact violation count:
/// when several deliveries depend on the **same** missing message, only
/// the first is classified `Wrong` — the merge contaminates the clock, so
/// the rest look `Ok` — while the missing message contributes a single
/// `Stale`. Three dependents of one missing message thus count 3 exact
/// violations but only `ε_max = 2`. At the paper's operating points
/// violations are rare and rarely share a cause, so the bracketing holds
/// there (see `epsilon_validation`), but heavy-reordering regimes can
/// exceed `ε_max` (see the `epsilon_max_can_undercount_*` test).
#[derive(Debug, Clone)]
pub struct EpsilonEstimator {
    vc: Vec<u32>,
    wrong: u64,
    stale: u64,
}

impl EpsilonEstimator {
    /// A fresh estimator for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { vc: vec![0; n], wrong: 0, stale: 0 }
    }

    /// Records one of this receiver's *own* sends: a process's own
    /// messages are part of its causal past without ever being
    /// "delivered" to it.
    pub fn record_own_send(&mut self, me: usize) {
        self.vc[me] += 1;
    }

    /// Classifies and records a delivery.
    pub fn deliver(&mut self, sender: usize, tvc: &[u32]) -> EpsilonOutcome {
        debug_assert_eq!(tvc.len(), self.vc.len());
        let seq = tvc[sender];
        if seq <= self.vc[sender] {
            // The oracle already skipped past this message.
            self.stale += 1;
            return EpsilonOutcome::Stale;
        }
        let ready = seq == self.vc[sender] + 1
            && tvc
                .iter()
                .zip(&self.vc)
                .enumerate()
                .all(|(l, (&need, &have))| l == sender || need <= have);
        // Merge regardless: wrong deliveries contaminate the clock so the
        // skipped messages are later classified as stale.
        for (mine, &theirs) in self.vc.iter_mut().zip(tvc) {
            *mine = (*mine).max(theirs);
        }
        if ready {
            EpsilonOutcome::Ok
        } else {
            self.wrong += 1;
            EpsilonOutcome::Wrong
        }
    }

    /// Lower bound on violations: definite wrong deliveries.
    #[must_use]
    pub fn eps_min(&self) -> u64 {
        self.wrong
    }

    /// Upper bound on violations: wrong deliveries plus all stale
    /// arrivals.
    #[must_use]
    pub fn eps_max(&self) -> u64 {
        self.wrong + self.stale
    }
}

/// A safety violation detected by the [`StreamOracle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamViolation {
    /// A receiver delivered its own broadcast back to itself.
    OwnStream {
        /// The offending receiver (== sender).
        receiver: usize,
        /// Sequence number of the self-delivered message.
        seq: u64,
    },
    /// The same `(sender, seq)` delivered twice within one incarnation —
    /// exactly-once is broken outright.
    DuplicateInIncarnation {
        /// Receiver that double-delivered.
        receiver: usize,
        /// Stream the duplicate belongs to.
        sender: usize,
        /// Duplicated sequence number.
        seq: u64,
    },
    /// Per-stream sequence numbers regressed within one incarnation
    /// (causal delivery implies FIFO per sender).
    FifoRegression {
        /// Receiver that regressed.
        receiver: usize,
        /// Stream that went backwards.
        sender: usize,
        /// The regressing sequence number.
        seq: u64,
        /// The highest sequence already delivered this incarnation.
        last: u64,
    },
    /// A message re-delivered across incarnations at a node that never
    /// crashed — only a restore-from-snapshot may legitimately roll the
    /// delivered state back.
    DuplicateWithoutCrash {
        /// Receiver that duplicated.
        receiver: usize,
        /// Stream the duplicate belongs to.
        sender: usize,
        /// Duplicated sequence number.
        seq: u64,
    },
    /// At certification time a surviving stream has gaps: messages were
    /// lost for good despite anti-entropy.
    LostMessages {
        /// Receiver with the hole.
        receiver: usize,
        /// Stream with missing messages.
        sender: usize,
        /// How many of the stream's messages never arrived.
        missing: u64,
    },
}

impl std::fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OwnStream { receiver, seq } => {
                write!(f, "node {receiver} delivered its own message #{seq} to itself")
            }
            Self::DuplicateInIncarnation { receiver, sender, seq } => {
                write!(f, "node {receiver} delivered {sender}#{seq} twice in one incarnation")
            }
            Self::FifoRegression { receiver, sender, seq, last } => write!(
                f,
                "node {receiver} delivered {sender}#{seq} after {sender}#{last} (FIFO regression)"
            ),
            Self::DuplicateWithoutCrash { receiver, sender, seq } => {
                write!(f, "node {receiver} re-delivered {sender}#{seq} without ever crashing")
            }
            Self::LostMessages { receiver, sender, missing } => {
                write!(f, "node {receiver} is missing {missing} messages of stream {sender}")
            }
        }
    }
}

impl std::error::Error for StreamViolation {}

struct NodeLog {
    /// Crash markers seen so far (a restore rolls delivered state back,
    /// so duplicates across incarnations are legitimate — and only then).
    crashes: u64,
    /// Per-sender seqs delivered in the *current* incarnation.
    current: Vec<std::collections::BTreeSet<u64>>,
    /// Highest seq delivered per sender in the current incarnation.
    last: Vec<u64>,
    /// Per-sender seqs delivered across *all* incarnations.
    all: Vec<std::collections::BTreeSet<u64>>,
    /// Cross-incarnation re-deliveries (expected after a restore).
    redelivered: u64,
}

/// Always-on safety oracle for **live** (wall-clock) chaos runs, where no
/// global virtual time or true vector clock exists.
///
/// It certifies, per receiving node: exactly-once delivery within each
/// incarnation, per-stream FIFO order within each incarnation (causal
/// delivery implies it), re-deliveries only after a crash marker (the
/// snapshot legitimately rolls the delivered state back), and — at
/// [`Self::certify`] time — zero lost streams: every surviving stream is
/// delivered gap-free. Deterministic causal certification under faults is
/// the simulator oracle's job ([`ExactChecker`] with true vector clocks);
/// this oracle checks what remains observable from outside a real
/// deployment.
pub struct StreamOracle {
    nodes: Vec<NodeLog>,
}

impl StreamOracle {
    /// An oracle for an `n`-node cluster.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            nodes: (0..n)
                .map(|_| NodeLog {
                    crashes: 0,
                    current: vec![std::collections::BTreeSet::new(); n],
                    last: vec![0; n],
                    all: vec![std::collections::BTreeSet::new(); n],
                    redelivered: 0,
                })
                .collect(),
        }
    }

    /// Marks a crash of `receiver`: its next deliveries belong to a new
    /// incarnation, restored from a snapshot.
    pub fn mark_crash(&mut self, receiver: usize) {
        let node = &mut self.nodes[receiver];
        node.crashes += 1;
        for set in &mut node.current {
            set.clear();
        }
        node.last.fill(0);
    }

    /// Records one delivery observed at `receiver`.
    ///
    /// # Errors
    ///
    /// The violated invariant, if any.
    pub fn record_delivery(
        &mut self,
        receiver: usize,
        sender: usize,
        seq: u64,
    ) -> Result<(), StreamViolation> {
        if receiver == sender {
            return Err(StreamViolation::OwnStream { receiver, seq });
        }
        let node = &mut self.nodes[receiver];
        if node.current[sender].contains(&seq) {
            return Err(StreamViolation::DuplicateInIncarnation { receiver, sender, seq });
        }
        if seq <= node.last[sender] {
            return Err(StreamViolation::FifoRegression {
                receiver,
                sender,
                seq,
                last: node.last[sender],
            });
        }
        if node.all[sender].contains(&seq) {
            if node.crashes == 0 {
                return Err(StreamViolation::DuplicateWithoutCrash { receiver, sender, seq });
            }
            node.redelivered += 1;
        }
        node.current[sender].insert(seq);
        node.last[sender] = seq;
        node.all[sender].insert(seq);
        Ok(())
    }

    /// Cross-incarnation re-deliveries seen at `receiver` (should be
    /// non-zero after a real crash-restore-catchup, since the snapshot
    /// rolled some deliveries back).
    #[must_use]
    pub fn redelivered(&self, receiver: usize) -> u64 {
        self.nodes[receiver].redelivered
    }

    /// Distinct messages of `sender`'s stream delivered at `receiver`
    /// across all incarnations.
    #[must_use]
    pub fn delivered_unique(&self, receiver: usize, sender: usize) -> u64 {
        self.nodes[receiver].all[sender].len() as u64
    }

    /// Final convergence check: given `streams[s]` = number of messages
    /// node `s` broadcast, every node must have delivered every other
    /// stream completely (seqs `1..=streams[s]`, no gaps).
    ///
    /// # Errors
    ///
    /// The first hole found.
    pub fn certify(&self, streams: &[u64]) -> Result<(), StreamViolation> {
        for (receiver, node) in self.nodes.iter().enumerate() {
            for (sender, &count) in streams.iter().enumerate() {
                if sender == receiver {
                    continue;
                }
                let have = (1..=count).filter(|s| node.all[sender].contains(s)).count() as u64;
                if have != count {
                    return Err(StreamViolation::LostMessages {
                        receiver,
                        sender,
                        missing: count - have,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// tvc helper: counts per sender.
    fn tvc(entries: &[u32]) -> Vec<u32> {
        entries.to_vec()
    }

    #[test]
    fn in_order_stream_is_clean() {
        let mut c = ExactChecker::new(2);
        assert!(!c.deliver(0, 1, &tvc(&[1, 0])));
        assert!(!c.deliver(0, 2, &tvc(&[2, 0])));
        assert!(!c.deliver(1, 1, &tvc(&[2, 1]))); // p1 saw both of p0's
        assert_eq!(c.delivered_total(), 3);
        assert_eq!(c.gap_count(), 0);
    }

    #[test]
    fn fifo_gap_is_violation() {
        let mut c = ExactChecker::new(1);
        // Message #2 delivered before #1.
        assert!(c.deliver(0, 2, &tvc(&[2])));
        assert!(!c.deliver(0, 1, &tvc(&[1])), "late #1 has empty past");
        assert_eq!(c.gap_count(), 0, "prefix absorbed after #1 arrives");
        assert_eq!(c.delivered_total(), 2);
    }

    #[test]
    fn cross_sender_dependency_violation() {
        // m' from p1 depends on m = p0#1; delivering m' first violates.
        let mut c = ExactChecker::new(2);
        assert!(c.deliver(1, 1, &tvc(&[1, 1])), "m' before m is a violation");
        assert!(!c.deliver(0, 1, &tvc(&[1, 0])), "m itself has no past");
    }

    #[test]
    fn concurrent_messages_any_order_ok() {
        let mut c = ExactChecker::new(2);
        assert!(!c.deliver(1, 1, &tvc(&[0, 1])), "concurrent: no dependency");
        assert!(!c.deliver(0, 1, &tvc(&[1, 0])));
    }

    #[test]
    fn gap_then_dependent_message_violation() {
        let mut c = ExactChecker::new(2);
        // p0 sent #1, #2. Receiver has neither. p1's message saw both.
        assert!(!c.deliver(0, 1, &tvc(&[1, 0])));
        // Skip p0#2; deliver p1#1 which depends on p0#2.
        assert!(c.deliver(1, 1, &tvc(&[2, 1])));
        // Now p0#2 arrives: its own past (p0#1) is delivered, so it's OK.
        assert!(!c.deliver(0, 2, &tvc(&[2, 0])));
    }

    #[test]
    fn has_all_upto_with_out_of_order_fill() {
        let mut c = ExactChecker::new(1);
        c.record(0, 2);
        c.record(0, 4);
        assert!(!c.has_all_upto(0, 2));
        c.record(0, 1);
        assert!(c.has_all_upto(0, 2), "1,2 contiguous now");
        assert!(!c.has_all_upto(0, 4), "3 missing");
        c.record(0, 3);
        assert!(c.has_all_upto(0, 4));
        assert_eq!(c.gap_count(), 0);
    }

    #[test]
    fn ready_check_uses_ooo_entries() {
        let mut c = ExactChecker::new(2);
        // Deliver p0#2 then p0#1 (violation recorded), then a message
        // depending on both: must be ready despite the earlier gap.
        c.record(0, 2);
        c.record(0, 1);
        assert!(c.is_ready(1, 1, &tvc(&[2, 1])));
    }

    #[test]
    fn epsilon_in_order_is_ok() {
        let mut e = EpsilonEstimator::new(2);
        assert_eq!(e.deliver(0, &tvc(&[1, 0])), EpsilonOutcome::Ok);
        assert_eq!(e.deliver(1, &tvc(&[1, 1])), EpsilonOutcome::Ok);
        assert_eq!(e.eps_min(), 0);
        assert_eq!(e.eps_max(), 0);
    }

    #[test]
    fn epsilon_wrong_then_stale() {
        let mut e = EpsilonEstimator::new(2);
        // m' (depends on p0#1) delivered first: Wrong. Then p0#1: Stale.
        assert_eq!(e.deliver(1, &tvc(&[1, 1])), EpsilonOutcome::Wrong);
        assert_eq!(e.deliver(0, &tvc(&[1, 0])), EpsilonOutcome::Stale);
        assert_eq!(e.eps_min(), 1);
        assert_eq!(e.eps_max(), 2);
    }

    #[test]
    fn epsilon_max_can_undercount_clustered_violations() {
        // Three messages all depending on the same missing p0#1: the
        // exact checker counts 3 violations, but the estimator's clock is
        // contaminated after the first, so ε_max only reaches 2. This is
        // the documented limit of the paper's §5.4.1 upper bound.
        let mut exact = ExactChecker::new(4);
        let mut eps = EpsilonEstimator::new(4);
        let history: [(usize, Vec<u32>); 4] = [
            (1, tvc(&[1, 1, 0, 0])), // depends on p0#1 (missing)
            (2, tvc(&[1, 0, 1, 0])), // same missing dependency
            (3, tvc(&[1, 0, 0, 1])), // same missing dependency
            (0, tvc(&[1, 0, 0, 0])), // the missing message, late
        ];
        let mut exact_violations = 0u64;
        for (sender, t) in &history {
            if exact.deliver(*sender, t[*sender], t) {
                exact_violations += 1;
            }
            let _ = eps.deliver(*sender, t);
        }
        assert_eq!(exact_violations, 3);
        assert_eq!(eps.eps_min(), 1, "only the first dependent looks wrong");
        assert_eq!(eps.eps_max(), 2, "one wrong + one stale < three violations");
        assert!(eps.eps_min() <= exact_violations, "the lower bound stays sound");
    }

    #[test]
    fn epsilon_brackets_exact_on_simple_history() {
        // One wrong delivery, one harmless reordering of concurrent
        // messages: exact = 1, eps_min = 1, eps_max >= 1.
        let mut exact = ExactChecker::new(3);
        let mut eps = EpsilonEstimator::new(3);
        let history: [(usize, Vec<u32>); 3] = [
            (1, tvc(&[1, 1, 0])), // depends on p0#1: wrong
            (0, tvc(&[1, 0, 0])), // the missing message: stale for eps
            (2, tvc(&[0, 0, 1])), // concurrent: fine
        ];
        let mut exact_violations = 0u64;
        for (sender, t) in &history {
            let seq = t[*sender];
            if exact.deliver(*sender, seq, t) {
                exact_violations += 1;
            }
            let _ = eps.deliver(*sender, t);
        }
        assert_eq!(exact_violations, 1);
        assert!(eps.eps_min() <= exact_violations);
        assert!(eps.eps_max() >= exact_violations);
    }
}
