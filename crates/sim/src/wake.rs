//! Per-process wake table for the simulation engine.
//!
//! The engine used to rescan a process's whole pending vector after
//! every delivery (`O(P)` per delivery, quadratic per cascade). This
//! table mirrors `pcb-broadcast`'s entry-indexed wake-up engine, but
//! generically over [`pcb_broadcast::Discipline`] wake channels and with
//! message *indices* instead of owned messages: each blocked message
//! parks on one channel with the threshold that channel must reach
//! ([`pcb_broadcast::Discipline::wait_gap`]); a delivery wakes only the
//! waiters whose threshold its advanced channels crossed.
//!
//! Classification (asking the discipline where a message blocks) stays in
//! the engine, which owns the discipline and the message arena; the table
//! only stores the verdicts. Ready messages pop in arrival-ticket order,
//! reproducing the legacy front-to-back rescan's delivery order exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message waiting in the table: arena index plus arrival time.
pub type PendingMsg = (u32, u64);

/// Work counters, aggregated into the run metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WakeStats {
    /// Gap classifications performed (arrivals + wake re-checks). The
    /// legacy engine's equivalent was one `is_deliverable` per pending
    /// message per scan restart.
    pub gap_checks: u64,
    /// Waiters popped from channel heaps by deliveries.
    pub wakeups: u64,
}

/// A parked waiter, min-heap-ordered: `(required, ticket, msg, arrived)`.
type Waiter = Reverse<(u64, u64, u32, u64)>;

/// Entry-indexed pending set keyed by discipline wake channels.
#[derive(Debug, Clone)]
pub struct WakeTable {
    /// Per channel: min-heap of waiters by required threshold.
    waiters: Vec<BinaryHeap<Waiter>>,
    /// Min-heap of `(ticket, msg, arrived)` whose guard passed.
    ready: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// Messages no future delivery can unblock (`Gap::Never`): kept only
    /// for the end-of-run stuck accounting.
    dead: Vec<PendingMsg>,
    next_ticket: u64,
    len: usize,
    stats: WakeStats,
}

impl WakeTable {
    /// An empty table over `channels` wake channels (at least one slot is
    /// kept so disciplines using the default catch-all channel work).
    #[must_use]
    pub fn new(channels: usize) -> Self {
        Self {
            waiters: (0..channels.max(1)).map(|_| BinaryHeap::new()).collect(),
            ready: BinaryHeap::new(),
            dead: Vec::new(),
            next_ticket: 0,
            len: 0,
            stats: WakeStats::default(),
        }
    }

    /// Messages currently held (waiting, ready, or dead).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> WakeStats {
        self.stats
    }

    /// Issues the arrival ticket for a new message. Tickets order the
    /// ready heap, so they must be drawn once per arrival, before the
    /// first classification.
    pub fn ticket(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    /// Records a classification verdict: parks the message on `channel`
    /// until its value reaches `required`.
    pub fn park(&mut self, channel: usize, required: u64, ticket: u64, msg: u32, arrived: u64) {
        self.stats.gap_checks += 1;
        self.waiters[channel].push(Reverse((required, ticket, msg, arrived)));
        self.len += 1;
    }

    /// Records a classification verdict: the message is deliverable.
    pub fn make_ready(&mut self, ticket: u64, msg: u32, arrived: u64) {
        self.stats.gap_checks += 1;
        self.ready.push(Reverse((ticket, msg, arrived)));
        self.len += 1;
    }

    /// Records a classification verdict: the message can never be
    /// delivered (stale stamp). It stays accounted as pending.
    pub fn kill(&mut self, msg: u32, arrived: u64) {
        self.stats.gap_checks += 1;
        self.dead.push((msg, arrived));
        self.len += 1;
    }

    /// Pops the ready message with the smallest arrival ticket — the
    /// message the legacy front-to-back rescan would deliver next.
    pub fn pop_ready(&mut self) -> Option<PendingMsg> {
        let Reverse((_, msg, arrived)) = self.ready.pop()?;
        self.len -= 1;
        Some((msg, arrived))
    }

    /// Pops every waiter on `channel` whose threshold `value` now meets,
    /// appending `(ticket, msg, arrived)` to `woken` for the caller to
    /// re-classify (the channel a waiter parked on is its resume hint).
    pub fn pop_woken(&mut self, channel: usize, value: u64, woken: &mut Vec<(u64, u32, u64)>) {
        while let Some(&Reverse((required, ticket, msg, arrived))) = self.waiters[channel].peek() {
            if value < required {
                break;
            }
            self.waiters[channel].pop();
            self.len -= 1;
            self.stats.wakeups += 1;
            woken.push((ticket, msg, arrived));
        }
    }

    /// Removes and returns everything held, preserving arrival-ticket
    /// order. Used when the discipline's state changes non-monotonically
    /// (join-time state adoption), after which every verdict — including
    /// `Never` — must be recomputed from scratch.
    pub fn drain_all(&mut self) -> Vec<PendingMsg> {
        let mut entries: Vec<(u64, u32, u64)> = Vec::with_capacity(self.len);
        for heap in &mut self.waiters {
            entries.extend(heap.drain().map(|Reverse((_, t, m, a))| (t, m, a)));
        }
        entries.extend(self.ready.drain().map(|Reverse((t, m, a))| (t, m, a)));
        // Dead messages lost their tickets' order relative to nothing:
        // they re-enter classification like fresh arrivals.
        let dead = std::mem::take(&mut self.dead);
        entries.sort_unstable();
        self.len = 0;
        let mut out: Vec<PendingMsg> = entries.into_iter().map(|(_, m, a)| (m, a)).collect();
        out.extend(dead);
        out
    }

    /// Discards everything (process leaving the membership).
    pub fn clear(&mut self) {
        for heap in &mut self.waiters {
            heap.clear();
        }
        self.ready.clear();
        self.dead.clear();
        self.len = 0;
    }

    /// Iterates the held messages without draining (final stuck/liveness
    /// accounting).
    pub fn pending_msgs(&self) -> impl Iterator<Item = PendingMsg> + '_ {
        self.waiters
            .iter()
            .flat_map(|h| h.iter().map(|&Reverse((_, _, m, a))| (m, a)))
            .chain(self.ready.iter().map(|&Reverse((_, m, a))| (m, a)))
            .chain(self.dead.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_pops_in_ticket_order() {
        let mut table = WakeTable::new(2);
        let t1 = table.ticket();
        let t2 = table.ticket();
        table.make_ready(t2, 20, 0);
        table.make_ready(t1, 10, 0);
        assert_eq!(table.pop_ready(), Some((10, 0)));
        assert_eq!(table.pop_ready(), Some((20, 0)));
        assert_eq!(table.pop_ready(), None);
    }

    #[test]
    fn wake_pops_only_crossed_thresholds() {
        let mut table = WakeTable::new(2);
        let t1 = table.ticket();
        let t2 = table.ticket();
        table.park(0, 1, t1, 10, 0);
        table.park(0, 5, t2, 20, 0);
        let mut woken = Vec::new();
        table.pop_woken(0, 1, &mut woken);
        assert_eq!(woken, vec![(t1, 10, 0)]);
        assert_eq!(table.len(), 1, "the threshold-5 waiter stays parked");
        assert_eq!(table.stats().wakeups, 1);
    }

    #[test]
    fn drain_all_returns_live_messages_in_ticket_order() {
        let mut table = WakeTable::new(2);
        let t1 = table.ticket();
        let t2 = table.ticket();
        let t3 = table.ticket();
        table.park(1, 7, t2, 20, 2);
        table.make_ready(t1, 10, 1);
        table.kill(30, 3);
        let _ = t3;
        let drained = table.drain_all();
        assert_eq!(drained, vec![(10, 1), (20, 2), (30, 3)]);
        assert!(table.is_empty());
    }

    #[test]
    fn pending_msgs_sees_all_classes() {
        let mut table = WakeTable::new(1);
        let t1 = table.ticket();
        let t2 = table.ticket();
        table.park(0, 3, t1, 1, 0);
        table.make_ready(t2, 2, 0);
        table.kill(3, 0);
        let mut all: Vec<u32> = table.pending_msgs().map(|(m, _)| m).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
        assert_eq!(table.len(), 3);
    }
}
