//! Endpoint-driven chaos engine: fault plans interpreted around the
//! **production** protocol state machine.
//!
//! Fault-plan runs do not use the lean [`crate::engine`] disciplines.
//! Instead every simulated process hosts a real
//! [`pcb_broadcast::Endpoint`] — the same sans-IO state machine the live
//! runtime's `pcb-runtime::node` wraps — and this module is nothing but a
//! discrete-event *shell* around it. The shell owns exactly three things:
//!
//! 1. **Event scheduling** — endpoint [`Output`]s become heap events
//!    (frame arrivals with sampled latency, sync request/response legs,
//!    tick chains), and heap events become endpoint [`Input`]s.
//! 2. **Fault interpretation** — crash/recover flips liveness, partitions
//!    cut frames at *arrival* time, link-fault windows corrupt, drop,
//!    reorder, and duplicate frames on the wire.
//! 3. **Oracles** — the exact causal checker, the paper's ε-estimator,
//!    and the true vector clocks live outside the protocol, checkpointed
//!    whenever the endpoint reports [`Output::SnapshotReady`] and rolled
//!    back (plus send-WAL replay) on recovery, mirroring what the
//!    endpoint itself does durably.
//!
//! All anti-entropy policy — when to probe, the quiescence backoff, sync
//! timeouts, snapshot cadence, dedup, WAL replay — is the endpoint's own.
//! The chaos certificates therefore apply to the code that serves live
//! traffic, not to a simulator-private reimplementation of it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pcb_broadcast::endpoint::{Input, Output};
use pcb_broadcast::{
    Counters, Delivery, Endpoint, Message, MessageId, PcbConfig, RecoveryTimingUs,
};
use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySet, KeySpace, ProcessId};
use pcb_telemetry::{TraceEvent, TraceRecord};

use crate::config::SimConfig;
use crate::engine::{ms_to_us, SimError, MICROS_PER_MS};
use crate::fault::{FaultKind, FaultPlan, LinkFaults};
use crate::metrics::RunMetrics;
use crate::oracle::{EpsilonEstimator, EpsilonOutcome, ExactChecker};
use crate::rng::SimRng;

/// Everything a chaos run did to its endpoints, captured for differential
/// replay: the exact per-node [`Input`] log (with virtual timestamps),
/// the construction parameters needed to rebuild identical endpoints, and
/// the observable outcome the replay must reproduce bit-identically.
pub struct ChaosRecord {
    /// The run's aggregate metrics.
    pub metrics: RunMetrics,
    /// Recovery timing the endpoints were built with.
    pub timing: RecoveryTimingUs,
    /// Per-process key sets (index = process id).
    pub keys: Vec<KeySet>,
    /// Protocol configuration the endpoints were built with.
    pub pcb_config: PcbConfig,
    /// Chronological input log: `(now_us, node, input)` for every input
    /// fed to any endpoint.
    pub inputs: Vec<(u64, u32, Input<u32>)>,
    /// Per-node delivery digest, in delivery order:
    /// `(id, instant_alert, recent_alert)`.
    pub deliveries: Vec<Vec<(MessageId, bool, bool)>>,
    /// Per-node recovery counters at the end of the run.
    pub counters: Vec<Counters>,
}

/// Runs `config` (which must carry a fault plan) with every process
/// hosted by a production [`Endpoint`]; returns metrics plus the merged
/// lifecycle trace (empty unless [`SimConfig::trace_capacity`] is set).
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for bad parameters (including a missing
/// fault plan), [`SimError::Assignment`] if key assignment fails.
pub fn simulate_endpoint_chaos(
    config: &SimConfig,
    space: KeySpace,
    policy: AssignmentPolicy,
) -> Result<(RunMetrics, Vec<TraceRecord>), SimError> {
    let (metrics, trace, _) = run(config, space, policy, false)?;
    Ok((metrics, trace))
}

/// [`simulate_endpoint_chaos`] that additionally records the full input
/// log and delivery digests for the differential harness.
///
/// # Errors
///
/// See [`simulate_endpoint_chaos`].
pub fn record_endpoint_chaos(
    config: &SimConfig,
    space: KeySpace,
    policy: AssignmentPolicy,
) -> Result<ChaosRecord, SimError> {
    let (metrics, _, record) = run(config, space, policy, true)?;
    Ok(record
        .map(|mut r| {
            r.metrics = metrics;
            r
        })
        .expect("recording was requested"))
}

struct Ev {
    time: u64,
    tie: u64,
    kind: Kind,
}

enum Kind {
    /// Process `p`'s Poisson send chain fires.
    Send { p: u32 },
    /// Arena message `msg` arrives at `p`.
    Frame { p: u32, msg: u32 },
    /// `from`'s sync request (with its known-set) arrives at `p`.
    SyncReq { p: u32, from: u32, known: Vec<MessageId> },
    /// `from`'s sync reply arrives back at requester `p`.
    SyncResp { p: u32, from: u32, messages: Vec<Message<u32>> },
    /// The endpoint's self-scheduled recovery tick.
    Tick { p: u32 },
    /// The `idx`-th fault-plan event fires.
    Fault { idx: u32 },
}

// Min-heap on (time, tie); payloads are irrelevant to the order.
impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.tie) == (other.time, other.tie)
    }
}
impl Eq for Ev {}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.tie).cmp(&(self.time, self.tie))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Arena record of one broadcast: the frame itself (kept alive for link
/// duplicates and late arrivals) plus the oracle's ground truth.
struct MsgRec {
    sender: u32,
    seq: u32,
    sent_at: u64,
    measured: bool,
    message: Message<u32>,
    tvc: Box<[u32]>,
}

/// Oracle state checkpointed at [`Output::SnapshotReady`] — the shadow of
/// the endpoint's own durable snapshot.
#[derive(Clone)]
struct OracleCp {
    true_vc: Vec<u32>,
    sent: u32,
    exact: Option<ExactChecker>,
    eps: Option<EpsilonEstimator>,
}

/// One simulated process: the production endpoint plus the shell's
/// liveness flag and measurement instrumentation (never protocol state).
struct Shadow {
    ep: Endpoint<u32>,
    /// False while crashed; the shell stops routing traffic to it.
    active: bool,
    /// Whether a Send event for this process is still in the heap (a
    /// crash orphans the chain; recovery must restart it exactly once).
    send_chain: bool,
    true_vc: Vec<u32>,
    /// Mirror of the endpoint's send WAL: sequence numbers survive
    /// crashes, so the oracle replays `cp.sent + 1..=sent_count` own
    /// sends after a rollback exactly as the endpoint replays its WAL.
    sent_count: u32,
    exact: Option<ExactChecker>,
    eps: Option<EpsilonEstimator>,
    cp: Option<OracleCp>,
    /// Exact-checker verdict per delivery, in delivery order — used to
    /// patch the endpoint-emitted `Delivered` trace records (the endpoint
    /// cannot know ground truth).
    verdicts: Vec<bool>,
    /// Delivery digests for the differential harness (recording only).
    digests: Vec<(MessageId, bool, bool)>,
}

struct Driver<'c> {
    cfg: &'c SimConfig,
    plan: &'c FaultPlan,
    procs: Vec<Shadow>,
    msgs: Vec<MsgRec>,
    heap: BinaryHeap<Ev>,
    tie: u64,
    /// Workload stream: send intervals and frame latencies.
    rng: SimRng,
    /// Fault stream: link-fault coin flips and sync-leg latencies —
    /// derived separately so faults never perturb the workload.
    chaos_rng: SimRng,
    metrics: RunMetrics,
    /// Current partition group per process (all equal when healed).
    group_of: Vec<u32>,
    /// Link-fault rates in force, if a window is open.
    link: Option<LinkFaults>,
    /// Global anti-entropy peer rotation, so successive probes (from any
    /// process) fan out over different peers.
    sync_round: u64,
    timing: RecoveryTimingUs,
    duration_us: u64,
    warmup_us: u64,
    /// Ticks stop here: past the send cutoff plus enough sync rounds for
    /// post-heal convergence.
    horizon_us: u64,
    log: Option<Vec<(u64, u32, Input<u32>)>>,
}

impl Driver<'_> {
    fn push(&mut self, time: u64, kind: Kind) {
        self.tie += 1;
        self.heap.push(Ev { time, tie: self.tie, kind });
    }

    /// Feeds one input to `p`'s endpoint (logging it when recording) and
    /// routes every resulting output.
    fn feed(&mut self, p: u32, input: Input<u32>, now: u64) {
        if let Some(log) = &mut self.log {
            log.push((now, p, input.clone()));
        }
        let outputs = self.procs[p as usize].ep.handle(input, now);
        for output in outputs {
            self.route(p, output, now);
        }
    }

    fn route(&mut self, p: u32, output: Output<u32>, now: u64) {
        match output {
            Output::Deliver(d) => self.on_deliver(p, &d, now),
            Output::SendFrame(m) => self.fan_out(p, m, now),
            Output::RequestSync { known } => {
                // Peer choice is the shell's: rotate globally so repeated
                // probes cover the whole cluster.
                let n = self.procs.len();
                let offset = 1 + (self.sync_round as usize % (n - 1));
                self.sync_round += 1;
                let q = (p as usize + offset) % n;
                let at = now + self.sync_leg_us();
                self.push(at, Kind::SyncReq { p: q as u32, from: p, known });
            }
            Output::SyncReply { to, messages } => {
                let at = now + self.sync_leg_us();
                self.push(at, Kind::SyncResp { p: to.index_u32(), from: p, messages });
            }
            Output::ScheduleTick { at_us } => {
                if at_us <= self.horizon_us {
                    self.push(at_us, Kind::Tick { p });
                }
            }
            // Alerts are counted per delivery (and traced by the
            // endpoint itself); nothing to route.
            Output::Alert { .. } => {}
            Output::SnapshotReady { .. } => {
                // Checkpoint the oracle shadow in lockstep with the
                // endpoint's durable snapshot.
                let sh = &mut self.procs[p as usize];
                sh.cp = Some(OracleCp {
                    true_vc: sh.true_vc.clone(),
                    sent: sh.sent_count,
                    exact: sh.exact.clone(),
                    eps: sh.eps.clone(),
                });
            }
        }
    }

    /// Classifies one delivery against the oracles and records metrics.
    fn on_deliver(&mut self, p: u32, d: &Delivery<u32>, now: u64) {
        let midx = *d.message.payload() as usize;
        let sh = &mut self.procs[p as usize];
        let rec = &self.msgs[midx];
        let tvc = &rec.tvc;
        let violation = match &mut sh.exact {
            Some(exact) => exact.deliver(rec.sender as usize, rec.seq, tvc),
            None => false,
        };
        let eps_outcome = sh.eps.as_mut().map(|eps| eps.deliver(rec.sender as usize, tvc));
        for (mine, &theirs) in sh.true_vc.iter_mut().zip(tvc.iter()) {
            *mine = (*mine).max(theirs);
        }
        sh.verdicts.push(violation);
        if self.log.is_some() {
            sh.digests.push((d.message.id(), d.instant_alert, d.recent_alert));
        }
        if rec.measured {
            self.metrics.deliveries += 1;
            self.metrics.exact_violations += u64::from(violation);
            self.metrics.alg4_alerts += u64::from(d.instant_alert);
            self.metrics.alg5_alerts += u64::from(d.recent_alert);
            self.metrics.undetected_violations += u64::from(violation && !d.instant_alert);
            match eps_outcome {
                Some(EpsilonOutcome::Wrong) => {
                    self.metrics.eps_min += 1;
                    self.metrics.eps_max += 1;
                }
                Some(EpsilonOutcome::Stale) => self.metrics.eps_max += 1,
                _ => {}
            }
            self.metrics.delay_ms.push((now - rec.sent_at) as f64 / MICROS_PER_MS);
            self.metrics.blocking_ms.push(d.blocked_for as f64 / MICROS_PER_MS);
        }
    }

    /// Registers a freshly stamped frame in the arena and schedules its
    /// arrival at every live peer, applying any open link-fault window.
    fn fan_out(&mut self, p: u32, message: Message<u32>, now: u64) {
        let midx = self.msgs.len() as u32;
        debug_assert_eq!(*message.payload(), midx, "payload is the arena index");
        let measured = now >= self.warmup_us;
        if measured {
            self.metrics.sent += 1;
            self.metrics.control_bytes += message.control_overhead() as u64;
        }
        self.msgs.push(MsgRec {
            sender: p,
            seq: message.id().seq() as u32,
            sent_at: now,
            measured,
            tvc: self.procs[p as usize].true_vc.clone().into_boxed_slice(),
            message,
        });
        let d_ms = self.sample_base_delay_ms();
        for q in 0..self.procs.len() as u32 {
            if q == p || !self.procs[q as usize].active {
                continue;
            }
            let mut arrive = now + self.link_delay_us(d_ms);
            if let Some(link) = self.link {
                if self.chaos_rng.uniform_open() < link.corrupt {
                    // The wire checksum catches it; frame discarded.
                    self.metrics.corrupted_frames += 1;
                    continue;
                }
                if self.chaos_rng.uniform_open() < link.drop {
                    self.metrics.link_dropped += 1;
                    continue;
                }
                if self.chaos_rng.uniform_open() < link.reorder {
                    arrive += ms_to_us(link.reorder_extra_ms);
                }
                if self.chaos_rng.uniform_open() < link.dup {
                    let copy_at = arrive + ms_to_us(link.reorder_extra_ms.max(1.0));
                    self.push(copy_at, Kind::Frame { p: q, msg: midx });
                }
            }
            self.push(arrive, Kind::Frame { p: q, msg: midx });
        }
    }

    /// Per-message base delay `d` (ms) under the configured distribution
    /// shape, moment-matched to `(μ, σ)`.
    fn sample_base_delay_ms(&mut self) -> f64 {
        use crate::config::LatencyDistribution::{Bimodal, Gaussian, LogNormal, Uniform};
        let mu = self.cfg.latency_mean_ms;
        let sigma = self.cfg.latency_sigma_ms;
        let floor = self.cfg.latency_floor_ms;
        match self.cfg.latency_distribution {
            Gaussian => self.rng.normal_clamped(mu, sigma, floor),
            Uniform => self.rng.uniform_matched(mu, sigma).max(floor),
            LogNormal => self.rng.lognormal_matched(mu, sigma).max(floor),
            Bimodal => {
                let cluster_mu = if self.rng.uniform_open() < 0.5 { mu * 0.5 } else { mu * 1.5 };
                self.rng.normal_clamped(cluster_mu, sigma, floor)
            }
        }
    }

    /// Per-receiver link delay in microseconds around base `d_ms`.
    fn link_delay_us(&mut self, d_ms: f64) -> u64 {
        let delay =
            self.rng.normal_clamped(d_ms, self.cfg.skew_sigma_ms, self.cfg.latency_floor_ms);
        ms_to_us(delay)
    }

    /// One leg (request or reply) of a sync exchange, from the fault
    /// stream so anti-entropy timing never perturbs the workload.
    fn sync_leg_us(&mut self) -> u64 {
        let delay = self.chaos_rng.normal_clamped(
            self.cfg.latency_mean_ms,
            self.cfg.latency_sigma_ms,
            self.cfg.latency_floor_ms,
        );
        ms_to_us(delay)
    }

    fn schedule_next_send(&mut self, p: u32, now: u64) {
        let next =
            now + self.rng.exponential(self.cfg.mean_send_interval_ms * MICROS_PER_MS) as u64;
        self.procs[p as usize].send_chain = next <= self.duration_us;
        if next <= self.duration_us {
            self.push(next, Kind::Send { p });
        }
    }

    fn handle_send(&mut self, p: u32, now: u64) {
        if !self.procs[p as usize].active {
            // The chain dies here; a recovery must restart it.
            self.procs[p as usize].send_chain = false;
            return;
        }
        self.schedule_next_send(p, now);
        // Own sends belong to the sender's causal past without ever being
        // delivered to it; tell the oracles *before* the broadcast so the
        // arena record captures the post-send true vector clock.
        let sh = &mut self.procs[p as usize];
        sh.sent_count += 1;
        let seq = sh.sent_count;
        sh.true_vc[p as usize] += 1;
        if let Some(exact) = &mut sh.exact {
            exact.record(p as usize, seq);
        }
        if let Some(eps) = &mut sh.eps {
            eps.record_own_send(p as usize);
        }
        let midx = self.msgs.len() as u32;
        self.feed(p, Input::Broadcast(midx), now);
    }

    fn handle_frame(&mut self, p: u32, msg: u32, now: u64) {
        if !self.procs[p as usize].active {
            return;
        }
        // Partition semantics: a frame is cut if sender and receiver are
        // in different groups when it *arrives* (in-flight frames are
        // lost at partition onset; anti-entropy re-fetches them).
        let sender = self.msgs[msg as usize].sender as usize;
        if self.group_of[sender] != self.group_of[p as usize] {
            self.metrics.partition_dropped += 1;
            return;
        }
        let frame = self.msgs[msg as usize].message.clone();
        self.feed(p, Input::FrameReceived(frame), now);
        self.metrics.pending_peak =
            self.metrics.pending_peak.max(self.procs[p as usize].ep.pending_len());
    }

    fn handle_sync_req(&mut self, p: u32, from: u32, known: Vec<MessageId>, now: u64) {
        // Requests to crashed or partitioned peers are lost; the
        // requester's sync timeout re-arms the probe.
        if !self.procs[p as usize].active
            || self.group_of[p as usize] != self.group_of[from as usize]
        {
            return;
        }
        self.feed(p, Input::SyncRequest { from: ProcessId::new(from as usize), known }, now);
    }

    fn handle_sync_resp(&mut self, p: u32, from: u32, messages: Vec<Message<u32>>, now: u64) {
        if !self.procs[p as usize].active
            || self.group_of[p as usize] != self.group_of[from as usize]
        {
            return;
        }
        if !messages.is_empty() {
            self.metrics.last_refetch_ms =
                self.metrics.last_refetch_ms.max(now as f64 / MICROS_PER_MS);
        }
        self.feed(p, Input::SyncResponse(messages), now);
        self.metrics.pending_peak =
            self.metrics.pending_peak.max(self.procs[p as usize].ep.pending_len());
    }

    /// Applies the `idx`-th event of the fault plan.
    fn handle_fault(&mut self, idx: usize, now: u64) {
        match self.plan.events[idx].kind.clone() {
            FaultKind::Crash { node } => {
                if self.procs[node].active {
                    self.procs[node].active = false;
                    self.metrics.crashes += 1;
                    self.feed(node as u32, Input::Crash, now);
                }
            }
            FaultKind::Recover { node } => {
                if !self.procs[node].active {
                    self.rollback_oracles(node);
                    self.procs[node].active = true;
                    self.metrics.recoveries += 1;
                    self.feed(node as u32, Input::Restore, now);
                    if !self.procs[node].send_chain {
                        self.schedule_next_send(node as u32, now);
                    }
                }
            }
            FaultKind::PartitionStart { groups } => {
                let rest = groups.len() as u32;
                for g in &mut self.group_of {
                    *g = rest; // unlisted nodes form one implicit group
                }
                for (gi, members) in groups.iter().enumerate() {
                    for &m in members {
                        self.group_of[m] = gi as u32;
                    }
                }
            }
            FaultKind::PartitionEnd => {
                for g in &mut self.group_of {
                    *g = 0;
                }
            }
            FaultKind::LinkFaultStart { faults } => self.link = Some(faults),
            FaultKind::LinkFaultEnd => self.link = None,
        }
    }

    /// Rolls the oracle shadow back to its last checkpoint (or to genesis
    /// if the crash predated the first snapshot) and replays the own
    /// sends the endpoint's WAL preserved — keeping the ground truth in
    /// lockstep with the endpoint's restore.
    fn rollback_oracles(&mut self, node: usize) {
        let n = self.procs.len();
        let sh = &mut self.procs[node];
        let (mut true_vc, replay_from, mut exact, mut eps) = match sh.cp.clone() {
            Some(cp) => (cp.true_vc, cp.sent, cp.exact, cp.eps),
            None => (
                vec![0u32; n],
                0,
                sh.exact.as_ref().map(|_| ExactChecker::new(n)),
                sh.eps.as_ref().map(|_| EpsilonEstimator::new(n)),
            ),
        };
        for seq in replay_from + 1..=sh.sent_count {
            true_vc[node] += 1;
            if let Some(exact) = &mut exact {
                exact.record(node, seq);
            }
            if let Some(eps) = &mut eps {
                eps.record_own_send(node);
            }
        }
        sh.true_vc = true_vc;
        sh.exact = exact;
        sh.eps = eps;
    }
}

/// The shared implementation behind the public entry points.
#[allow(clippy::too_many_lines)]
fn run(
    config: &SimConfig,
    space: KeySpace,
    policy: AssignmentPolicy,
    record: bool,
) -> Result<(RunMetrics, Vec<TraceRecord>, Option<ChaosRecord>), SimError> {
    config.validate().map_err(SimError::InvalidConfig)?;
    let Some(plan) = config.faults.as_ref() else {
        return Err(SimError::InvalidConfig("endpoint chaos runs need a fault plan".into()));
    };
    let started = Instant::now();
    let n = config.n;

    let mut assigner = KeyAssigner::new(space, policy, crate::rng::derive_seed(config.seed, 1));
    let keys: Vec<KeySet> =
        assigner.assign_n(n).map_err(|e| SimError::Assignment(e.to_string()))?;

    let duration_us = ms_to_us(config.duration_ms);
    let sync_us = ms_to_us(plan.sync_interval_ms).max(1);
    let timing = RecoveryTimingUs {
        // A pending message (or an idle spell) older than one sync
        // interval triggers a probe — the plan's cadence contract.
        stale_after_us: sync_us,
        poll_every_us: (sync_us / 2).max(1),
        // Chaos stores never evict: a recovering or partitioned peer may
        // need any message re-fetched until the run ends.
        store_window_us: u64::MAX / 2,
        snapshot_every_us: ms_to_us(plan.snapshot_every_ms).max(1),
        sync_timeout_us: 2 * sync_us,
    };
    let pcb_config = PcbConfig {
        detect_instant: true,
        recent_window: None,
        dedup: true,
        trace_capacity: config.trace_capacity,
    };
    let procs: Vec<Shadow> = (0..n)
        .map(|i| Shadow {
            ep: Endpoint::new(ProcessId::new(i), keys[i].clone(), pcb_config.clone(), Some(timing)),
            active: true,
            send_chain: false,
            true_vc: vec![0u32; n],
            sent_count: 0,
            exact: config.track_exact.then(|| ExactChecker::new(n)),
            eps: config.track_epsilon.then(|| EpsilonEstimator::new(n)),
            cp: None,
            verdicts: Vec::new(),
            digests: Vec::new(),
        })
        .collect();

    let mut driver = Driver {
        cfg: config,
        plan,
        procs,
        msgs: Vec::new(),
        heap: BinaryHeap::new(),
        tie: 0,
        rng: SimRng::new(crate::rng::derive_seed(config.seed, 2)),
        chaos_rng: SimRng::new(crate::rng::derive_seed(config.seed, 3)),
        metrics: RunMetrics::default(),
        group_of: vec![0; n],
        link: None,
        sync_round: 0,
        timing,
        duration_us,
        warmup_us: ms_to_us(config.warmup_ms),
        horizon_us: duration_us + 12 * sync_us,
        log: record.then(Vec::new),
    };

    for p in 0..n as u32 {
        driver.schedule_next_send(p, 0);
    }
    for (idx, ev) in plan.events.iter().enumerate() {
        driver.push(ms_to_us(ev.at_ms), Kind::Fault { idx: idx as u32 });
    }
    // Seed the endpoints' tick chains, staggered so the cluster never
    // probes in lockstep; each endpoint re-arms its own chain from there.
    let poll = timing.poll_every_us;
    for p in 0..n as u32 {
        let first = poll + (u64::from(p) * poll) / n as u64;
        driver.push(first, Kind::Tick { p });
    }

    let mut last_time = 0u64;
    while let Some(ev) = driver.heap.pop() {
        debug_assert!(ev.time >= last_time, "event times must be monotone");
        last_time = ev.time;
        match ev.kind {
            Kind::Send { p } => driver.handle_send(p, ev.time),
            Kind::Frame { p, msg } => driver.handle_frame(p, msg, ev.time),
            Kind::SyncReq { p, from, known } => driver.handle_sync_req(p, from, known, ev.time),
            Kind::SyncResp { p, from, messages } => {
                driver.handle_sync_resp(p, from, messages, ev.time);
            }
            // Ticks reach even crashed endpoints: the tick chain is the
            // shell's timer and survives the crash, exactly as the live
            // runtime's poll loop does.
            Kind::Tick { p } => driver.feed(p, Input::Tick, ev.time),
            Kind::Fault { idx } => driver.handle_fault(idx as usize, ev.time),
        }
    }

    let mut metrics = driver.metrics;
    for sh in &driver.procs {
        // Liveness: nothing may stay blocked at a live process.
        if sh.active {
            metrics.stuck += sh.ep.pending_len() as u64;
        }
        let wake = sh.ep.wakeup_stats();
        metrics.wake_gap_checks += wake.gap_checks;
        metrics.wake_wakeups += wake.wakeups;
        metrics.duplicate_frames += sh.ep.stats().duplicates;
        metrics.recovery.merge(&sh.ep.recovery_counters());
    }
    // Convergence is judged from the oracles (delivery counts would also
    // tally re-deliveries after rollbacks): every process alive at the
    // end must hold every measured message relative to its final state.
    for (pi, sh) in driver.procs.iter().enumerate() {
        if !sh.active {
            continue;
        }
        let exact = sh.exact.as_ref().expect("chaos requires track_exact");
        for rec in driver.msgs.iter().filter(|m| m.measured) {
            if rec.sender as usize != pi && !exact.contains(rec.sender as usize, rec.seq) {
                metrics.undelivered += 1;
            }
        }
    }
    metrics.wall_secs = started.elapsed().as_secs_f64();
    metrics.virtual_ms = last_time as f64 / MICROS_PER_MS;

    // Merge the endpoint-emitted traces, patching each `Delivered` record
    // with the oracle's verdict. Verdicts align from the END: if a ring
    // overflowed it dropped the *oldest* records, so the tail still
    // matches the tail of the verdict list.
    let mut trace: Vec<TraceRecord> = Vec::new();
    let mut record_out = record.then(|| ChaosRecord {
        metrics: RunMetrics::default(),
        timing: driver.timing,
        keys: keys.clone(),
        pcb_config,
        inputs: driver.log.take().unwrap_or_default(),
        deliveries: Vec::new(),
        counters: Vec::new(),
    });
    for sh in &mut driver.procs {
        let mut t = sh.ep.drain_trace();
        let mut vi = sh.verdicts.len();
        for r in t.iter_mut().rev() {
            if let TraceEvent::Delivered { violation, .. } = &mut r.event {
                if vi > 0 {
                    vi -= 1;
                    *violation = sh.verdicts[vi];
                }
            }
        }
        trace.extend(t);
        if let Some(out) = &mut record_out {
            out.deliveries.push(std::mem::take(&mut sh.digests));
            out.counters.push(sh.ep.recovery_counters());
        }
    }
    trace.sort_by_key(|r| r.time);
    Ok((metrics, trace, record_out))
}
