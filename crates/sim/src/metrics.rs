//! Metrics collected over one simulation run.

use pcb_analysis::wilson_interval;
use pcb_broadcast::Counters;
use pcb_telemetry::Hist;

/// Everything a run measures. All message-level counters cover only
/// messages *sent inside the measurement window* (after warm-up, before
/// the send cutoff); the simulation itself runs to full drain.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Messages sent in the measurement window.
    pub sent: u64,
    /// Deliveries of measured messages (≈ `sent × (N - 1)` under direct
    /// dissemination).
    pub deliveries: u64,
    /// Deliveries violating causal order, per the exact checker.
    pub exact_violations: u64,
    /// The paper's lower bound `ε_min` (definite wrong deliveries).
    pub eps_min: u64,
    /// The paper's upper bound `ε_max` (wrong + stale arrivals).
    pub eps_max: u64,
    /// Algorithm 4 alerts raised on measured deliveries.
    pub alg4_alerts: u64,
    /// Algorithm 5 alerts raised on measured deliveries.
    pub alg5_alerts: u64,
    /// Transport-level duplicates suppressed (gossip).
    pub duplicates: u64,
    /// Measured messages that never reached some process (gossip only;
    /// always 0 under direct dissemination).
    pub undelivered: u64,
    /// End-to-end delivery latency (receive→deliver wait included), ms —
    /// log-bucketed so the tail (p50/p90/p99) is reported, not just the
    /// mean.
    pub delay_ms: Hist,
    /// Time spent blocked in the pending queue (delivery minus arrival), ms.
    pub blocking_ms: Hist,
    /// High-water mark of any process's pending queue.
    pub pending_peak: usize,
    /// Total control-information bytes attached to measured messages.
    pub control_bytes: u64,
    /// Messages still undeliverable at simulation end (should be 0 —
    /// liveness, Lemma 1 — under direct dissemination with static
    /// membership).
    pub stuck: u64,
    /// Processes that joined mid-run (churn).
    pub joins: u64,
    /// Processes that left mid-run (churn).
    pub leaves: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Virtual milliseconds simulated (including drain).
    pub virtual_ms: f64,
    /// Wake-table gap classifications across all processes (arrivals plus
    /// wake re-checks) — the indexed engine's total guard work.
    pub wake_gap_checks: u64,
    /// Waiters woken from wake channels by deliveries.
    pub wake_wakeups: u64,
    /// Crash faults injected (chaos runs).
    pub crashes: u64,
    /// Recover faults executed (chaos runs).
    pub recoveries: u64,
    /// Recovery-health counters (syncs, re-fetches, snapshots) — the
    /// same struct `NodeStatus` embeds, so the two reports cannot drift.
    pub recovery: Counters,
    /// Frames dropped because sender and receiver were in different
    /// partition groups at arrival time.
    pub partition_dropped: u64,
    /// Frames dropped by burst loss inside a link-fault window.
    pub link_dropped: u64,
    /// Frames discarded as corrupted (wire-checksum failures).
    pub corrupted_frames: u64,
    /// Duplicate frames suppressed by the receive-side dedup (injected
    /// duplicates plus redundant anti-entropy re-fetches).
    pub duplicate_frames: u64,
    /// Measured causal violations that Algorithm 4 raised **no** alert
    /// on — the safety oracle's "missed detection" count.
    pub undetected_violations: u64,
    /// Virtual time (ms) of the last anti-entropy re-fetch: bounded past
    /// the last heal means the system quiesced instead of probe-storming.
    pub last_refetch_ms: f64,
}

impl RunMetrics {
    /// Causal-order violations per delivery (the paper's "error rate").
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        ratio(self.exact_violations, self.deliveries)
    }

    /// `ε_min` per delivery.
    #[must_use]
    pub fn eps_min_rate(&self) -> f64 {
        ratio(self.eps_min, self.deliveries)
    }

    /// `ε_max` per delivery.
    #[must_use]
    pub fn eps_max_rate(&self) -> f64 {
        ratio(self.eps_max, self.deliveries)
    }

    /// Algorithm 4 alert rate per delivery.
    #[must_use]
    pub fn alg4_rate(&self) -> f64 {
        ratio(self.alg4_alerts, self.deliveries)
    }

    /// Algorithm 5 alert rate per delivery.
    #[must_use]
    pub fn alg5_rate(&self) -> f64 {
        ratio(self.alg5_alerts, self.deliveries)
    }

    /// 95% Wilson interval on the violation rate.
    #[must_use]
    pub fn violation_interval(&self) -> (f64, f64) {
        wilson_interval(self.exact_violations, self.deliveries, 1.96)
    }

    /// Mean control overhead per message, bytes.
    #[must_use]
    pub fn control_bytes_per_message(&self) -> f64 {
        ratio(self.control_bytes, self.sent)
    }

    /// Simulated deliveries per wall-clock second (throughput diagnostic).
    #[must_use]
    pub fn deliveries_per_wall_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.deliveries as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Folds another run's counters into this one — used to aggregate
    /// replications of the same configuration under different seeds.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.sent += other.sent;
        self.deliveries += other.deliveries;
        self.exact_violations += other.exact_violations;
        self.eps_min += other.eps_min;
        self.eps_max += other.eps_max;
        self.alg4_alerts += other.alg4_alerts;
        self.alg5_alerts += other.alg5_alerts;
        self.duplicates += other.duplicates;
        self.undelivered += other.undelivered;
        self.delay_ms.merge(&other.delay_ms);
        self.blocking_ms.merge(&other.blocking_ms);
        self.pending_peak = self.pending_peak.max(other.pending_peak);
        self.control_bytes += other.control_bytes;
        self.stuck += other.stuck;
        self.joins += other.joins;
        self.leaves += other.leaves;
        self.wall_secs += other.wall_secs;
        self.virtual_ms = self.virtual_ms.max(other.virtual_ms);
        self.wake_gap_checks += other.wake_gap_checks;
        self.wake_wakeups += other.wake_wakeups;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.recovery.merge(&other.recovery);
        self.partition_dropped += other.partition_dropped;
        self.link_dropped += other.link_dropped;
        self.corrupted_frames += other.corrupted_frames;
        self.duplicate_frames += other.duplicate_frames;
        self.undetected_violations += other.undetected_violations;
        self.last_refetch_ms = self.last_refetch_ms.max(other.last_refetch_ms);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_deliveries() {
        let m = RunMetrics {
            deliveries: 1000,
            exact_violations: 10,
            eps_min: 8,
            eps_max: 15,
            alg4_alerts: 200,
            alg5_alerts: 40,
            ..RunMetrics::default()
        };
        assert!((m.violation_rate() - 0.01).abs() < 1e-12);
        assert!((m.eps_min_rate() - 0.008).abs() < 1e-12);
        assert!((m.eps_max_rate() - 0.015).abs() < 1e-12);
        assert!((m.alg4_rate() - 0.2).abs() < 1e-12);
        assert!((m.alg5_rate() - 0.04).abs() < 1e-12);
        let (lo, hi) = m.violation_interval();
        assert!(lo < 0.01 && 0.01 < hi);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.violation_rate(), 0.0);
        assert_eq!(m.control_bytes_per_message(), 0.0);
        assert_eq!(m.deliveries_per_wall_sec(), 0.0);
    }
}
