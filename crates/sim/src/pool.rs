//! Deterministic scoped worker pool for sweep fan-out.
//!
//! Sweep points and their replications are embarrassingly parallel: every
//! job derives its own seed ([`crate::rng::derive_seed`]) before it is
//! scheduled, so a job's result depends only on its index, never on which
//! worker ran it or in what order. This pool exploits that: jobs are
//! claimed from a shared atomic counter (no work queue, no channels) and
//! results are returned **in job-index order**, so downstream
//! merging/rendering is byte-identical at any thread count — including
//! `threads == 1`, which degenerates to a plain serial loop on the
//! calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use by default: the machine's
/// available parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `count` jobs on up to `threads` scoped workers and returns their
/// results **indexed by job**, independent of scheduling.
///
/// `job(i)` must be pure with respect to `i` (true for seeded sweep
/// replications). With `threads <= 1` (or a single job) everything runs
/// on the calling thread with no synchronization.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_indexed<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count);
    if threads <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = job(i);
                collected.lock().expect("pool results poisoned").push((i, result));
            });
        }
    });
    let mut results = collected.into_inner().expect("pool results poisoned");
    results.sort_unstable_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_at_any_thread_count() {
        let serial = run_indexed(1, 64, |i| i * i);
        for threads in [2, 3, 8, 100] {
            assert_eq!(run_indexed(threads, 64, |i| i * i), serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_jobs_and_zero_threads_are_fine() {
        assert!(run_indexed(8, 0, |i| i).is_empty());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(8, 200, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
