//! Replay-script export: everything a *separate OS process* needs to
//! re-run one node of a recorded chaos run, serialized.
//!
//! The in-process differential harness hands a
//! [`ChaosRecord`](crate::chaos::ChaosRecord) straight to the loopback
//! cluster. The multi-process harness cannot: each node lives in its own
//! `pcb-daemon` process, reached over a real UDP socket, and a SIGKILLed
//! node restarts from nothing but its on-disk state. This module
//! flattens the record into that world:
//!
//! * [`ReplayScript::from_record`] splits the chronological input log
//!   into **per-node step streams**. An endpoint is a pure function of
//!   its own input sequence — inputs to different nodes commute — so
//!   per-node order is the only order the replay must preserve, and the
//!   driver can pipeline nodes independently.
//! * [`encode_step`]/[`decode_step`] give each `(now_us, Input)` a
//!   self-contained byte form. Messages travel as standalone wire-v3
//!   full frames ([`pcb_broadcast::wire`]), so the daemon reconstructs
//!   bit-identical stamps, key sets, and payloads from bytes alone.
//! * [`encode_node_spec`]/[`decode_node_spec`] carry the constructor
//!   arguments (keys, protocol config, recovery timing) to a process
//!   that shares no memory with the driver.
//! * [`encode_digests`]/[`decode_digests`] carry delivery digests —
//!   `(id, instant_alert, recent_alert)`, the equivalence currency —
//!   back from daemon to driver.
//!
//! Everything decodes totally: corrupt or truncated bytes produce an
//! [`ExportError`], never a panic.

use bytes::Bytes;
use pcb_broadcast::endpoint::{Input, RecoveryTimingUs};
use pcb_broadcast::{wire, Counters, Message, MessageId, PcbConfig, ProcessSnapshot, WireError};
use pcb_clock::{KeySet, KeySpace, ProcessId};

use crate::chaos::ChaosRecord;

/// Errors decoding exported bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// Bytes ended before the structure was complete.
    Truncated,
    /// Unknown step kind byte.
    BadKind(u8),
    /// An embedded frame decoded, but its payload is not the `u32` arena
    /// index every replayed message carries.
    BadPayload,
    /// An embedded wire frame failed to decode.
    Wire(WireError),
    /// Key-set reconstruction from `(R, K, set_id)` failed.
    Keys(String),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ExportError {}

/// Constructor arguments for one replayed node, in serializable form.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// This node's index.
    pub node: u32,
    /// Cluster size.
    pub n: u32,
    /// The node's key set.
    pub keys: KeySet,
    /// Protocol configuration.
    pub pcb_config: PcbConfig,
    /// Recovery/anti-entropy timing.
    pub timing: RecoveryTimingUs,
}

/// A chaos record flattened for multi-process replay.
#[derive(Debug)]
pub struct ReplayScript {
    /// Cluster size.
    pub n: usize,
    /// Recovery timing every node was built with.
    pub timing: RecoveryTimingUs,
    /// Protocol configuration every node was built with.
    pub pcb_config: PcbConfig,
    /// Per-node key sets.
    pub keys: Vec<KeySet>,
    /// Per-node input streams, each in its recorded order.
    pub steps: Vec<Vec<(u64, Input<u32>)>>,
    /// Per-node delivery digests the replay must reproduce exactly.
    pub expected: Vec<Vec<(MessageId, bool, bool)>>,
    /// Per-node recovery counters at the end of the recorded run.
    pub expected_counters: Vec<Counters>,
}

impl ReplayScript {
    /// Splits `record` into per-node streams. Per-node order equals the
    /// chronological order restricted to that node, which is all an
    /// endpoint can observe.
    #[must_use]
    pub fn from_record(record: &ChaosRecord) -> Self {
        let n = record.keys.len();
        let mut steps = vec![Vec::new(); n];
        for (now_us, node, input) in &record.inputs {
            steps[*node as usize].push((*now_us, input.clone()));
        }
        Self {
            n,
            timing: record.timing,
            pcb_config: record.pcb_config.clone(),
            keys: record.keys.clone(),
            steps,
            expected: record.deliveries.clone(),
            expected_counters: record.counters.clone(),
        }
    }

    /// The [`NodeSpec`] for `node`.
    #[must_use]
    pub fn spec(&self, node: usize) -> NodeSpec {
        NodeSpec {
            node: node as u32,
            n: self.n as u32,
            keys: self.keys[node].clone(),
            pcb_config: self.pcb_config.clone(),
            timing: self.timing,
        }
    }
}

// ---- primitive readers ------------------------------------------------

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExportError> {
        if self.0.len() < n {
            return Err(ExportError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ExportError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ExportError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ExportError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> Result<u128, ExportError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn done(&self) -> Result<(), ExportError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ExportError::Truncated)
        }
    }
}

// ---- message <-> wire frame ------------------------------------------

/// Encodes a replayed message as a standalone wire-v3 full frame (the
/// `u32` arena payload travels as 4 big-endian bytes).
#[must_use]
pub fn message_to_wire(message: &Message<u32>) -> Bytes {
    let bytes = message.clone().map(|v| Bytes::from(v.to_be_bytes().to_vec()));
    wire::encode_full(&bytes)
}

/// Decodes a standalone wire frame back into a replayed message.
///
/// # Errors
///
/// [`ExportError::Wire`] for undecodable bytes, [`ExportError::BadPayload`]
/// if the payload is not a 4-byte arena index.
pub fn message_from_wire(frame: Bytes) -> Result<Message<u32>, ExportError> {
    let message = wire::decode(frame).map_err(ExportError::Wire)?;
    let payload: [u8; 4] =
        message.payload().as_ref().try_into().map_err(|_| ExportError::BadPayload)?;
    Ok(message.map(move |_| u32::from_be_bytes(payload)))
}

/// Rewrites a replayed-node snapshot to byte payloads so it can pass
/// through [`pcb_broadcast::encode_snapshot`] for on-disk persistence.
#[must_use]
pub fn snapshot_to_wire(s: &ProcessSnapshot<u32>) -> ProcessSnapshot<Bytes> {
    ProcessSnapshot {
        id: s.id,
        keys: s.keys.clone(),
        config: s.config.clone(),
        clock: s.clock.clone(),
        seq: s.seq,
        seen: s.seen.clone(),
        stats: s.stats,
        store_window: s.store_window,
        store: s
            .store
            .iter()
            .map(|(t, m)| (*t, m.clone().map(|v| Bytes::from(v.to_be_bytes().to_vec()))))
            .collect(),
    }
}

/// Rewrites a decoded on-disk snapshot back to `u32` payloads.
///
/// # Errors
///
/// [`ExportError::BadPayload`] if any stored payload is not a 4-byte
/// arena index.
pub fn snapshot_from_wire(s: ProcessSnapshot<Bytes>) -> Result<ProcessSnapshot<u32>, ExportError> {
    let mut store = Vec::with_capacity(s.store.len());
    for (t, m) in s.store {
        let payload: [u8; 4] =
            m.payload().as_ref().try_into().map_err(|_| ExportError::BadPayload)?;
        store.push((t, m.map(move |_| u32::from_be_bytes(payload))));
    }
    Ok(ProcessSnapshot {
        id: s.id,
        keys: s.keys,
        config: s.config,
        clock: s.clock,
        seq: s.seq,
        seen: s.seen,
        stats: s.stats,
        store_window: s.store_window,
        store,
    })
}

// ---- step codec -------------------------------------------------------

const STEP_FRAME: u8 = 0;
const STEP_SYNC_REQUEST: u8 = 1;
const STEP_SYNC_RESPONSE: u8 = 2;
const STEP_TICK: u8 = 3;
const STEP_BROADCAST: u8 = 4;
const STEP_CRASH: u8 = 5;
const STEP_RESTORE: u8 = 6;

fn put_frame(out: &mut Vec<u8>, message: &Message<u32>) {
    let frame = message_to_wire(message);
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame);
}

/// Serializes one replay step.
#[must_use]
pub fn encode_step(now_us: u64, input: &Input<u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&now_us.to_le_bytes());
    match input {
        Input::FrameReceived(message) => {
            out.push(STEP_FRAME);
            put_frame(&mut out, message);
        }
        Input::SyncRequest { from, known } => {
            out.push(STEP_SYNC_REQUEST);
            out.extend_from_slice(&(from.index() as u32).to_le_bytes());
            out.extend_from_slice(&(known.len() as u32).to_le_bytes());
            for id in known {
                out.extend_from_slice(&(id.sender().index() as u32).to_le_bytes());
                out.extend_from_slice(&id.seq().to_le_bytes());
            }
        }
        Input::SyncResponse(messages) => {
            out.push(STEP_SYNC_RESPONSE);
            out.extend_from_slice(&(messages.len() as u32).to_le_bytes());
            for message in messages {
                put_frame(&mut out, message);
            }
        }
        Input::Tick => out.push(STEP_TICK),
        Input::Broadcast(payload) => {
            out.push(STEP_BROADCAST);
            out.extend_from_slice(&payload.to_le_bytes());
        }
        Input::Crash => out.push(STEP_CRASH),
        Input::Restore => out.push(STEP_RESTORE),
    }
    out
}

fn read_frame(r: &mut Reader<'_>) -> Result<Message<u32>, ExportError> {
    let len = r.u32()? as usize;
    let frame = Bytes::from(r.take(len)?);
    message_from_wire(frame)
}

/// Deserializes one replay step.
///
/// # Errors
///
/// [`ExportError`] on malformed bytes; never panics.
pub fn decode_step(bytes: &[u8]) -> Result<(u64, Input<u32>), ExportError> {
    let mut r = Reader(bytes);
    let now_us = r.u64()?;
    let kind = r.u8()?;
    let input = match kind {
        STEP_FRAME => Input::FrameReceived(read_frame(&mut r)?),
        STEP_SYNC_REQUEST => {
            let from = ProcessId::new(r.u32()? as usize);
            let count = r.u32()? as usize;
            let mut known = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let sender = ProcessId::new(r.u32()? as usize);
                known.push(MessageId::new(sender, r.u64()?));
            }
            Input::SyncRequest { from, known }
        }
        STEP_SYNC_RESPONSE => {
            let count = r.u32()? as usize;
            let mut messages = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                messages.push(read_frame(&mut r)?);
            }
            Input::SyncResponse(messages)
        }
        STEP_TICK => Input::Tick,
        STEP_BROADCAST => Input::Broadcast(r.u32()?),
        STEP_CRASH => Input::Crash,
        STEP_RESTORE => Input::Restore,
        other => return Err(ExportError::BadKind(other)),
    };
    r.done()?;
    Ok((now_us, input))
}

// ---- node spec codec --------------------------------------------------

/// Serializes the constructor arguments for one replayed node.
#[must_use]
pub fn encode_node_spec(spec: &NodeSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&spec.node.to_le_bytes());
    out.extend_from_slice(&spec.n.to_le_bytes());
    out.extend_from_slice(&(spec.keys.space().r() as u32).to_le_bytes());
    out.extend_from_slice(&(spec.keys.space().k() as u32).to_le_bytes());
    out.extend_from_slice(&spec.keys.set_id().to_le_bytes());
    out.push(u8::from(spec.pcb_config.detect_instant));
    out.push(u8::from(spec.pcb_config.recent_window.is_some()));
    out.extend_from_slice(&spec.pcb_config.recent_window.unwrap_or(0).to_le_bytes());
    out.push(u8::from(spec.pcb_config.dedup));
    out.extend_from_slice(&(spec.pcb_config.trace_capacity as u64).to_le_bytes());
    for v in [
        spec.timing.stale_after_us,
        spec.timing.poll_every_us,
        spec.timing.store_window_us,
        spec.timing.snapshot_every_us,
        spec.timing.sync_timeout_us,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes a [`NodeSpec`].
///
/// # Errors
///
/// [`ExportError`] on malformed bytes or an invalid key set.
pub fn decode_node_spec(bytes: &[u8]) -> Result<NodeSpec, ExportError> {
    let mut r = Reader(bytes);
    let node = r.u32()?;
    let n = r.u32()?;
    let (kr, kk) = (r.u32()? as usize, r.u32()? as usize);
    let set_id = r.u128()?;
    let space = KeySpace::new(kr, kk).map_err(|e| ExportError::Keys(e.to_string()))?;
    let keys = KeySet::from_set_id(space, set_id).map_err(|e| ExportError::Keys(e.to_string()))?;
    let detect_instant = r.u8()? != 0;
    let has_recent = r.u8()? != 0;
    let recent_window = r.u64()?;
    let dedup = r.u8()? != 0;
    let trace_capacity = r.u64()? as usize;
    let timing = RecoveryTimingUs {
        stale_after_us: r.u64()?,
        poll_every_us: r.u64()?,
        store_window_us: r.u64()?,
        snapshot_every_us: r.u64()?,
        sync_timeout_us: r.u64()?,
    };
    r.done()?;
    Ok(NodeSpec {
        node,
        n,
        keys,
        pcb_config: PcbConfig {
            detect_instant,
            recent_window: has_recent.then_some(recent_window),
            dedup,
            trace_capacity,
        },
        timing,
    })
}

// ---- digest codec -----------------------------------------------------

/// Serializes delivery digests (`(id, instant_alert, recent_alert)`).
#[must_use]
pub fn encode_digests(digests: &[(MessageId, bool, bool)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + digests.len() * 13);
    out.extend_from_slice(&(digests.len() as u32).to_le_bytes());
    for (id, instant, recent) in digests {
        out.extend_from_slice(&(id.sender().index() as u32).to_le_bytes());
        out.extend_from_slice(&id.seq().to_le_bytes());
        out.push(u8::from(*instant) | (u8::from(*recent) << 1));
    }
    out
}

/// Deserializes delivery digests.
///
/// # Errors
///
/// [`ExportError::Truncated`] on malformed bytes.
pub fn decode_digests(bytes: &[u8]) -> Result<Vec<(MessageId, bool, bool)>, ExportError> {
    let mut r = Reader(bytes);
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let sender = ProcessId::new(r.u32()? as usize);
        let seq = r.u64()?;
        let flags = r.u8()?;
        out.push((MessageId::new(sender, seq), flags & 1 != 0, flags & 2 != 0));
    }
    r.done()?;
    Ok(out)
}

/// Serializes recovery counters (for the daemon `status` leg).
#[must_use]
pub fn encode_counters(c: &Counters) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    for v in [c.sync_requests, c.sync_served, c.refetched, c.snapshots_taken, c.snapshot_restores] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes recovery counters.
///
/// # Errors
///
/// [`ExportError::Truncated`] on malformed bytes.
pub fn decode_counters(bytes: &[u8]) -> Result<Counters, ExportError> {
    let mut r = Reader(bytes);
    let c = Counters {
        sync_requests: r.u64()?,
        sync_served: r.u64()?,
        refetched: r.u64()?,
        snapshots_taken: r.u64()?,
        snapshot_restores: r.u64()?,
    };
    r.done()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_broadcast::Endpoint;
    use pcb_clock::AssignmentPolicy;

    use crate::chaos::record_endpoint_chaos;
    use crate::runner::chaos_config;

    fn sample_message() -> Message<u32> {
        let space = KeySpace::new(16, 2).unwrap();
        let keys = KeySet::from_entries(space, &[3, 9]).unwrap();
        let mut ep = Endpoint::new(ProcessId::new(2), keys, PcbConfig::default(), None);
        let outs = ep.handle(Input::Broadcast(77), 1_000);
        outs.into_iter()
            .find_map(|o| match o {
                pcb_broadcast::Output::SendFrame(m) => Some(m),
                _ => None,
            })
            .expect("broadcast emits a frame")
    }

    #[test]
    fn step_codec_round_trips_every_kind() {
        let m = sample_message();
        let steps: Vec<(u64, Input<u32>)> = vec![
            (1, Input::FrameReceived(m.clone())),
            (
                2,
                Input::SyncRequest {
                    from: ProcessId::new(4),
                    known: vec![m.id(), MessageId::new(ProcessId::new(1), 9)],
                },
            ),
            (3, Input::SyncResponse(vec![m.clone(), m.clone()])),
            (4, Input::SyncResponse(Vec::new())),
            (5, Input::Tick),
            (6, Input::Broadcast(123)),
            (7, Input::Crash),
            (8, Input::Restore),
        ];
        for (now, input) in steps {
            let bytes = encode_step(now, &input);
            let (now2, input2) = decode_step(&bytes).unwrap();
            assert_eq!(now, now2);
            // Inputs lack PartialEq; compare via a second encode.
            assert_eq!(bytes, encode_step(now2, &input2), "{input:?}");
        }
    }

    #[test]
    fn step_codec_is_total() {
        let bytes = encode_step(9, &Input::FrameReceived(sample_message()));
        for cut in 0..bytes.len() {
            assert!(decode_step(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut bad = bytes.clone();
        bad[8] = 99; // unknown kind
        assert!(matches!(decode_step(&bad), Err(ExportError::BadKind(99))));
    }

    #[test]
    fn node_spec_round_trips() {
        let space = KeySpace::new(10, 3).unwrap();
        let spec = NodeSpec {
            node: 4,
            n: 9,
            keys: KeySet::from_entries(space, &[1, 5, 7]).unwrap(),
            pcb_config: PcbConfig {
                detect_instant: true,
                recent_window: Some(12_345),
                dedup: true,
                trace_capacity: 64,
            },
            timing: RecoveryTimingUs::default(),
        };
        let bytes = encode_node_spec(&spec);
        let back = decode_node_spec(&bytes).unwrap();
        assert_eq!(back.node, 4);
        assert_eq!(back.n, 9);
        assert_eq!(back.keys, spec.keys);
        assert_eq!(back.pcb_config, spec.pcb_config);
        assert_eq!(back.timing, spec.timing);
        for cut in 0..bytes.len() {
            assert!(decode_node_spec(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn digest_and_counter_codecs_round_trip() {
        let digests = vec![
            (MessageId::new(ProcessId::new(0), 1), false, false),
            (MessageId::new(ProcessId::new(3), 77), true, false),
            (MessageId::new(ProcessId::new(8), 2), true, true),
        ];
        assert_eq!(decode_digests(&encode_digests(&digests)).unwrap(), digests);
        let c = Counters {
            sync_requests: 1,
            sync_served: 2,
            refetched: 3,
            snapshots_taken: 4,
            snapshot_restores: 5,
        };
        assert_eq!(decode_counters(&encode_counters(&c)).unwrap(), c);
    }

    /// The design lynchpin of the multi-process harness: replaying each
    /// node's stream **independently** (through the step codec, as the
    /// daemons will) reproduces the recorded digests bit-for-bit —
    /// endpoints observe only their own input order.
    #[test]
    fn per_node_replay_through_the_codec_matches_the_record() {
        let cfg = chaos_config(5, 5, 800.0);
        let space = KeySpace::new(16, 2).unwrap();
        let record = record_endpoint_chaos(&cfg, space, AssignmentPolicy::RoundRobin).unwrap();
        let script = ReplayScript::from_record(&record);
        for node in 0..script.n {
            let spec = script.spec(node);
            let spec = decode_node_spec(&encode_node_spec(&spec)).unwrap();
            let mut ep = Endpoint::new(
                ProcessId::new(spec.node as usize),
                spec.keys,
                spec.pcb_config,
                Some(spec.timing),
            );
            let mut digests = Vec::new();
            for (now, input) in &script.steps[node] {
                let bytes = encode_step(*now, input);
                let (now, input) = decode_step(&bytes).unwrap();
                for out in ep.handle(input, now) {
                    if let pcb_broadcast::Output::Deliver(d) = out {
                        digests.push((d.message.id(), d.instant_alert, d.recent_alert));
                    }
                }
            }
            assert_eq!(digests, script.expected[node], "node {node}");
            assert_eq!(ep.recovery_counters(), script.expected_counters[node], "node {node}");
        }
    }
}
