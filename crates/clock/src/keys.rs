//! Key spaces and key sets: the `f(p_i)` of the paper.
//!
//! A [`KeySpace`] is the pair `(R, K)` — vector length and entries per
//! process. A [`KeySet`] is one concrete assignment `f(p)`: a strictly
//! increasing set of `K` entries drawn from `{0, …, R-1}`, identified by
//! its lexicographic rank (`set_id`, paper §4.1.3).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::combinatorics::{binomial, rank, unrank, BinomialTable, CombinatoricsError};

/// Errors raised when constructing key spaces or key sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// `R` must be at least 1.
    EmptySpace,
    /// `K` must satisfy `1 <= K <= R`.
    InvalidK {
        /// Offending entries-per-process.
        k: usize,
        /// Vector length.
        r: usize,
    },
    /// Underlying combinatorial failure (bad rank, malformed set, overflow).
    Combinatorics(CombinatoricsError),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpace => write!(f, "key space requires R >= 1"),
            Self::InvalidK { k, r } => write!(f, "K must satisfy 1 <= K <= R, got K={k}, R={r}"),
            Self::Combinatorics(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KeyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Combinatorics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CombinatoricsError> for KeyError {
    fn from(e: CombinatoricsError) -> Self {
        Self::Combinatorics(e)
    }
}

/// The `(R, K)` configuration of the probabilistic clock.
///
/// In the paper's `(a, b, c) = (N, R, K)` taxonomy this is `(b, c)`:
/// Lamport clocks are `(1, 1)`, plausible clocks `(R, 1)`, vector clocks
/// `(N, 1)` with distinct entries, and the paper's mechanism a general
/// `(R, K)`.
///
/// ```
/// use pcb_clock::KeySpace;
/// let space = KeySpace::new(100, 4)?;
/// assert_eq!(space.combination_count(), 3_921_225);
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeySpace {
    r: usize,
    k: usize,
}

impl KeySpace {
    /// Creates a key space with vector length `r` and `k` entries per process.
    ///
    /// # Errors
    ///
    /// [`KeyError::EmptySpace`] if `r == 0`; [`KeyError::InvalidK`] unless
    /// `1 <= k <= r`.
    pub fn new(r: usize, k: usize) -> Result<Self, KeyError> {
        if r == 0 {
            return Err(KeyError::EmptySpace);
        }
        if k == 0 || k > r {
            return Err(KeyError::InvalidK { k, r });
        }
        Ok(Self { r, k })
    }

    /// The Lamport configuration `(R, K) = (1, 1)` — every process shares
    /// the single entry.
    #[must_use]
    pub fn lamport() -> Self {
        Self { r: 1, k: 1 }
    }

    /// The plausible-clock configuration `(R, 1)` of Torres-Rojas & Ahamad.
    ///
    /// # Errors
    ///
    /// [`KeyError::EmptySpace`] if `r == 0`.
    pub fn plausible(r: usize) -> Result<Self, KeyError> {
        Self::new(r, 1)
    }

    /// The vector-clock configuration `(N, 1)`: combined with
    /// [`KeySet::singleton`] per process it reproduces exact causal order.
    ///
    /// # Errors
    ///
    /// [`KeyError::EmptySpace`] if `n == 0`.
    pub fn vector(n: usize) -> Result<Self, KeyError> {
        Self::new(n, 1)
    }

    /// Vector length `R`.
    #[must_use]
    pub const fn r(&self) -> usize {
        self.r
    }

    /// Entries per process `K`.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct key sets, `C(R, K)`, saturating at `u128::MAX`.
    #[must_use]
    pub fn combination_count(&self) -> u128 {
        binomial(self.r as u64, self.k as u64).unwrap_or(u128::MAX)
    }

    /// Builds a Pascal table sized for this space, for hot-path unranking.
    #[must_use]
    pub fn binomial_table(&self) -> BinomialTable {
        BinomialTable::new(self.r)
    }
}

impl fmt::Display for KeySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(R={}, K={})", self.r, self.k)
    }
}

/// A process's assigned entries `f(p)`: `K` strictly increasing indices
/// into the `R`-entry clock vector.
///
/// ```
/// use pcb_clock::{KeySet, KeySpace};
/// let space = KeySpace::new(4, 2)?;
/// let keys = KeySet::from_set_id(space, 1)?;
/// assert_eq!(keys.entries(), &[0, 2]);
/// assert_eq!(keys.set_id(), 1);
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeySet {
    space: KeySpace,
    entries: Vec<u32>,
    set_id: u128,
}

impl KeySet {
    /// Derives the key set from a `set_id` in `[0, C(R, K))` by
    /// lexicographic unranking (paper Algorithm 3).
    ///
    /// # Errors
    ///
    /// [`KeyError::Combinatorics`] if `set_id` is out of range.
    pub fn from_set_id(space: KeySpace, set_id: u128) -> Result<Self, KeyError> {
        let combo = unrank(set_id, space.r, space.k)?;
        Ok(Self { space, entries: combo.into_iter().map(|e| e as u32).collect(), set_id })
    }

    /// Builds a key set from explicit entries, validating shape.
    ///
    /// # Errors
    ///
    /// [`KeyError::InvalidK`] if the number of entries differs from `K`;
    /// [`KeyError::Combinatorics`] if entries are not strictly increasing
    /// within `0..R`.
    pub fn from_entries(space: KeySpace, entries: &[usize]) -> Result<Self, KeyError> {
        if entries.len() != space.k {
            return Err(KeyError::InvalidK { k: entries.len(), r: space.r });
        }
        // rank() also validates monotonicity and range.
        let set_id = rank(entries, space.r)?;
        Ok(Self { space, entries: entries.iter().map(|&e| e as u32).collect(), set_id })
    }

    /// The single-entry key set `{index}` in an `(R, 1)` space — used for
    /// plausible- and vector-clock instantiations.
    ///
    /// # Errors
    ///
    /// [`KeyError::InvalidK`] if the space does not have `K = 1`;
    /// [`KeyError::Combinatorics`] if `index >= R`.
    pub fn singleton(space: KeySpace, index: usize) -> Result<Self, KeyError> {
        Self::from_entries(space, &[index])
    }

    /// Plausible-clock assignment for a process: entry `pid mod R`
    /// (Torres-Rojas & Ahamad's static mapping).
    ///
    /// # Errors
    ///
    /// [`KeyError::InvalidK`] if the space does not have `K = 1`.
    pub fn plausible(space: KeySpace, pid: crate::ProcessId) -> Result<Self, KeyError> {
        Self::singleton(space, pid.index() % space.r())
    }

    /// The key space this set belongs to.
    #[must_use]
    pub const fn space(&self) -> KeySpace {
        self.space
    }

    /// The assigned entries, strictly increasing.
    #[must_use]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Iterates over entries as `usize` indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&e| e as usize)
    }

    /// Number of entries, `K`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the key set is empty (never true for validated sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `entry` belongs to this key set (binary search).
    #[must_use]
    pub fn contains(&self, entry: usize) -> bool {
        u32::try_from(entry).is_ok_and(|e| self.entries.binary_search(&e).is_ok())
    }

    /// The lexicographic rank of this set — its `set_id` (cached at
    /// construction; free to read).
    #[must_use]
    pub fn set_id(&self) -> u128 {
        self.set_id
    }

    /// Number of entries shared with `other` (both sorted; linear merge).
    ///
    /// The paper notes that distinct set ids overlap in at most `K - 1`
    /// entries, which bounds interference between two specific processes.
    #[must_use]
    pub fn overlap(&self, other: &KeySet) -> usize {
        let (mut i, mut j, mut shared) = (0, 0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].cmp(&other.entries[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// Whether every entry of `self` appears in the union of `others` —
    /// the *covering* condition behind delivery errors (paper Figure 2:
    /// an error requires `f(p_i) ⊆ ∪ f(p_l)` over concurrent senders).
    #[must_use]
    pub fn covered_by<'a, I>(&self, others: I) -> bool
    where
        I: IntoIterator<Item = &'a KeySet>,
    {
        let mut covered = vec![false; self.entries.len()];
        for other in others {
            for (slot, entry) in self.iter().enumerate() {
                if other.contains(entry) {
                    covered[slot] = true;
                }
            }
        }
        covered.into_iter().all(|c| c)
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// Static partition of the `R` clock entries into shards — the shard key
/// for parallel pending/wake machinery.
///
/// Entry `e` lives on shard `e mod S` (round-robin striping). A message's
/// shard footprint is the image of its [`KeySet`] under that map: since a
/// message touches at most `K` of `R` entries (paper Algorithm 1/2), two
/// messages whose key sets map to disjoint shard sets never contend on
/// the same wake channel. The map is pure arithmetic — no state — so
/// every process derives the identical partition from `(R, S)` alone.
///
/// ```
/// use pcb_clock::{KeySet, KeySpace, ShardMap};
/// let space = KeySpace::new(8, 2)?;
/// let map = ShardMap::new(3);
/// let keys = KeySet::from_entries(space, &[1, 4])?;
/// assert_eq!(map.shard_of(1), 1);
/// assert_eq!(map.shard_of(4), 1);
/// assert_eq!(map.shards_of(&keys), vec![1]);
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards; zero is clamped to one (the
    /// sequential layout).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards in the partition.
    #[must_use]
    pub const fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning clock entry `entry`.
    #[must_use]
    pub const fn shard_of(&self, entry: usize) -> usize {
        entry % self.shards
    }

    /// The entry's position within its shard's dense local storage:
    /// shard `s` owns entries `s, s + S, s + 2S, …` at offsets
    /// `0, 1, 2, …`.
    #[must_use]
    pub const fn offset_of(&self, entry: usize) -> usize {
        entry / self.shards
    }

    /// How many entries of a clock of length `len` fall on `shard`.
    #[must_use]
    pub const fn shard_len(&self, len: usize, shard: usize) -> usize {
        len / self.shards + if shard < len % self.shards { 1 } else { 0 }
    }

    /// The distinct shards a key set touches, sorted ascending — the
    /// wake channels a delivery stamped with `keys` can advance.
    #[must_use]
    pub fn shards_of(&self, keys: &KeySet) -> Vec<usize> {
        let mut shards: Vec<usize> = keys.iter().map(|e| self.shard_of(e)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn space_validation() {
        assert_eq!(KeySpace::new(0, 0), Err(KeyError::EmptySpace));
        assert_eq!(KeySpace::new(4, 0), Err(KeyError::InvalidK { k: 0, r: 4 }));
        assert_eq!(KeySpace::new(4, 5), Err(KeyError::InvalidK { k: 5, r: 4 }));
        assert!(KeySpace::new(4, 4).is_ok());
    }

    #[test]
    fn named_configurations() {
        assert_eq!(KeySpace::lamport(), KeySpace::new(1, 1).unwrap());
        assert_eq!(KeySpace::plausible(10).unwrap(), KeySpace::new(10, 1).unwrap());
        assert_eq!(KeySpace::vector(5).unwrap(), KeySpace::new(5, 1).unwrap());
    }

    #[test]
    fn set_id_roundtrip() {
        let space = KeySpace::new(10, 3).unwrap();
        for id in 0..space.combination_count() {
            let keys = KeySet::from_set_id(space, id).unwrap();
            assert_eq!(keys.set_id(), id);
            assert_eq!(keys.len(), 3);
        }
    }

    #[test]
    fn shard_map_partitions_entries() {
        let map = ShardMap::new(3);
        // Every entry lands on exactly one shard, at a dense offset.
        let mut seen = vec![Vec::new(); 3];
        for e in 0..10 {
            seen[map.shard_of(e)].push(map.offset_of(e));
        }
        for (shard, offsets) in seen.iter().enumerate() {
            assert_eq!(offsets.len(), map.shard_len(10, shard), "shard {shard}");
            assert_eq!(*offsets, (0..offsets.len()).collect::<Vec<_>>(), "shard {shard}");
        }
        // Zero shards clamp to the sequential layout.
        let seq = ShardMap::new(0);
        assert_eq!(seq.shards(), 1);
        assert_eq!(seq.shard_of(7), 0);
        assert_eq!(seq.offset_of(7), 7);
    }

    #[test]
    fn shard_footprint_is_sorted_and_deduped() {
        let space = KeySpace::new(12, 4).unwrap();
        let map = ShardMap::new(4);
        let keys = KeySet::from_entries(space, &[0, 4, 8, 9]).unwrap();
        assert_eq!(map.shards_of(&keys), vec![0, 1]);
    }

    #[test]
    fn from_entries_validates() {
        let space = KeySpace::new(5, 2).unwrap();
        assert!(KeySet::from_entries(space, &[1, 3]).is_ok());
        assert!(KeySet::from_entries(space, &[3, 1]).is_err());
        assert!(KeySet::from_entries(space, &[1, 5]).is_err());
        assert!(KeySet::from_entries(space, &[1]).is_err());
        assert!(KeySet::from_entries(space, &[1, 2, 3]).is_err());
    }

    #[test]
    fn contains_and_iter() {
        let space = KeySpace::new(8, 3).unwrap();
        let keys = KeySet::from_entries(space, &[0, 4, 7]).unwrap();
        assert!(keys.contains(0) && keys.contains(4) && keys.contains(7));
        assert!(!keys.contains(1) && !keys.contains(8));
        assert_eq!(keys.iter().collect::<Vec<_>>(), vec![0, 4, 7]);
        assert!(!keys.is_empty());
    }

    #[test]
    fn overlap_counts_shared_entries() {
        let space = KeySpace::new(8, 3).unwrap();
        let a = KeySet::from_entries(space, &[0, 4, 7]).unwrap();
        let b = KeySet::from_entries(space, &[1, 4, 7]).unwrap();
        let c = KeySet::from_entries(space, &[1, 2, 3]).unwrap();
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap(&c), 0);
        assert_eq!(a.overlap(&a), 3);
    }

    #[test]
    fn distinct_sets_overlap_at_most_k_minus_1() {
        let space = KeySpace::new(6, 3).unwrap();
        let sets: Vec<_> = (0..space.combination_count())
            .map(|id| KeySet::from_set_id(space, id).unwrap())
            .collect();
        for (i, a) in sets.iter().enumerate() {
            for b in &sets[i + 1..] {
                assert!(a.overlap(b) <= 2);
            }
        }
    }

    #[test]
    fn covered_by_matches_paper_figure2() {
        // Figure 2: f(p_i) = {0,1} is covered by f(p_1) = {0,3} ∪ f(p_2) = {1,3}.
        let space = KeySpace::new(4, 2).unwrap();
        let fi = KeySet::from_entries(space, &[0, 1]).unwrap();
        let f1 = KeySet::from_entries(space, &[0, 3]).unwrap();
        let f2 = KeySet::from_entries(space, &[1, 3]).unwrap();
        assert!(fi.covered_by([&f1, &f2]));
        assert!(!fi.covered_by([&f1]));
        assert!(!fi.covered_by([&f2]));
        assert!(fi.covered_by([&fi]));
    }

    #[test]
    fn plausible_maps_pid_mod_r() {
        let space = KeySpace::plausible(4).unwrap();
        let keys = KeySet::plausible(space, ProcessId::new(6)).unwrap();
        assert_eq!(keys.entries(), &[2]);
    }

    #[test]
    fn display_formats() {
        let space = KeySpace::new(5, 2).unwrap();
        let keys = KeySet::from_entries(space, &[1, 3]).unwrap();
        assert_eq!(keys.to_string(), "{1,3}");
        assert_eq!(space.to_string(), "(R=5, K=2)");
    }
}
