//! Classical per-process vector clocks (Fidge/Mattern), used by the exact
//! causal-broadcast baseline and by the simulator's ground-truth oracle.
//!
//! Entry `j` of the vector managed by `p_i` counts the number of messages
//! broadcast by `p_j`, to the knowledge of `p_i` (paper §2). This is the
//! `(N, N, 1)` point of the paper's design space and the proven-minimal
//! structure for exact causal delivery.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// Outcome of comparing two vector timestamps under Lamport's
/// happened-before relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalRelation {
    /// Identical vectors.
    Equal,
    /// Left happened before right.
    Before,
    /// Right happened before left.
    After,
    /// Neither dominates: concurrent events.
    Concurrent,
}

impl fmt::Display for CausalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Equal => "equal",
            Self::Before => "before",
            Self::After => "after",
            Self::Concurrent => "concurrent",
        };
        f.write_str(s)
    }
}

/// A classical vector clock over a fixed universe of `N` processes.
///
/// ```
/// use pcb_clock::{CausalRelation, ProcessId, VectorClock};
/// let mut a = VectorClock::new(3);
/// let ts1 = a.stamp_send(ProcessId::new(0));
/// let mut b = VectorClock::new(3);
/// assert!(b.is_deliverable(&ts1, ProcessId::new(0)));
/// b.record_delivery(&ts1, ProcessId::new(0));
/// let ts2 = b.stamp_send(ProcessId::new(1));
/// assert_eq!(ts1.compare(&ts2), CausalRelation::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    counters: Vec<u64>,
}

impl VectorClock {
    /// A zeroed clock for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { counters: vec![0; n] }
    }

    /// Wraps raw counters.
    #[must_use]
    pub fn from_counters(counters: Vec<u64>) -> Self {
        Self { counters }
    }

    /// Number of processes tracked, `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Raw counters, indexed by process.
    #[must_use]
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// This process's own send count within the stamp.
    #[must_use]
    pub fn get(&self, pid: ProcessId) -> u64 {
        self.counters[pid.index()]
    }

    /// Broadcast-send: increments the sender's own entry and returns the
    /// timestamp to attach (Schiper-style broadcast vector clock, where the
    /// entry counts *messages*, not all events).
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the universe.
    pub fn stamp_send(&mut self, sender: ProcessId) -> VectorClock {
        self.counters[sender.index()] += 1;
        self.clone()
    }

    /// Exact causal-delivery guard: `ts[j] == V[j] + 1` for the sender and
    /// `ts[k] <= V[k]` for every other process.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn is_deliverable(&self, ts: &VectorClock, sender: ProcessId) -> bool {
        assert_eq!(self.len(), ts.len(), "vector clock length mismatch");
        let j = sender.index();
        if ts.counters[j] != self.counters[j] + 1 {
            return false;
        }
        self.counters
            .iter()
            .zip(&ts.counters)
            .enumerate()
            .all(|(idx, (mine, theirs))| idx == j || theirs <= mine)
    }

    /// Records a delivery: merges the message stamp into the local view.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn record_delivery(&mut self, ts: &VectorClock, sender: ProcessId) {
        assert_eq!(self.len(), ts.len(), "vector clock length mismatch");
        let _ = sender;
        for (mine, theirs) in self.counters.iter_mut().zip(&ts.counters) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Component-wise maximum, in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn merge_max(&mut self, other: &VectorClock) {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Compares two stamps under happened-before.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn compare(&self, other: &VectorClock) -> CausalRelation {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.counters.iter().zip(&other.counters) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => CausalRelation::Equal,
            (true, false) => CausalRelation::Before,
            (false, true) => CausalRelation::After,
            (true, true) => CausalRelation::Concurrent,
        }
    }

    /// Whether `self` dominates `other` component-wise (`self >= other`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn dominates(&self, other: &VectorClock) -> bool {
        matches!(self.compare(other), CausalRelation::Equal | CausalRelation::After)
    }

    /// Wire size in bytes of this stamp — the `O(N)` overhead the paper's
    /// mechanism avoids.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    #[test]
    fn send_increments_own_entry() {
        let mut vc = VectorClock::new(3);
        let ts = vc.stamp_send(P1);
        assert_eq!(ts.counters(), &[0, 1, 0]);
        assert_eq!(vc.get(P1), 1);
    }

    #[test]
    fn fifo_gap_blocks_delivery() {
        let mut sender = VectorClock::new(2);
        let m1 = sender.stamp_send(P0);
        let m2 = sender.stamp_send(P0);
        let mut rx = VectorClock::new(2);
        assert!(!rx.is_deliverable(&m2, P0));
        assert!(rx.is_deliverable(&m1, P0));
        rx.record_delivery(&m1, P0);
        assert!(rx.is_deliverable(&m2, P0));
        rx.record_delivery(&m2, P0);
        assert_eq!(rx.counters(), &[2, 0]);
    }

    #[test]
    fn causal_dependency_blocks_delivery() {
        let mut a = VectorClock::new(3);
        let m = a.stamp_send(P0);
        let mut b = VectorClock::new(3);
        b.record_delivery(&m, P0);
        let m_prime = b.stamp_send(P1);

        let mut c = VectorClock::new(3);
        assert!(!c.is_deliverable(&m_prime, P1), "m' depends on undelivered m");
        c.record_delivery(&m, P0);
        assert!(c.is_deliverable(&m_prime, P1));
    }

    #[test]
    fn duplicate_and_stale_rejected() {
        let mut sender = VectorClock::new(2);
        let m1 = sender.stamp_send(P0);
        let mut rx = VectorClock::new(2);
        rx.record_delivery(&m1, P0);
        assert!(!rx.is_deliverable(&m1, P0), "already-delivered message is stale");
    }

    #[test]
    fn compare_relations() {
        let a = VectorClock::from_counters(vec![1, 0]);
        let b = VectorClock::from_counters(vec![1, 1]);
        let c = VectorClock::from_counters(vec![0, 1]);
        assert_eq!(a.compare(&b), CausalRelation::Before);
        assert_eq!(b.compare(&a), CausalRelation::After);
        assert_eq!(a.compare(&c), CausalRelation::Concurrent);
        assert_eq!(a.compare(&a), CausalRelation::Equal);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn merge_max_is_lub() {
        let mut a = VectorClock::from_counters(vec![3, 0, 1]);
        let b = VectorClock::from_counters(vec![1, 2, 1]);
        a.merge_max(&b);
        assert_eq!(a.counters(), &[3, 2, 1]);
        assert!(a.dominates(&b));
    }

    #[test]
    fn three_process_diamond() {
        // p0 sends m; p1 and p2 both deliver then send; their messages are
        // concurrent with each other but after m.
        let mut p0 = VectorClock::new(3);
        let m = p0.stamp_send(P0);
        let mut p1 = VectorClock::new(3);
        let mut p2 = VectorClock::new(3);
        p1.record_delivery(&m, P0);
        p2.record_delivery(&m, P0);
        let m1 = p1.stamp_send(P1);
        let m2 = p2.stamp_send(P2);
        assert_eq!(m.compare(&m1), CausalRelation::Before);
        assert_eq!(m.compare(&m2), CausalRelation::Before);
        assert_eq!(m1.compare(&m2), CausalRelation::Concurrent);
    }

    #[test]
    fn display_formats() {
        let vc = VectorClock::from_counters(vec![1, 2]);
        assert_eq!(vc.to_string(), "<1,2>");
        assert_eq!(CausalRelation::Concurrent.to_string(), "concurrent");
    }

    #[test]
    fn wire_size_linear_in_n() {
        assert_eq!(VectorClock::new(1000).wire_size(), 8000);
    }
}
