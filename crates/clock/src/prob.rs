//! The probabilistic `(R, K)` clock — the paper's core contribution.
//!
//! A [`ProbClock`] holds the local vector `V_i` of `R` counters and
//! implements the three primitives of §4.1.2:
//!
//! * [`ProbClock::stamp_send`] — Algorithm 1: increment every entry in
//!   `f(p_i)`, attach a copy of the vector to the message;
//! * [`ProbClock::is_deliverable`] — the wait-condition of Algorithm 2:
//!   sender entries `V_i[x] >= m.V[x] - 1`, all others `V_i[k] >= m.V[k]`;
//! * [`ProbClock::record_delivery`] — the post-condition of Algorithm 2:
//!   increment every entry in `f(p_j)` (increment, **not** merge — with
//!   shared entries the two differ, see the ablation benches).
//!
//! The coverage test of Algorithm 4 ([`ProbClock::is_covered`]) is also
//! here because it reads only the local vector.

use serde::{Deserialize, Serialize};

use crate::{KeySet, Timestamp};

/// Why a message is (or is not) deliverable, as reported by
/// [`ProbClock::deliverability_gap`].
///
/// A `Blocked` gap names the **first** vector entry whose wait-condition
/// fails and the local value that entry must reach. Because local clock
/// entries only grow and the required values are fixed per message, the
/// gap is *monotone*: once an entry's condition holds it holds forever,
/// so re-checking a blocked message can resume the scan from the last
/// blocking entry instead of restarting at zero
/// ([`ProbClock::deliverability_gap_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gap {
    /// Every entry satisfies the Algorithm 2 wait-condition.
    Ready,
    /// Entry `entry` is the first violation: delivery requires
    /// `V_i[entry] >= required`.
    Blocked {
        /// Index of the first blocked vector entry.
        entry: usize,
        /// The local value that entry must reach.
        required: u64,
    },
    /// No local progress can ever satisfy the stamp (used by exact
    /// disciplines for stamps from evicted processes; the probabilistic
    /// guard itself never produces this).
    Never,
}

impl Gap {
    /// Whether the message is deliverable now.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self, Self::Ready)
    }
}

/// Local state of the probabilistic causal ordering mechanism for one
/// process: the `R`-entry counter vector `V_i`.
///
/// ```
/// use pcb_clock::{KeySet, KeySpace, ProbClock};
/// let space = KeySpace::new(4, 2)?;
/// let f_i = KeySet::from_entries(space, &[0, 1])?;
/// let mut clock = ProbClock::new(space);
/// let ts = clock.stamp_send(&f_i);
/// assert_eq!(ts.entries(), &[1, 1, 0, 0]); // paper Figure 1
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbClock {
    vector: Timestamp,
}

impl ProbClock {
    /// A fresh clock (all entries zero) for the given space.
    #[must_use]
    pub fn new(space: crate::KeySpace) -> Self {
        Self { vector: Timestamp::zero(space.r()) }
    }

    /// A fresh clock with an explicit vector length.
    #[must_use]
    pub fn with_len(r: usize) -> Self {
        Self { vector: Timestamp::zero(r) }
    }

    /// Restores a clock from a previously captured vector (recovery,
    /// state transfer to a joining process).
    #[must_use]
    pub fn from_vector(vector: Timestamp) -> Self {
        Self { vector }
    }

    /// Vector length `R`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vector.len()
    }

    /// Whether the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vector.is_empty()
    }

    /// Read-only view of the local vector `V_i`.
    #[must_use]
    pub fn vector(&self) -> &Timestamp {
        &self.vector
    }

    /// **Algorithm 1.** Increments the caller's own entries `f(p_i)` and
    /// returns the timestamp to attach to the outgoing message.
    ///
    /// # Panics
    ///
    /// Panics if `own_keys` indexes outside the vector (mismatched space).
    pub fn stamp_send(&mut self, own_keys: &KeySet) -> Timestamp {
        for entry in own_keys.iter() {
            self.vector.entries_mut()[entry] += 1;
        }
        self.vector.clone()
    }

    /// **Algorithm 2 (guard).** Whether a message timestamped `ts` from a
    /// sender with keys `sender_keys` is causally ready:
    ///
    /// * for `x ∈ f(p_j)`: `V_i[x] >= ts[x] - 1` (all of the sender's own
    ///   earlier messages are reflected locally), and
    /// * for `x ∉ f(p_j)`: `V_i[x] >= ts[x]` (everything the sender had
    ///   delivered before sending is reflected locally).
    ///
    /// # Panics
    ///
    /// Panics if `ts` has a different length than the local vector.
    #[must_use]
    pub fn is_deliverable(&self, ts: &Timestamp, sender_keys: &KeySet) -> bool {
        assert_eq!(self.vector.len(), ts.len(), "timestamp length mismatch");
        let local = self.vector.entries();
        let remote = ts.entries();
        // Scan all R entries with the sender-key exemption applied via a
        // merged walk over the sorted key set.
        let mut keys = sender_keys.iter().peekable();
        for (index, (&mine, &theirs)) in local.iter().zip(remote).enumerate() {
            let is_sender_entry = keys.next_if(|&k| k == index).is_some();
            let required = if is_sender_entry { theirs.saturating_sub(1) } else { theirs };
            if mine < required {
                return false;
            }
        }
        true
    }

    /// Like [`ProbClock::is_deliverable`], but on failure reports the
    /// first blocked entry and the local value it must reach, so callers
    /// can index blocked messages by the entry they wait on instead of
    /// rescanning the whole pending queue after every delivery.
    ///
    /// # Panics
    ///
    /// Panics if `ts` has a different length than the local vector.
    #[must_use]
    pub fn deliverability_gap(&self, ts: &Timestamp, sender_keys: &KeySet) -> Gap {
        self.deliverability_gap_from(ts, sender_keys, 0)
    }

    /// Resumable variant of [`ProbClock::deliverability_gap`]: starts the
    /// scan at entry `start`, assuming entries `0..start` were already
    /// found satisfied. Sound because the wait-condition is monotone in
    /// the local clock — satisfied entries stay satisfied. A blocked
    /// message re-checked with its last reported gap as `start` therefore
    /// costs `O(R)` *total* across all re-checks, not per re-check.
    ///
    /// # Panics
    ///
    /// Panics if `ts` has a different length than the local vector.
    #[must_use]
    pub fn deliverability_gap_from(
        &self,
        ts: &Timestamp,
        sender_keys: &KeySet,
        start: usize,
    ) -> Gap {
        assert_eq!(self.vector.len(), ts.len(), "timestamp length mismatch");
        let local = self.vector.entries();
        let remote = ts.entries();
        // Merged walk as in `is_deliverable`, fast-forwarding the sorted
        // key cursor past the already-verified prefix.
        let mut keys = sender_keys.iter().peekable();
        while keys.next_if(|&k| k < start).is_some() {}
        for (index, (&mine, &theirs)) in local.iter().zip(remote).enumerate().skip(start) {
            let is_sender_entry = keys.next_if(|&k| k == index).is_some();
            let required = if is_sender_entry { theirs.saturating_sub(1) } else { theirs };
            if mine < required {
                return Gap::Blocked { entry: index, required };
            }
        }
        Gap::Ready
    }

    /// Diagnostic version of the guard: every blocked `(entry, required)`
    /// pair, not just the first. Useful for stats and tests; the hot path
    /// uses [`ProbClock::deliverability_gap`].
    ///
    /// # Panics
    ///
    /// Panics if `ts` has a different length than the local vector.
    #[must_use]
    pub fn blocked_entries(&self, ts: &Timestamp, sender_keys: &KeySet) -> Vec<(usize, u64)> {
        assert_eq!(self.vector.len(), ts.len(), "timestamp length mismatch");
        let local = self.vector.entries();
        let remote = ts.entries();
        let mut keys = sender_keys.iter().peekable();
        let mut blocked = Vec::new();
        for (index, (&mine, &theirs)) in local.iter().zip(remote).enumerate() {
            let is_sender_entry = keys.next_if(|&k| k == index).is_some();
            let required = if is_sender_entry { theirs.saturating_sub(1) } else { theirs };
            if mine < required {
                blocked.push((index, required));
            }
        }
        blocked
    }

    /// **Algorithm 2 (post).** Records a delivery from a sender with keys
    /// `sender_keys` by incrementing those entries in the local vector.
    ///
    /// # Panics
    ///
    /// Panics if `sender_keys` indexes outside the vector.
    pub fn record_delivery(&mut self, sender_keys: &KeySet) {
        for entry in sender_keys.iter() {
            self.vector.entries_mut()[entry] += 1;
        }
    }

    /// **Algorithm 4 predicate.** Whether every sender entry of `ts` is
    /// already matched locally (`∀x ∈ f(p_j): V_i[x] >= ts[x]`), i.e. no
    /// entry satisfies the "exactly one behind" relation `V_i[x] = ts[x]-1`.
    ///
    /// When this returns `true` at delivery time, concurrent messages have
    /// covered all of the sender's entries and the delivery *may* be a
    /// causal-order violation; `false` guarantees it is not.
    ///
    /// # Panics
    ///
    /// Panics if `ts` is shorter than the largest sender key.
    #[must_use]
    pub fn is_covered(&self, ts: &Timestamp, sender_keys: &KeySet) -> bool {
        sender_keys.iter().all(|x| self.vector[x] >= ts[x])
    }

    /// Overwrites the local vector (anti-entropy / recovery hook).
    pub fn reset_to(&mut self, vector: Timestamp) {
        self.vector = vector;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeySpace, Timestamp};

    fn space4x2() -> crate::KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(space4x2(), entries).unwrap()
    }

    #[test]
    fn figure1_nominal_scenario() {
        // Paper Figure 1: R = 4, K = 2, f(p_i) = {0,1}, f(p_j) = {1,2}.
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);

        let mut pi = ProbClock::new(space4x2());
        let mut pj = ProbClock::new(space4x2());
        let mut pk = ProbClock::new(space4x2());

        // p_i broadcasts m.
        let m = pi.stamp_send(&f_i);
        assert_eq!(m.entries(), &[1, 1, 0, 0]);

        // p_j receives m first: deliverable, vector becomes [1,1,0,0].
        assert!(pj.is_deliverable(&m, &f_i));
        pj.record_delivery(&f_i);
        assert_eq!(pj.vector().entries(), &[1, 1, 0, 0]);

        // p_j broadcasts m' -> [1,2,1,0].
        let m_prime = pj.stamp_send(&f_j);
        assert_eq!(m_prime.entries(), &[1, 2, 1, 0]);

        // p_k receives m' before m: delayed.
        assert!(!pk.is_deliverable(&m_prime, &f_j));

        // m arrives: deliverable; after it, m' becomes deliverable.
        assert!(pk.is_deliverable(&m, &f_i));
        pk.record_delivery(&f_i);
        assert_eq!(pk.vector().entries(), &[1, 1, 0, 0]);
        assert!(pk.is_deliverable(&m_prime, &f_j));
        pk.record_delivery(&f_j);
        assert_eq!(pk.vector().entries(), &[1, 2, 1, 0]);
    }

    #[test]
    fn figure2_delivery_error_scenario() {
        // Figure 2 adds p_1 (f = {0,3}) and p_2 (f = {1,3}) whose
        // concurrent messages cover f(p_i) = {0,1} and let m' slip past m.
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);
        let f_1 = keys(&[0, 3]);
        let f_2 = keys(&[1, 3]);

        let mut pi = ProbClock::new(space4x2());
        let mut pj = ProbClock::new(space4x2());
        let mut p1 = ProbClock::new(space4x2());
        let mut p2 = ProbClock::new(space4x2());
        let mut pk = ProbClock::new(space4x2());

        let m = pi.stamp_send(&f_i);
        pj.record_delivery(&f_i); // p_j delivered m
        let m_prime = pj.stamp_send(&f_j);
        let m1 = p1.stamp_send(&f_1);
        let m2 = p2.stamp_send(&f_2);

        // p_k receives m2 then m1 (both concurrent with m).
        assert!(pk.is_deliverable(&m2, &f_2));
        pk.record_delivery(&f_2);
        assert!(pk.is_deliverable(&m1, &f_1));
        pk.record_delivery(&f_1);
        assert_eq!(pk.vector().entries(), &[1, 1, 0, 2]);

        // m' now (wrongly) looks deliverable although m was never received.
        assert!(pk.is_deliverable(&m_prime, &f_j));

        // Algorithm 4 raises the alert: all f(p_j) entries of m' are NOT
        // exactly-one-behind... the alert fires when every sender entry is
        // already matched. Here V_k[1]=1 = m'.V[1]-1, so no alert for m'
        // itself; the alert fires for the *late* message m when it arrives.
        pk.record_delivery(&f_j);
        assert!(pk.is_covered(&m, &f_i), "late m arrives fully covered -> alert");
    }

    #[test]
    fn initial_message_deliverable_everywhere() {
        // Lemma 1 base case H0: messages stamped from the initial state
        // are deliverable by any fresh process.
        let space = KeySpace::new(8, 3).unwrap();
        for id in 0..space.combination_count().min(56) {
            let k = KeySet::from_set_id(space, id).unwrap();
            let mut sender = ProbClock::new(space);
            let ts = sender.stamp_send(&k);
            let receiver = ProbClock::new(space);
            assert!(receiver.is_deliverable(&ts, &k));
        }
    }

    #[test]
    fn second_message_blocked_until_first_delivered() {
        let space = space4x2();
        let f = keys(&[1, 2]);
        let mut sender = ProbClock::new(space);
        let ts1 = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut receiver = ProbClock::new(space);
        assert!(!receiver.is_deliverable(&ts2, &f), "FIFO gap must block");
        assert!(receiver.is_deliverable(&ts1, &f));
        receiver.record_delivery(&f);
        assert!(receiver.is_deliverable(&ts2, &f));
    }

    #[test]
    fn causally_ready_message_never_delayed() {
        // Corollary 1: if everything in the causal past is delivered, the
        // message is immediately deliverable.
        let space = KeySpace::new(6, 2).unwrap();
        let fa = KeySet::from_entries(space, &[0, 1]).unwrap();
        let fb = KeySet::from_entries(space, &[2, 3]).unwrap();
        let mut a = ProbClock::new(space);
        let mut b = ProbClock::new(space);
        let mut c = ProbClock::new(space);

        let m1 = a.stamp_send(&fa);
        b.record_delivery(&fa);
        let m2 = b.stamp_send(&fb);

        assert!(c.is_deliverable(&m1, &fa));
        c.record_delivery(&fa);
        assert!(c.is_deliverable(&m2, &fb), "causal past delivered => ready");
    }

    #[test]
    fn is_covered_detects_exact_match() {
        let space = space4x2();
        let f = keys(&[0, 1]);
        let mut sender = ProbClock::new(space);
        let ts = sender.stamp_send(&f);

        let mut receiver = ProbClock::new(space);
        assert!(!receiver.is_covered(&ts, &f), "fresh receiver is one behind");
        receiver.record_delivery(&f);
        assert!(receiver.is_covered(&ts, &f), "after delivery, entries match");
    }

    #[test]
    fn lamport_configuration_degenerates() {
        // (R, K) = (1, 1): every send bumps the same counter, so a second
        // message from anyone is blocked until the first is delivered.
        let space = KeySpace::lamport();
        let f = KeySet::from_set_id(space, 0).unwrap();
        let mut a = ProbClock::new(space);
        let m1 = a.stamp_send(&f);
        let m2 = a.stamp_send(&f);
        let mut rx = ProbClock::new(space);
        assert!(rx.is_deliverable(&m1, &f));
        assert!(!rx.is_deliverable(&m2, &f));
        rx.record_delivery(&f);
        assert!(rx.is_deliverable(&m2, &f));
    }

    #[test]
    fn vector_configuration_is_exact() {
        // (R, K) = (N, 1) with distinct entries: no covering is possible,
        // so the Figure-2 interleaving cannot produce a wrong delivery.
        let n = 5;
        let space = KeySpace::vector(n).unwrap();
        let f: Vec<KeySet> = (0..n).map(|i| KeySet::singleton(space, i).unwrap()).collect();

        let mut pi = ProbClock::new(space);
        let mut pj = ProbClock::new(space);
        let mut p1 = ProbClock::new(space);
        let mut p2 = ProbClock::new(space);
        let mut pk = ProbClock::new(space);

        let m = pi.stamp_send(&f[0]);
        pj.record_delivery(&f[0]);
        let m_prime = pj.stamp_send(&f[1]);
        let m1 = p1.stamp_send(&f[2]);
        let m2 = p2.stamp_send(&f[3]);

        pk.record_delivery(&f[3]);
        let _ = m2;
        pk.record_delivery(&f[2]);
        let _ = m1;
        assert!(
            !pk.is_deliverable(&m_prime, &f[1]),
            "vector configuration must block m' until m is delivered"
        );
        assert!(pk.is_deliverable(&m, &f[0]));
    }

    #[test]
    fn gap_agrees_with_is_deliverable() {
        let space = space4x2();
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);
        let mut pi = ProbClock::new(space);
        let mut pj = ProbClock::new(space);

        let m = pi.stamp_send(&f_i);
        pj.record_delivery(&f_i);
        let m_prime = pj.stamp_send(&f_j);

        let pk = ProbClock::new(space);
        assert_eq!(pk.deliverability_gap(&m, &f_i), Gap::Ready);
        assert!(pk.is_deliverable(&m, &f_i));

        // m' = [1,2,1,0] at a fresh p_k: entry 0 is non-sender and needs
        // V[0] >= 1 — the first violation.
        assert_eq!(pk.deliverability_gap(&m_prime, &f_j), Gap::Blocked { entry: 0, required: 1 });
        assert!(!pk.is_deliverable(&m_prime, &f_j));
    }

    #[test]
    fn gap_resume_skips_verified_prefix() {
        let space = space4x2();
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);
        let mut pi = ProbClock::new(space);
        let mut pj = ProbClock::new(space);
        pi.record_delivery(&f_j); // raise a non-sender entry in m's stamp
        let m = pi.stamp_send(&f_i);
        let _ = pj.stamp_send(&f_j);

        let mut pk = ProbClock::new(space);
        // m = [1,2,1,0] from f_i={0,1}: entry 1 is a sender entry needing
        // V[1] >= 1; entry 2 is non-sender needing V[2] >= 1.
        let first = pk.deliverability_gap(&m, &f_i);
        assert_eq!(first, Gap::Blocked { entry: 1, required: 1 });

        // Deliver m_j (f_j = {1,2}) to advance entries 1 and 2.
        pk.record_delivery(&f_j);
        // Resuming at the old gap gives the same verdict as a full scan.
        let resumed = pk.deliverability_gap_from(&m, &f_i, 1);
        assert_eq!(resumed, pk.deliverability_gap(&m, &f_i));
        assert_eq!(resumed, Gap::Ready);
    }

    #[test]
    fn gap_first_blocked_entry_increases_monotonically() {
        // Drive random-ish scenarios: whenever a message stays blocked
        // across deliveries, the first blocked entry never moves left.
        let space = KeySpace::new(8, 3).unwrap();
        let sender = KeySet::from_entries(space, &[1, 4, 6]).unwrap();
        let other = KeySet::from_entries(space, &[0, 2, 5]).unwrap();
        let mut src = ProbClock::new(space);
        src.record_delivery(&other);
        src.record_delivery(&other);
        let _ = src.stamp_send(&sender);
        let ts = src.stamp_send(&sender);

        let mut rx = ProbClock::new(space);
        let mut last_entry = 0usize;
        for _ in 0..6 {
            match rx.deliverability_gap_from(&ts, &sender, last_entry) {
                Gap::Ready => break,
                Gap::Blocked { entry, .. } => {
                    assert!(entry >= last_entry, "gap moved backwards");
                    last_entry = entry;
                    rx.record_delivery(&other);
                    rx.record_delivery(&sender);
                }
                Gap::Never => unreachable!("prob guard never yields Never"),
            }
        }
        assert_eq!(rx.deliverability_gap(&ts, &sender), Gap::Ready);
    }

    #[test]
    fn blocked_entries_lists_every_violation() {
        let space = space4x2();
        let f = keys(&[1, 2]);
        let mut sender = ProbClock::new(space);
        let _ = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f); // [0,2,2,0]

        let rx = ProbClock::new(space);
        assert_eq!(rx.blocked_entries(&ts2, &f), vec![(1, 1), (2, 1)]);
        assert!(
            rx.blocked_entries(&ts2, &f)
                .first()
                .map(|&(e, r)| rx.deliverability_gap(&ts2, &f)
                    == Gap::Blocked { entry: e, required: r })
                .unwrap_or(false)
        );
    }

    #[test]
    fn from_vector_restores_state() {
        let ts = Timestamp::from_entries(vec![3, 1, 4]);
        let clock = ProbClock::from_vector(ts.clone());
        assert_eq!(clock.vector(), &ts);
        assert_eq!(clock.len(), 3);
    }

    #[test]
    fn reset_to_overwrites() {
        let mut clock = ProbClock::with_len(3);
        clock.reset_to(Timestamp::from_entries(vec![9, 9, 9]));
        assert_eq!(clock.vector().entries(), &[9, 9, 9]);
    }
}
