//! The probabilistic `(R, K)` clock — the paper's core contribution.
//!
//! A [`ProbClock`] holds the local vector `V_i` of `R` counters and
//! implements the three primitives of §4.1.2:
//!
//! * [`ProbClock::stamp_send`] — Algorithm 1: increment every entry in
//!   `f(p_i)`, attach a copy of the vector to the message;
//! * [`ProbClock::is_deliverable`] — the wait-condition of Algorithm 2:
//!   sender entries `V_i[x] >= m.V[x] - 1`, all others `V_i[k] >= m.V[k]`;
//! * [`ProbClock::record_delivery`] — the post-condition of Algorithm 2:
//!   increment every entry in `f(p_j)` (increment, **not** merge — with
//!   shared entries the two differ, see the ablation benches).
//!
//! The coverage test of Algorithm 4 ([`ProbClock::is_covered`]) is also
//! here because it reads only the local vector.

use serde::{Deserialize, Serialize};

use crate::{KeySet, Timestamp};

/// Local state of the probabilistic causal ordering mechanism for one
/// process: the `R`-entry counter vector `V_i`.
///
/// ```
/// use pcb_clock::{KeySet, KeySpace, ProbClock};
/// let space = KeySpace::new(4, 2)?;
/// let f_i = KeySet::from_entries(space, &[0, 1])?;
/// let mut clock = ProbClock::new(space);
/// let ts = clock.stamp_send(&f_i);
/// assert_eq!(ts.entries(), &[1, 1, 0, 0]); // paper Figure 1
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbClock {
    vector: Timestamp,
}

impl ProbClock {
    /// A fresh clock (all entries zero) for the given space.
    #[must_use]
    pub fn new(space: crate::KeySpace) -> Self {
        Self { vector: Timestamp::zero(space.r()) }
    }

    /// A fresh clock with an explicit vector length.
    #[must_use]
    pub fn with_len(r: usize) -> Self {
        Self { vector: Timestamp::zero(r) }
    }

    /// Restores a clock from a previously captured vector (recovery,
    /// state transfer to a joining process).
    #[must_use]
    pub fn from_vector(vector: Timestamp) -> Self {
        Self { vector }
    }

    /// Vector length `R`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vector.len()
    }

    /// Whether the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vector.is_empty()
    }

    /// Read-only view of the local vector `V_i`.
    #[must_use]
    pub fn vector(&self) -> &Timestamp {
        &self.vector
    }

    /// **Algorithm 1.** Increments the caller's own entries `f(p_i)` and
    /// returns the timestamp to attach to the outgoing message.
    ///
    /// # Panics
    ///
    /// Panics if `own_keys` indexes outside the vector (mismatched space).
    pub fn stamp_send(&mut self, own_keys: &KeySet) -> Timestamp {
        for entry in own_keys.iter() {
            self.vector.entries_mut()[entry] += 1;
        }
        self.vector.clone()
    }

    /// **Algorithm 2 (guard).** Whether a message timestamped `ts` from a
    /// sender with keys `sender_keys` is causally ready:
    ///
    /// * for `x ∈ f(p_j)`: `V_i[x] >= ts[x] - 1` (all of the sender's own
    ///   earlier messages are reflected locally), and
    /// * for `x ∉ f(p_j)`: `V_i[x] >= ts[x]` (everything the sender had
    ///   delivered before sending is reflected locally).
    ///
    /// # Panics
    ///
    /// Panics if `ts` has a different length than the local vector.
    #[must_use]
    pub fn is_deliverable(&self, ts: &Timestamp, sender_keys: &KeySet) -> bool {
        assert_eq!(self.vector.len(), ts.len(), "timestamp length mismatch");
        let local = self.vector.entries();
        let remote = ts.entries();
        // Scan all R entries with the sender-key exemption applied via a
        // merged walk over the sorted key set.
        let mut keys = sender_keys.iter().peekable();
        for (index, (&mine, &theirs)) in local.iter().zip(remote).enumerate() {
            let is_sender_entry = keys.next_if(|&k| k == index).is_some();
            let required = if is_sender_entry { theirs.saturating_sub(1) } else { theirs };
            if mine < required {
                return false;
            }
        }
        true
    }

    /// **Algorithm 2 (post).** Records a delivery from a sender with keys
    /// `sender_keys` by incrementing those entries in the local vector.
    ///
    /// # Panics
    ///
    /// Panics if `sender_keys` indexes outside the vector.
    pub fn record_delivery(&mut self, sender_keys: &KeySet) {
        for entry in sender_keys.iter() {
            self.vector.entries_mut()[entry] += 1;
        }
    }

    /// **Algorithm 4 predicate.** Whether every sender entry of `ts` is
    /// already matched locally (`∀x ∈ f(p_j): V_i[x] >= ts[x]`), i.e. no
    /// entry satisfies the "exactly one behind" relation `V_i[x] = ts[x]-1`.
    ///
    /// When this returns `true` at delivery time, concurrent messages have
    /// covered all of the sender's entries and the delivery *may* be a
    /// causal-order violation; `false` guarantees it is not.
    ///
    /// # Panics
    ///
    /// Panics if `ts` is shorter than the largest sender key.
    #[must_use]
    pub fn is_covered(&self, ts: &Timestamp, sender_keys: &KeySet) -> bool {
        sender_keys.iter().all(|x| self.vector[x] >= ts[x])
    }

    /// Overwrites the local vector (anti-entropy / recovery hook).
    pub fn reset_to(&mut self, vector: Timestamp) {
        self.vector = vector;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeySpace, Timestamp};

    fn space4x2() -> crate::KeySpace {
        KeySpace::new(4, 2).unwrap()
    }

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(space4x2(), entries).unwrap()
    }

    #[test]
    fn figure1_nominal_scenario() {
        // Paper Figure 1: R = 4, K = 2, f(p_i) = {0,1}, f(p_j) = {1,2}.
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);

        let mut pi = ProbClock::new(space4x2());
        let mut pj = ProbClock::new(space4x2());
        let mut pk = ProbClock::new(space4x2());

        // p_i broadcasts m.
        let m = pi.stamp_send(&f_i);
        assert_eq!(m.entries(), &[1, 1, 0, 0]);

        // p_j receives m first: deliverable, vector becomes [1,1,0,0].
        assert!(pj.is_deliverable(&m, &f_i));
        pj.record_delivery(&f_i);
        assert_eq!(pj.vector().entries(), &[1, 1, 0, 0]);

        // p_j broadcasts m' -> [1,2,1,0].
        let m_prime = pj.stamp_send(&f_j);
        assert_eq!(m_prime.entries(), &[1, 2, 1, 0]);

        // p_k receives m' before m: delayed.
        assert!(!pk.is_deliverable(&m_prime, &f_j));

        // m arrives: deliverable; after it, m' becomes deliverable.
        assert!(pk.is_deliverable(&m, &f_i));
        pk.record_delivery(&f_i);
        assert_eq!(pk.vector().entries(), &[1, 1, 0, 0]);
        assert!(pk.is_deliverable(&m_prime, &f_j));
        pk.record_delivery(&f_j);
        assert_eq!(pk.vector().entries(), &[1, 2, 1, 0]);
    }

    #[test]
    fn figure2_delivery_error_scenario() {
        // Figure 2 adds p_1 (f = {0,3}) and p_2 (f = {1,3}) whose
        // concurrent messages cover f(p_i) = {0,1} and let m' slip past m.
        let f_i = keys(&[0, 1]);
        let f_j = keys(&[1, 2]);
        let f_1 = keys(&[0, 3]);
        let f_2 = keys(&[1, 3]);

        let mut pi = ProbClock::new(space4x2());
        let mut pj = ProbClock::new(space4x2());
        let mut p1 = ProbClock::new(space4x2());
        let mut p2 = ProbClock::new(space4x2());
        let mut pk = ProbClock::new(space4x2());

        let m = pi.stamp_send(&f_i);
        pj.record_delivery(&f_i); // p_j delivered m
        let m_prime = pj.stamp_send(&f_j);
        let m1 = p1.stamp_send(&f_1);
        let m2 = p2.stamp_send(&f_2);

        // p_k receives m2 then m1 (both concurrent with m).
        assert!(pk.is_deliverable(&m2, &f_2));
        pk.record_delivery(&f_2);
        assert!(pk.is_deliverable(&m1, &f_1));
        pk.record_delivery(&f_1);
        assert_eq!(pk.vector().entries(), &[1, 1, 0, 2]);

        // m' now (wrongly) looks deliverable although m was never received.
        assert!(pk.is_deliverable(&m_prime, &f_j));

        // Algorithm 4 raises the alert: all f(p_j) entries of m' are NOT
        // exactly-one-behind... the alert fires when every sender entry is
        // already matched. Here V_k[1]=1 = m'.V[1]-1, so no alert for m'
        // itself; the alert fires for the *late* message m when it arrives.
        pk.record_delivery(&f_j);
        assert!(pk.is_covered(&m, &f_i), "late m arrives fully covered -> alert");
    }

    #[test]
    fn initial_message_deliverable_everywhere() {
        // Lemma 1 base case H0: messages stamped from the initial state
        // are deliverable by any fresh process.
        let space = KeySpace::new(8, 3).unwrap();
        for id in 0..space.combination_count().min(56) {
            let k = KeySet::from_set_id(space, id).unwrap();
            let mut sender = ProbClock::new(space);
            let ts = sender.stamp_send(&k);
            let receiver = ProbClock::new(space);
            assert!(receiver.is_deliverable(&ts, &k));
        }
    }

    #[test]
    fn second_message_blocked_until_first_delivered() {
        let space = space4x2();
        let f = keys(&[1, 2]);
        let mut sender = ProbClock::new(space);
        let ts1 = sender.stamp_send(&f);
        let ts2 = sender.stamp_send(&f);

        let mut receiver = ProbClock::new(space);
        assert!(!receiver.is_deliverable(&ts2, &f), "FIFO gap must block");
        assert!(receiver.is_deliverable(&ts1, &f));
        receiver.record_delivery(&f);
        assert!(receiver.is_deliverable(&ts2, &f));
    }

    #[test]
    fn causally_ready_message_never_delayed() {
        // Corollary 1: if everything in the causal past is delivered, the
        // message is immediately deliverable.
        let space = KeySpace::new(6, 2).unwrap();
        let fa = KeySet::from_entries(space, &[0, 1]).unwrap();
        let fb = KeySet::from_entries(space, &[2, 3]).unwrap();
        let mut a = ProbClock::new(space);
        let mut b = ProbClock::new(space);
        let mut c = ProbClock::new(space);

        let m1 = a.stamp_send(&fa);
        b.record_delivery(&fa);
        let m2 = b.stamp_send(&fb);

        assert!(c.is_deliverable(&m1, &fa));
        c.record_delivery(&fa);
        assert!(c.is_deliverable(&m2, &fb), "causal past delivered => ready");
    }

    #[test]
    fn is_covered_detects_exact_match() {
        let space = space4x2();
        let f = keys(&[0, 1]);
        let mut sender = ProbClock::new(space);
        let ts = sender.stamp_send(&f);

        let mut receiver = ProbClock::new(space);
        assert!(!receiver.is_covered(&ts, &f), "fresh receiver is one behind");
        receiver.record_delivery(&f);
        assert!(receiver.is_covered(&ts, &f), "after delivery, entries match");
    }

    #[test]
    fn lamport_configuration_degenerates() {
        // (R, K) = (1, 1): every send bumps the same counter, so a second
        // message from anyone is blocked until the first is delivered.
        let space = KeySpace::lamport();
        let f = KeySet::from_set_id(space, 0).unwrap();
        let mut a = ProbClock::new(space);
        let m1 = a.stamp_send(&f);
        let m2 = a.stamp_send(&f);
        let mut rx = ProbClock::new(space);
        assert!(rx.is_deliverable(&m1, &f));
        assert!(!rx.is_deliverable(&m2, &f));
        rx.record_delivery(&f);
        assert!(rx.is_deliverable(&m2, &f));
    }

    #[test]
    fn vector_configuration_is_exact() {
        // (R, K) = (N, 1) with distinct entries: no covering is possible,
        // so the Figure-2 interleaving cannot produce a wrong delivery.
        let n = 5;
        let space = KeySpace::vector(n).unwrap();
        let f: Vec<KeySet> =
            (0..n).map(|i| KeySet::singleton(space, i).unwrap()).collect();

        let mut pi = ProbClock::new(space);
        let mut pj = ProbClock::new(space);
        let mut p1 = ProbClock::new(space);
        let mut p2 = ProbClock::new(space);
        let mut pk = ProbClock::new(space);

        let m = pi.stamp_send(&f[0]);
        pj.record_delivery(&f[0]);
        let m_prime = pj.stamp_send(&f[1]);
        let m1 = p1.stamp_send(&f[2]);
        let m2 = p2.stamp_send(&f[3]);

        pk.record_delivery(&f[3]);
        let _ = m2;
        pk.record_delivery(&f[2]);
        let _ = m1;
        assert!(
            !pk.is_deliverable(&m_prime, &f[1]),
            "vector configuration must block m' until m is delivered"
        );
        assert!(pk.is_deliverable(&m, &f[0]));
    }

    #[test]
    fn from_vector_restores_state() {
        let ts = Timestamp::from_entries(vec![3, 1, 4]);
        let clock = ProbClock::from_vector(ts.clone());
        assert_eq!(clock.vector(), &ts);
        assert_eq!(clock.len(), 3);
    }

    #[test]
    fn reset_to_overwrites() {
        let mut clock = ProbClock::with_len(3);
        clock.reset_to(Timestamp::from_entries(vec![9, 9, 9]));
        assert_eq!(clock.vector().entries(), &[9, 9, 9]);
    }
}
