//! Combinatorial machinery behind key-set generation (paper §4.1.3, Algorithm 3).
//!
//! A process derives its `K` clock entries from a single integer *set id*
//! in `[0, C(R, K))` by **unranking**: mapping the id to the `set_id`-th
//! `K`-combination of `{0, …, R-1}` in lexicographic order. This module
//! provides checked binomial coefficients, a precomputed Pascal table, the
//! unranking function (the paper's Algorithm 3) and its inverse (ranking),
//! plus an iterator over all combinations used by tests and ablations.

use std::fmt;

/// Errors produced by combinatorial operations.
///
/// ```
/// use pcb_clock::combinatorics::{unrank, CombinatoricsError};
/// assert_eq!(unrank(0, 3, 5), Err(CombinatoricsError::KExceedsR { k: 5, r: 3 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombinatoricsError {
    /// Requested `k` items out of `r` with `k > r`.
    KExceedsR {
        /// Requested subset size.
        k: usize,
        /// Universe size.
        r: usize,
    },
    /// The rank (set id) is outside `[0, C(r, k))`.
    RankOutOfRange {
        /// Offending rank.
        rank: u128,
        /// Number of `k`-combinations of the universe, `C(r, k)`.
        total: u128,
    },
    /// An intermediate binomial coefficient overflowed `u128`.
    Overflow,
    /// The input slice is not a strictly increasing combination over `0..r`.
    MalformedCombination,
}

impl fmt::Display for CombinatoricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::KExceedsR { k, r } => {
                write!(f, "cannot choose {k} entries from a universe of {r}")
            }
            Self::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} is outside [0, {total})")
            }
            Self::Overflow => write!(f, "binomial coefficient overflowed u128"),
            Self::MalformedCombination => {
                write!(f, "combination is not strictly increasing within its universe")
            }
        }
    }
}

impl std::error::Error for CombinatoricsError {}

/// Computes the binomial coefficient `C(n, k)` exactly, returning `None` on
/// `u128` overflow.
///
/// Uses the multiplicative formula with an interleaved division (always
/// exact, because every prefix product is itself a binomial coefficient).
///
/// ```
/// use pcb_clock::combinatorics::binomial;
/// assert_eq!(binomial(100, 4), Some(3_921_225));
/// assert_eq!(binomial(5, 0), Some(1));
/// assert_eq!(binomial(3, 5), Some(0));
/// ```
#[must_use]
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Exact: C(n, i+1) = C(n, i) * (n - i) / (i + 1). Cancel the gcd
        // before multiplying so intermediates stay as small as possible.
        let mut numerator = u128::from(n - i);
        let mut denominator = u128::from(i + 1);
        let g = gcd(acc, denominator);
        acc /= g;
        denominator /= g;
        let g = gcd(numerator, denominator);
        numerator /= g;
        denominator /= g;
        debug_assert_eq!(denominator, 1, "binomial division must be exact");
        acc = acc.checked_mul(numerator)?;
    }
    Some(acc)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Precomputed Pascal triangle, used on hot paths (message-rate unranking)
/// to avoid recomputing coefficients.
///
/// Entries that would overflow `u128` saturate to `u128::MAX`; ranks are
/// validated against exact values before the table is consulted, so
/// saturation never corrupts an unranking within the valid range.
///
/// ```
/// use pcb_clock::combinatorics::BinomialTable;
/// let table = BinomialTable::new(100);
/// assert_eq!(table.get(100, 4), 3_921_225);
/// ```
#[derive(Debug, Clone)]
pub struct BinomialTable {
    max_n: usize,
    rows: Vec<u128>,
}

impl BinomialTable {
    /// Builds the triangle for all `C(n, k)` with `n <= max_n`.
    #[must_use]
    pub fn new(max_n: usize) -> Self {
        let mut rows = vec![0u128; (max_n + 1) * (max_n + 1)];
        for n in 0..=max_n {
            rows[n * (max_n + 1)] = 1;
            for k in 1..=n {
                let above = rows[(n - 1) * (max_n + 1) + k];
                let above_left = rows[(n - 1) * (max_n + 1) + k - 1];
                rows[n * (max_n + 1) + k] = above.saturating_add(above_left);
            }
        }
        Self { max_n, rows }
    }

    /// Largest `n` this table covers.
    #[must_use]
    pub fn max_n(&self) -> usize {
        self.max_n
    }

    /// Looks up `C(n, k)`, saturating at `u128::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.max_n()`.
    #[must_use]
    pub fn get(&self, n: usize, k: usize) -> u128 {
        assert!(n <= self.max_n, "binomial table built for n <= {}, got {n}", self.max_n);
        if k > n {
            0
        } else {
            self.rows[n * (self.max_n + 1) + k]
        }
    }
}

thread_local! {
    // rank/unrank are called per message on hot paths (wire decode, key
    // assignment); cache the Pascal table per thread, growing as needed.
    static TABLE_CACHE: std::cell::RefCell<Option<BinomialTable>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with a thread-cached [`BinomialTable`] covering at least `r`.
fn with_cached_table<T>(r: usize, f: impl FnOnce(&BinomialTable) -> T) -> T {
    TABLE_CACHE.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.as_ref().is_none_or(|t| t.max_n() < r) {
            *slot = Some(BinomialTable::new(r));
        }
        f(slot.as_ref().expect("just ensured"))
    })
}

/// Maps a set id to the `rank`-th `k`-combination of `{0, …, r-1}` in
/// lexicographic order (the paper's **Algorithm 3**).
///
/// The returned vector is strictly increasing and has length `k`. Uses a
/// per-thread Pascal-table cache; for explicit table control see
/// [`unrank_with`].
///
/// # Errors
///
/// Returns [`CombinatoricsError::KExceedsR`] if `k > r` and
/// [`CombinatoricsError::RankOutOfRange`] if `rank >= C(r, k)`.
///
/// ```
/// use pcb_clock::combinatorics::unrank;
/// assert_eq!(unrank(0, 4, 2)?, vec![0, 1]);
/// assert_eq!(unrank(5, 4, 2)?, vec![2, 3]);
/// # Ok::<(), pcb_clock::combinatorics::CombinatoricsError>(())
/// ```
pub fn unrank(rank: u128, r: usize, k: usize) -> Result<Vec<usize>, CombinatoricsError> {
    with_cached_table(r, |table| unrank_with(table, rank, r, k))
}

/// [`unrank`] against a caller-provided [`BinomialTable`] (hot-path variant).
///
/// # Errors
///
/// Same as [`unrank`]; additionally the table must cover `n = r`.
pub fn unrank_with(
    table: &BinomialTable,
    rank: u128,
    r: usize,
    k: usize,
) -> Result<Vec<usize>, CombinatoricsError> {
    if k > r {
        return Err(CombinatoricsError::KExceedsR { k, r });
    }
    let total = table.get(r, k);
    if rank >= total {
        return Err(CombinatoricsError::RankOutOfRange { rank, total });
    }
    let mut combo = Vec::with_capacity(k);
    let mut remaining = rank;
    let mut candidate = 0usize;
    for position in 0..k {
        // Count combinations that fix `candidate` at this position; skip
        // candidates whose block the rank jumps over.
        loop {
            let block = table.get(r - 1 - candidate, k - 1 - position);
            if remaining < block {
                break;
            }
            remaining -= block;
            candidate += 1;
        }
        combo.push(candidate);
        candidate += 1;
    }
    Ok(combo)
}

/// Inverse of [`unrank`]: the lexicographic rank of `combo` among the
/// `k`-combinations of `{0, …, r-1}`.
///
/// # Errors
///
/// Returns [`CombinatoricsError::MalformedCombination`] if `combo` is not
/// strictly increasing or contains an element `>= r`.
///
/// ```
/// use pcb_clock::combinatorics::{rank, unrank};
/// let combo = unrank(1234, 100, 4)?;
/// assert_eq!(rank(&combo, 100)?, 1234);
/// # Ok::<(), pcb_clock::combinatorics::CombinatoricsError>(())
/// ```
pub fn rank(combo: &[usize], r: usize) -> Result<u128, CombinatoricsError> {
    with_cached_table(r, |table| rank_with(table, combo, r))
}

/// [`rank`] against a caller-provided [`BinomialTable`].
///
/// # Errors
///
/// Same as [`rank`].
pub fn rank_with(
    table: &BinomialTable,
    combo: &[usize],
    r: usize,
) -> Result<u128, CombinatoricsError> {
    let k = combo.len();
    if k > r {
        return Err(CombinatoricsError::KExceedsR { k, r });
    }
    let mut acc: u128 = 0;
    let mut prev: Option<usize> = None;
    for (position, &value) in combo.iter().enumerate() {
        if value >= r || prev.is_some_and(|p| value <= p) {
            return Err(CombinatoricsError::MalformedCombination);
        }
        let start = prev.map_or(0, |p| p + 1);
        for skipped in start..value {
            acc = acc
                .checked_add(table.get(r - 1 - skipped, k - 1 - position))
                .ok_or(CombinatoricsError::Overflow)?;
        }
        prev = Some(value);
    }
    Ok(acc)
}

/// Iterator over all `k`-combinations of `{0, …, r-1}` in lexicographic
/// order. Used by exhaustive tests and by the maximally-spread assignment
/// ablation.
///
/// ```
/// use pcb_clock::combinatorics::Combinations;
/// let all: Vec<_> = Combinations::new(3, 2).collect();
/// assert_eq!(all, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
/// ```
#[derive(Debug, Clone)]
pub struct Combinations {
    r: usize,
    k: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    /// Creates the iterator; yields nothing when `k > r`.
    #[must_use]
    pub fn new(r: usize, k: usize) -> Self {
        let state = if k <= r { Some((0..k).collect()) } else { None };
        Self { r, k, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.state.clone()?;
        // Advance: find the rightmost index that can still move right.
        let mut next = current.clone();
        let mut i = self.k;
        loop {
            if i == 0 {
                self.state = None;
                break;
            }
            i -= 1;
            if next[i] + (self.k - i) < self.r {
                next[i] += 1;
                for j in i + 1..self.k {
                    next[j] = next[j - 1] + 1;
                }
                self.state = Some(next);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basic_values() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(1, 0), Some(1));
        assert_eq!(binomial(1, 1), Some(1));
        assert_eq!(binomial(10, 3), Some(120));
        assert_eq!(binomial(52, 5), Some(2_598_960));
        assert_eq!(binomial(100, 4), Some(3_921_225));
    }

    #[test]
    fn binomial_k_greater_than_n_is_zero() {
        assert_eq!(binomial(3, 4), Some(0));
        assert_eq!(binomial(0, 1), Some(0));
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k).unwrap();
                let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn binomial_large_exact() {
        // C(128, 64) fits u128.
        assert!(binomial(128, 64).is_some());
        // C(200, 100) overflows u128.
        assert_eq!(binomial(200, 100), None);
    }

    #[test]
    fn table_matches_exact() {
        let table = BinomialTable::new(64);
        for n in 0..=64usize {
            for k in 0..=n {
                assert_eq!(table.get(n, k), binomial(n as u64, k as u64).unwrap());
            }
        }
    }

    #[test]
    fn table_k_above_n_is_zero() {
        let table = BinomialTable::new(8);
        assert_eq!(table.get(3, 7), 0);
    }

    #[test]
    #[should_panic(expected = "binomial table built for")]
    fn table_panics_beyond_max_n() {
        let table = BinomialTable::new(4);
        let _ = table.get(5, 1);
    }

    #[test]
    fn unrank_first_and_last() {
        assert_eq!(unrank(0, 5, 3).unwrap(), vec![0, 1, 2]);
        let total = binomial(5, 3).unwrap();
        assert_eq!(unrank(total - 1, 5, 3).unwrap(), vec![2, 3, 4]);
    }

    #[test]
    fn unrank_enumerates_lexicographically() {
        let r = 7;
        let k = 3;
        let total = binomial(r as u64, k as u64).unwrap();
        let mut seen = Vec::new();
        for id in 0..total {
            seen.push(unrank(id, r, k).unwrap());
        }
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "unranking must follow lexicographic order");
        sorted.dedup();
        assert_eq!(sorted.len() as u128, total, "all combinations distinct");
    }

    #[test]
    fn unrank_matches_iterator() {
        let r = 6;
        let k = 4;
        for (id, combo) in Combinations::new(r, k).enumerate() {
            assert_eq!(unrank(id as u128, r, k).unwrap(), combo);
        }
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        let total = binomial(4, 2).unwrap();
        assert_eq!(
            unrank(total, 4, 2),
            Err(CombinatoricsError::RankOutOfRange { rank: total, total })
        );
    }

    #[test]
    fn unrank_k_zero_is_empty() {
        assert_eq!(unrank(0, 4, 0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn unrank_k_equals_r() {
        assert_eq!(unrank(0, 4, 4).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rank_is_inverse_of_unrank_exhaustive() {
        for r in 1..=8usize {
            for k in 0..=r {
                let total = binomial(r as u64, k as u64).unwrap();
                for id in 0..total {
                    let combo = unrank(id, r, k).unwrap();
                    assert_eq!(rank(&combo, r).unwrap(), id, "r={r} k={k}");
                }
            }
        }
    }

    #[test]
    fn rank_rejects_malformed() {
        assert_eq!(rank(&[1, 1], 4), Err(CombinatoricsError::MalformedCombination));
        assert_eq!(rank(&[2, 1], 4), Err(CombinatoricsError::MalformedCombination));
        assert_eq!(rank(&[0, 4], 4), Err(CombinatoricsError::MalformedCombination));
    }

    #[test]
    fn paper_scale_roundtrip() {
        // The paper's configuration: R = 100, K = 4.
        let table = BinomialTable::new(100);
        let total = table.get(100, 4);
        assert_eq!(total, 3_921_225);
        for id in [0u128, 1, 17, 500_000, 3_921_224] {
            let combo = unrank_with(&table, id, 100, 4).unwrap();
            assert_eq!(combo.len(), 4);
            assert!(combo.windows(2).all(|w| w[0] < w[1]));
            assert!(combo.iter().all(|&e| e < 100));
            assert_eq!(rank_with(&table, &combo, 100).unwrap(), id);
        }
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(Combinations::new(6, 3).count() as u128, binomial(6, 3).unwrap());
        assert_eq!(Combinations::new(3, 5).count(), 0);
        assert_eq!(Combinations::new(4, 0).count(), 1);
    }
}
