//! Logical-clock substrate for **probabilistic causal message ordering**
//! (Mostefaoui & Weiss, PaCT 2017).
//!
//! The paper situates clocks in a design space `(N, R, K)`: `N` processes,
//! a timestamp of `R` integer entries, `K` entries assigned to each
//! process. This crate provides every point of that space:
//!
//! | Clock | `(N, R, K)` | Type |
//! |---|---|---|
//! | Lamport | `(N, 1, 1)` | [`LamportClock`] or [`ProbClock`] with [`KeySpace::lamport`] |
//! | Plausible (Torres-Rojas & Ahamad) | `(N, R, 1)` | [`ProbClock`] with [`KeySpace::plausible`] |
//! | Vector (Fidge/Mattern) | `(N, N, 1)` | [`VectorClock`], or [`ProbClock`] with [`KeySpace::vector`] |
//! | **Probabilistic (this paper)** | `(N, R, K)` | [`ProbClock`] with a general [`KeySpace`] |
//!
//! # Quick example
//!
//! ```
//! use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace, ProbClock};
//!
//! // The paper's configuration: 100-entry vectors, 4 entries per process.
//! let space = KeySpace::new(100, 4)?;
//! let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 1);
//! let alice_keys = assigner.next_set()?;
//! let bob_keys = assigner.next_set()?;
//!
//! let mut alice = ProbClock::new(space);
//! let mut bob = ProbClock::new(space);
//!
//! let stamp = alice.stamp_send(&alice_keys);      // Algorithm 1
//! assert!(bob.is_deliverable(&stamp, &alice_keys)); // Algorithm 2 guard
//! bob.record_delivery(&alice_keys);                 // Algorithm 2 post
//! let _ = bob_keys;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod combinatorics;
pub mod compare;
pub mod id;
pub mod keys;
pub mod lamport;
pub mod prob;
pub mod timestamp;
pub mod vector;

pub use assignment::{entry_load, AssignmentError, AssignmentPolicy, KeyAssigner};
pub use combinatorics::{binomial, rank, unrank, BinomialTable, CombinatoricsError};
pub use compare::{judge, JudgmentQuality};
pub use id::ProcessId;
pub use keys::{KeyError, KeySet, KeySpace, ShardMap};
pub use lamport::LamportClock;
pub use prob::{Gap, ProbClock};
pub use timestamp::Timestamp;
pub use vector::{CausalRelation, VectorClock};
