//! The `R`-entry integer timestamps carried by messages (`m.V`).

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The vector of integer counters attached to every broadcast message.
///
/// Unlike a classical vector clock, entries do not map one-to-one to
/// processes: with the probabilistic clock, each entry is shared by many
/// processes and each process owns several entries.
///
/// Entries live behind an `Arc` with copy-on-write semantics: cloning a
/// timestamp (attaching it to a message, fanning it out to N receivers)
/// is a reference-count bump, and the single mutation site per send
/// (`ProbClock::stamp_send` / `record_delivery`) pays the O(R) copy only
/// when the vector is actually shared.
///
/// ```
/// use pcb_clock::Timestamp;
/// let ts = Timestamp::from_entries(vec![1, 2, 0, 0]);
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts[1], 2);
/// assert_eq!(ts.to_string(), "[1,2,0,0]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Timestamp {
    entries: Arc<Vec<u64>>,
}

impl Timestamp {
    /// An all-zero timestamp of length `r` (the initial-state vector).
    #[must_use]
    pub fn zero(r: usize) -> Self {
        Self { entries: Arc::new(vec![0; r]) }
    }

    /// Wraps raw entries.
    #[must_use]
    pub fn from_entries(entries: Vec<u64>) -> Self {
        Self { entries: Arc::new(entries) }
    }

    /// Whether `self` and `other` share one entry allocation — true after
    /// a clone until either side mutates. Exposed for sharing assertions.
    #[must_use]
    pub fn shares_storage_with(&self, other: &Timestamp) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Number of entries, `R`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries (degenerate, `R = 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Immutable view of the entries.
    #[must_use]
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Entry accessor with bounds checking.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<u64> {
        self.entries.get(index).copied()
    }

    /// Sum of all entries — total send events reflected in the stamp.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Component-wise `self >= other` (vector dominance).
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths — mixing clock
    /// configurations is a programming error.
    #[must_use]
    pub fn dominates(&self, other: &Timestamp) -> bool {
        assert_eq!(self.len(), other.len(), "timestamp length mismatch");
        self.entries.iter().zip(other.entries.iter()).all(|(a, b)| a >= b)
    }

    /// Component-wise maximum, in place. Used by the merge-variant ablation
    /// and by the simulator's ε-estimator oracle, *not* by the paper's
    /// delivery rule (which increments, see `ProbClock::record_delivery`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn merge_max(&mut self, other: &Timestamp) {
        assert_eq!(self.len(), other.len(), "timestamp length mismatch");
        for (a, b) in self.entries_mut().iter_mut().zip(other.entries.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Serialized wire size in bytes (entries as fixed 8-byte integers) —
    /// the control-information overhead the paper sets out to shrink.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.entries.len() * std::mem::size_of::<u64>()
    }

    pub(crate) fn entries_mut(&mut self) -> &mut [u64] {
        // Copy-on-write: unshare only if another handle still points at
        // this allocation (the one O(R) copy per Algorithm 1 mutation).
        Arc::make_mut(&mut self.entries).as_mut_slice()
    }
}

impl Index<usize> for Timestamp {
    type Output = u64;

    fn index(&self, index: usize) -> &u64 {
        &self.entries[index]
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u64> for Timestamp {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self { entries: Arc::new(iter.into_iter().collect()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_all_zero() {
        let ts = Timestamp::zero(4);
        assert_eq!(ts.entries(), &[0, 0, 0, 0]);
        assert_eq!(ts.total(), 0);
        assert!(!ts.is_empty());
        assert!(Timestamp::zero(0).is_empty());
    }

    #[test]
    fn dominance() {
        let a = Timestamp::from_entries(vec![2, 1, 3]);
        let b = Timestamp::from_entries(vec![1, 1, 3]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    #[should_panic(expected = "timestamp length mismatch")]
    fn dominance_length_mismatch_panics() {
        let a = Timestamp::zero(2);
        let b = Timestamp::zero(3);
        let _ = a.dominates(&b);
    }

    #[test]
    fn merge_max_componentwise() {
        let mut a = Timestamp::from_entries(vec![2, 0, 3]);
        let b = Timestamp::from_entries(vec![1, 5, 3]);
        a.merge_max(&b);
        assert_eq!(a.entries(), &[2, 5, 3]);
    }

    #[test]
    fn clone_shares_until_mutation() {
        let a = Timestamp::from_entries(vec![1, 2, 3]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b), "clone is a refcount bump");
        b.entries_mut()[0] = 9;
        assert!(!a.shares_storage_with(&b), "mutation unshares");
        assert_eq!(a.entries(), &[1, 2, 3]);
        assert_eq!(b.entries(), &[9, 2, 3]);
    }

    #[test]
    fn accessors() {
        let ts: Timestamp = [4u64, 5, 6].into_iter().collect();
        assert_eq!(ts.get(1), Some(5));
        assert_eq!(ts.get(3), None);
        assert_eq!(ts[2], 6);
        assert_eq!(ts.total(), 15);
        assert_eq!(ts.wire_size(), 24);
    }
}
