//! Lamport scalar clocks — the `(N, 1, 1)` extreme of the design space.
//!
//! Provided both as a standalone scalar implementation (for comparison
//! benches and teaching examples) and, equivalently, as the `(R, K) =
//! (1, 1)` instantiation of [`crate::ProbClock`]; the equivalence is
//! checked by tests here.

use serde::{Deserialize, Serialize};

/// A scalar logical clock (Lamport 1978).
///
/// ```
/// use pcb_clock::LamportClock;
/// let mut a = LamportClock::new();
/// let t1 = a.tick();
/// let mut b = LamportClock::new();
/// b.observe(t1);
/// assert!(b.tick() > t1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LamportClock {
    counter: u64,
}

impl LamportClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value without advancing.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.counter
    }

    /// Advances for a local or send event and returns the new stamp.
    pub fn tick(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    /// Incorporates a received stamp: `C := max(C, received)`; callers
    /// conventionally `tick()` afterwards for the delivery event.
    pub fn observe(&mut self, received: u64) {
        self.counter = self.counter.max(received);
    }

    /// Receive-and-tick convenience: `C := max(C, received) + 1`.
    pub fn observe_and_tick(&mut self, received: u64) -> u64 {
        self.observe(received);
        self.tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeySet, KeySpace, ProbClock};

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn observe_takes_max() {
        let mut c = LamportClock::new();
        c.tick();
        c.observe(10);
        assert_eq!(c.current(), 10);
        c.observe(3);
        assert_eq!(c.current(), 10);
        assert_eq!(c.observe_and_tick(12), 13);
    }

    #[test]
    fn happened_before_implies_smaller_stamp() {
        // Classic property: e1 -> e2 implies C(e1) < C(e2).
        let mut a = LamportClock::new();
        let send = a.tick();
        let mut b = LamportClock::new();
        for _ in 0..5 {
            b.tick();
        }
        let deliver = b.observe_and_tick(send);
        assert!(send < deliver);
    }

    #[test]
    fn prob_clock_r1_k1_matches_scalar_semantics() {
        // The (1,1) ProbClock blocks message t until t-1 sends have been
        // locally recorded — a scalar "global sequence" discipline, which
        // is what the paper means by the Lamport extreme.
        let space = KeySpace::lamport();
        let key = KeySet::from_set_id(space, 0).unwrap();
        let mut sender = ProbClock::new(space);
        let stamps: Vec<_> = (0..3).map(|_| sender.stamp_send(&key)).collect();

        let mut rx = ProbClock::new(space);
        assert!(rx.is_deliverable(&stamps[0], &key));
        assert!(!rx.is_deliverable(&stamps[1], &key));
        rx.record_delivery(&key);
        assert!(rx.is_deliverable(&stamps[1], &key));
        rx.record_delivery(&key);
        assert!(rx.is_deliverable(&stamps[2], &key));
    }
}
