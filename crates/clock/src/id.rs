//! Process identity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a process (peer, node, replica) in the system `Π`.
///
/// In the paper's model processes need not know `N` or each other's
/// identities for the *probabilistic* mechanism to work; identities are
/// used by baselines (vector clocks index by them), by the simulator, and
/// by diagnostics.
///
/// ```
/// use pcb_clock::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Wraps a dense process index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The dense index, usable directly into per-process arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// The dense index narrowed to `u32`, for wire frames and trace
    /// records that store sender indices compactly.
    ///
    /// Every narrowing of a process index must route through here: a
    /// bare `as u32` silently truncates once deployments reach
    /// `R ≥ 2³²` processes, aliasing distinct senders in traces and
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in `u32`, instead of silently
    /// truncating.
    #[must_use]
    pub fn index_u32(self) -> u32 {
        u32::try_from(self.0)
            .unwrap_or_else(|_| panic!("process index {} does not fit in u32", self.0))
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let p: ProcessId = 7usize.into();
        assert_eq!(usize::from(p), 7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(format!("{p:?}"), "ProcessId(7)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::default(), ProcessId::new(0));
    }

    #[test]
    fn index_u32_is_exact_in_range() {
        assert_eq!(ProcessId::new(0).index_u32(), 0);
        assert_eq!(ProcessId::new(u32::MAX as usize).index_u32(), u32::MAX);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "does not fit in u32")]
    fn index_u32_refuses_to_truncate() {
        let _ = ProcessId::new(u32::MAX as usize + 1).index_u32();
    }
}
