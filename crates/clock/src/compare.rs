//! Plausible-clock-style causality *judgments* between probabilistic
//! timestamps.
//!
//! The paper's mechanism descends from Torres-Rojas & Ahamad's plausible
//! clocks (§2): constant-size stamps that order events *plausibly* —
//! whenever `a → b` the judgment is never the reverse, but concurrent
//! events may be judged ordered (false positives). This module provides
//! that judgment for the `(R, K)` stamps, plus a quality harness used by
//! the `ordering_quality` experiment to measure how the false-ordering
//! rate shrinks as `R` and `K` grow — the `(N, R, K)` design-space story
//! told quantitatively.

use crate::{CausalRelation, KeySet, Timestamp};

/// Judges the causal relation between two *send* events from their
/// probabilistic stamps, as a plausible clock would.
///
/// Guarantee (plausibility): if the send of `a` happened before the send
/// of `b`, the result is never [`CausalRelation::After`] — `b`'s stamp
/// dominates `a`'s because every counter only grows along causal paths.
/// Concurrent sends, however, may be judged ordered when their entries
/// accidentally dominate (the same covering phenomenon that drives
/// delivery errors).
///
/// `a_keys`/`b_keys` are the senders' key sets; ties on dominance are
/// broken toward `Concurrent` when neither sender's own entries strictly
/// advance.
///
/// # Panics
///
/// Panics if the stamps have different lengths.
///
/// ```
/// use pcb_clock::{compare::judge, CausalRelation, KeySet, KeySpace, ProbClock};
/// let space = KeySpace::new(8, 2)?;
/// let ka = KeySet::from_entries(space, &[0, 1])?;
/// let kb = KeySet::from_entries(space, &[2, 3])?;
/// let mut a = ProbClock::new(space);
/// let ts_a = a.stamp_send(&ka);
/// let mut b = ProbClock::new(space);
/// b.record_delivery(&ka); // b delivered a's message
/// let ts_b = b.stamp_send(&kb);
/// assert_eq!(judge(&ts_a, &ka, &ts_b, &kb), CausalRelation::Before);
/// # Ok::<(), pcb_clock::KeyError>(())
/// ```
#[must_use]
pub fn judge(
    a_ts: &Timestamp,
    a_keys: &KeySet,
    b_ts: &Timestamp,
    b_keys: &KeySet,
) -> CausalRelation {
    assert_eq!(a_ts.len(), b_ts.len(), "timestamp length mismatch");
    if a_ts == b_ts {
        // Distinct sends can only collide on identical stamps when the
        // senders' entries overlap completely; call them concurrent.
        return CausalRelation::Equal;
    }
    let b_covers_a = b_ts.dominates(a_ts);
    let a_covers_b = a_ts.dominates(b_ts);
    match (b_covers_a, a_covers_b) {
        (true, false) => {
            // b's stamp includes everything a's does. Require that b's
            // view of a's *own* entries reaches a's send values — the
            // counterpart of Algorithm 2's sender condition.
            if a_keys.iter().all(|x| b_ts[x] >= a_ts[x]) {
                CausalRelation::Before
            } else {
                CausalRelation::Concurrent
            }
        }
        (false, true) => {
            if b_keys.iter().all(|x| a_ts[x] >= b_ts[x]) {
                CausalRelation::After
            } else {
                CausalRelation::Concurrent
            }
        }
        _ => CausalRelation::Concurrent,
    }
}

/// Tallies of judgment quality against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JudgmentQuality {
    /// Pairs truly ordered and judged ordered the right way.
    pub ordered_correct: u64,
    /// Pairs truly ordered but judged concurrent (never happens for
    /// dominance-based plausible clocks; tracked to prove it).
    pub ordered_missed: u64,
    /// Pairs truly ordered but judged ordered the *wrong* way (must be 0
    /// — plausibility).
    pub ordered_reversed: u64,
    /// Truly concurrent pairs judged concurrent.
    pub concurrent_correct: u64,
    /// Truly concurrent pairs judged ordered (the false positives that
    /// shrink as R and K grow).
    pub concurrent_false_order: u64,
}

impl JudgmentQuality {
    /// Records one comparison: `truth` from real vector clocks, `judged`
    /// from the probabilistic stamps.
    pub fn record(&mut self, truth: CausalRelation, judged: CausalRelation) {
        use CausalRelation::{After, Before, Concurrent, Equal};
        match (truth, judged) {
            (Before, Before) | (After, After) => self.ordered_correct += 1,
            (Before | After, Concurrent | Equal) => self.ordered_missed += 1,
            (Before, After) | (After, Before) => self.ordered_reversed += 1,
            (Concurrent | Equal, Concurrent | Equal) => self.concurrent_correct += 1,
            (Concurrent | Equal, Before | After) => self.concurrent_false_order += 1,
        }
    }

    /// Total pairs recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ordered_correct
            + self.ordered_missed
            + self.ordered_reversed
            + self.concurrent_correct
            + self.concurrent_false_order
    }

    /// Fraction of truly concurrent pairs judged ordered — the plausible
    /// clock's error measure.
    #[must_use]
    pub fn false_order_rate(&self) -> f64 {
        let concurrent = self.concurrent_correct + self.concurrent_false_order;
        if concurrent == 0 {
            0.0
        } else {
            self.concurrent_false_order as f64 / concurrent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeySpace, ProbClock};

    fn space() -> KeySpace {
        KeySpace::new(8, 2).unwrap()
    }

    fn keys(entries: &[usize]) -> KeySet {
        KeySet::from_entries(space(), entries).unwrap()
    }

    #[test]
    fn chain_is_judged_ordered() {
        let ka = keys(&[0, 1]);
        let kb = keys(&[2, 3]);
        let mut a = ProbClock::new(space());
        let ts_a = a.stamp_send(&ka);
        let mut b = ProbClock::new(space());
        b.record_delivery(&ka);
        let ts_b = b.stamp_send(&kb);
        assert_eq!(judge(&ts_a, &ka, &ts_b, &kb), CausalRelation::Before);
        assert_eq!(judge(&ts_b, &kb, &ts_a, &ka), CausalRelation::After);
    }

    #[test]
    fn disjoint_concurrent_sends_judged_concurrent() {
        let ka = keys(&[0, 1]);
        let kb = keys(&[2, 3]);
        let ts_a = ProbClock::new(space()).clone().stamp_send(&ka);
        let ts_b = ProbClock::new(space()).clone().stamp_send(&kb);
        assert_eq!(judge(&ts_a, &ka, &ts_b, &kb), CausalRelation::Concurrent);
    }

    #[test]
    fn never_reverses_true_ordering() {
        // Plausibility over random causal chains: a → b is never judged
        // After.
        use crate::{AssignmentPolicy, KeyAssigner};
        for seed in 0..30 {
            let mut assigner = KeyAssigner::new(space(), AssignmentPolicy::UniformRandom, seed);
            let ka = assigner.next_set().unwrap();
            let kb = assigner.next_set().unwrap();
            let mut a = ProbClock::new(space());
            for _ in 0..(seed % 4) {
                let _ = a.stamp_send(&ka);
            }
            let ts_a = a.stamp_send(&ka);
            let mut b = ProbClock::new(space());
            // b's process delivered everything a sent.
            for _ in 0..=(seed % 4) {
                b.record_delivery(&ka);
            }
            let ts_b = b.stamp_send(&kb);
            let judged = judge(&ts_a, &ka, &ts_b, &kb);
            assert_ne!(judged, CausalRelation::After, "seed {seed} reversed a -> b");
            assert_ne!(judged, CausalRelation::Concurrent, "dominance must be seen");
        }
    }

    #[test]
    fn overlapping_concurrent_sends_can_be_false_ordered() {
        // The covering phenomenon: concurrent senders sharing entries can
        // produce a dominating stamp. f(a) = {0,1}, f(b) = {0,1} identical:
        // b's second send dominates a's first.
        let ka = keys(&[0, 1]);
        let kb = keys(&[0, 1]);
        let mut a = ProbClock::new(space());
        let ts_a = a.stamp_send(&ka);
        let mut b = ProbClock::new(space());
        let _ = b.stamp_send(&kb);
        let ts_b = b.stamp_send(&kb); // [2,2,...] dominates [1,1,...]
        assert_eq!(
            judge(&ts_a, &ka, &ts_b, &kb),
            CausalRelation::Before,
            "false ordering expected for fully-shared key sets"
        );
    }

    #[test]
    fn equal_stamps_judged_equal() {
        let ka = keys(&[0, 1]);
        let mut a = ProbClock::new(space());
        let ts = a.stamp_send(&ka);
        assert_eq!(judge(&ts, &ka, &ts.clone(), &ka), CausalRelation::Equal);
    }

    #[test]
    fn quality_tallies() {
        use CausalRelation::{After, Before, Concurrent};
        let mut q = JudgmentQuality::default();
        q.record(Before, Before);
        q.record(After, After);
        q.record(Concurrent, Concurrent);
        q.record(Concurrent, Before);
        q.record(Before, Concurrent);
        assert_eq!(q.ordered_correct, 2);
        assert_eq!(q.concurrent_correct, 1);
        assert_eq!(q.concurrent_false_order, 1);
        assert_eq!(q.ordered_missed, 1);
        assert_eq!(q.ordered_reversed, 0);
        assert_eq!(q.total(), 5);
        assert!((q.false_order_rate() - 0.5).abs() < 1e-12);
    }
}
