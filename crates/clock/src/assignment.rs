//! Generation and distribution of key sets (paper §4.1.3).
//!
//! The paper proposes that each process draw a random `set_id` in
//! `[0, C(R,K))` and unrank it with Algorithm 3; with distinct ids every
//! pair of processes shares at most `K-1` entries. This module implements
//! that policy plus two alternatives used as ablations: collision-free
//! random ids and a deterministic round-robin spread approximating the
//! paper's "perfect distribution of keys".

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::keys::{KeyError, KeySet, KeySpace};

/// How key sets are handed out to processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssignmentPolicy {
    /// The paper's policy: each process draws `set_id` uniformly at random;
    /// two processes may collide on the exact same set.
    #[default]
    UniformRandom,
    /// Uniform random, but re-drawn until distinct — guarantees pairwise
    /// overlap of at most `K-1` entries (requires `N <= C(R,K)`).
    DistinctRandom,
    /// Deterministic spread: process `i` gets entries
    /// `{(i·K + j) mod R : j < K}`, maximizing entry-load balance. A
    /// dynamicity-hostile "perfect distribution" baseline.
    RoundRobin,
}

/// Errors from key assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentError {
    /// `DistinctRandom` was asked for more sets than exist.
    Exhausted {
        /// Number of distinct sets available, `C(R,K)` (saturated).
        available: u128,
    },
    /// Key-set construction failed.
    Key(KeyError),
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exhausted { available } => {
                write!(f, "distinct assignment exhausted: only {available} key sets exist")
            }
            Self::Key(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AssignmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Key(e) => Some(e),
            Self::Exhausted { .. } => None,
        }
    }
}

impl From<KeyError> for AssignmentError {
    fn from(e: KeyError) -> Self {
        Self::Key(e)
    }
}

/// Stateful key-set dispenser for a population of processes.
///
/// Supports continuous joins: call [`KeyAssigner::next_set`] whenever a
/// process enters the system — no reconfiguration of existing processes is
/// needed, which is the paper's central scalability argument.
///
/// ```
/// use pcb_clock::{AssignmentPolicy, KeyAssigner, KeySpace};
/// let space = KeySpace::new(100, 4)?;
/// let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, 42);
/// let sets = assigner.assign_n(1000)?;
/// assert_eq!(sets.len(), 1000);
/// assert!(sets.iter().all(|s| s.len() == 4));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct KeyAssigner {
    space: KeySpace,
    policy: AssignmentPolicy,
    rng: StdRng,
    issued: u64,
    seen: HashSet<u128>,
}

impl KeyAssigner {
    /// Creates an assigner with a deterministic seed.
    #[must_use]
    pub fn new(space: KeySpace, policy: AssignmentPolicy, seed: u64) -> Self {
        Self { space, policy, rng: StdRng::seed_from_u64(seed), issued: 0, seen: HashSet::new() }
    }

    /// The key space sets are drawn from.
    #[must_use]
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> AssignmentPolicy {
        self.policy
    }

    /// Number of sets issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Draws the key set for the next joining process.
    ///
    /// # Errors
    ///
    /// [`AssignmentError::Exhausted`] under `DistinctRandom` once all
    /// `C(R,K)` sets are taken.
    pub fn next_set(&mut self) -> Result<KeySet, AssignmentError> {
        let total = self.space.combination_count();
        let set = match self.policy {
            AssignmentPolicy::UniformRandom => {
                let id = self.rng.random_range(0..total);
                KeySet::from_set_id(self.space, id)?
            }
            AssignmentPolicy::DistinctRandom => {
                if (self.seen.len() as u128) >= total {
                    return Err(AssignmentError::Exhausted { available: total });
                }
                loop {
                    let id = self.rng.random_range(0..total);
                    if self.seen.insert(id) {
                        break KeySet::from_set_id(self.space, id)?;
                    }
                }
            }
            AssignmentPolicy::RoundRobin => {
                let r = self.space.r();
                let k = self.space.k();
                let base = (self.issued as usize).wrapping_mul(k);
                let mut entries: Vec<usize> = (0..k).map(|j| (base + j) % r).collect();
                entries.sort_unstable();
                entries.dedup();
                debug_assert_eq!(entries.len(), k, "K <= R guarantees distinct entries");
                KeySet::from_entries(self.space, &entries)?
            }
        };
        self.issued += 1;
        Ok(set)
    }

    /// Draws `n` key sets at once (initial population).
    ///
    /// # Errors
    ///
    /// Propagates the first [`AssignmentError`] encountered.
    pub fn assign_n(&mut self, n: usize) -> Result<Vec<KeySet>, AssignmentError> {
        (0..n).map(|_| self.next_set()).collect()
    }
}

/// Per-entry load histogram: how many of the given key sets use each entry.
/// Balanced load is what makes the independence approximation of the error
/// model (§5.3) tight.
#[must_use]
pub fn entry_load(space: KeySpace, sets: &[KeySet]) -> Vec<usize> {
    let mut load = vec![0usize; space.r()];
    for set in sets {
        for entry in set.iter() {
            load[entry] += 1;
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> KeySpace {
        KeySpace::new(10, 3).unwrap()
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let a = KeyAssigner::new(space(), AssignmentPolicy::UniformRandom, 7).assign_n(50).unwrap();
        let b = KeyAssigner::new(space(), AssignmentPolicy::UniformRandom, 7).assign_n(50).unwrap();
        let c = KeyAssigner::new(space(), AssignmentPolicy::UniformRandom, 8).assign_n(50).unwrap();
        assert_eq!(a, b, "same seed, same assignment");
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn distinct_random_never_repeats() {
        let total = space().combination_count() as usize;
        let sets =
            KeyAssigner::new(space(), AssignmentPolicy::DistinctRandom, 3).assign_n(total).unwrap();
        let ids: HashSet<u128> = sets.iter().map(KeySet::set_id).collect();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn distinct_random_exhausts() {
        let small = KeySpace::new(4, 2).unwrap(); // C(4,2) = 6
        let mut assigner = KeyAssigner::new(small, AssignmentPolicy::DistinctRandom, 1);
        assert!(assigner.assign_n(6).is_ok());
        assert_eq!(assigner.next_set(), Err(AssignmentError::Exhausted { available: 6 }));
    }

    #[test]
    fn round_robin_balances_entry_load() {
        let sp = KeySpace::new(12, 3).unwrap();
        let sets = KeyAssigner::new(sp, AssignmentPolicy::RoundRobin, 0).assign_n(8).unwrap();
        let load = entry_load(sp, &sets);
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(max - min <= 1, "round-robin load must be near-uniform: {load:?}");
    }

    #[test]
    fn round_robin_wraps_correctly() {
        let sp = KeySpace::new(5, 3).unwrap();
        let mut assigner = KeyAssigner::new(sp, AssignmentPolicy::RoundRobin, 0);
        let s0 = assigner.next_set().unwrap();
        let s1 = assigner.next_set().unwrap();
        assert_eq!(s0.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // base = 3: entries {3, 4, 0} -> sorted {0, 3, 4}.
        assert_eq!(s1.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
    }

    #[test]
    fn all_policies_produce_valid_sets() {
        for policy in [
            AssignmentPolicy::UniformRandom,
            AssignmentPolicy::DistinctRandom,
            AssignmentPolicy::RoundRobin,
        ] {
            let sets = KeyAssigner::new(space(), policy, 11).assign_n(20).unwrap();
            for s in sets {
                assert_eq!(s.len(), 3);
                assert!(s.iter().all(|e| e < 10));
                let v: Vec<_> = s.iter().collect();
                assert!(v.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn entry_load_counts() {
        let sp = KeySpace::new(4, 2).unwrap();
        let a = KeySet::from_entries(sp, &[0, 1]).unwrap();
        let b = KeySet::from_entries(sp, &[1, 3]).unwrap();
        assert_eq!(entry_load(sp, &[a, b]), vec![1, 2, 0, 1]);
    }
}
