//! Property-based tests for the clock substrate.

use pcb_clock::{
    binomial, compare::judge, rank, unrank, AssignmentPolicy, KeyAssigner, KeySet, KeySpace,
    ProbClock, ProcessId, Timestamp, VectorClock,
};
use proptest::prelude::*;

/// Strategy: a valid (r, k) space with r <= 24.
fn space_strategy() -> impl Strategy<Value = KeySpace> {
    (1usize..=24).prop_flat_map(|r| {
        (Just(r), 1usize..=r).prop_map(|(r, k)| KeySpace::new(r, k).expect("valid space"))
    })
}

/// Strategy: a space plus a valid set id in it.
fn space_and_id() -> impl Strategy<Value = (KeySpace, u128)> {
    space_strategy().prop_flat_map(|space| {
        let total = space.combination_count();
        (Just(space), 0..total)
    })
}

proptest! {
    #[test]
    fn unrank_then_rank_is_identity((space, id) in space_and_id()) {
        let combo = unrank(id, space.r(), space.k()).unwrap();
        prop_assert_eq!(rank(&combo, space.r()).unwrap(), id);
    }

    #[test]
    fn unranked_combination_is_well_formed((space, id) in space_and_id()) {
        let combo = unrank(id, space.r(), space.k()).unwrap();
        prop_assert_eq!(combo.len(), space.k());
        prop_assert!(combo.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(combo.iter().all(|&e| e < space.r()));
    }

    #[test]
    fn unrank_is_order_preserving((space, id) in space_and_id()) {
        // Lexicographic order on combinations follows rank order.
        if id > 0 {
            let prev = unrank(id - 1, space.r(), space.k()).unwrap();
            let cur = unrank(id, space.r(), space.k()).unwrap();
            prop_assert!(prev < cur);
        }
    }

    #[test]
    fn binomial_pascal_recurrence(n in 1u64..80, k in 1u64..80) {
        prop_assume!(k < n);
        let lhs = binomial(n, k);
        let rhs = binomial(n - 1, k - 1)
            .zip(binomial(n - 1, k))
            .map(|(a, b)| a + b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn distinct_key_sets_overlap_below_k(
        (space, id) in space_and_id(),
        offset in 1u128..1000,
    ) {
        let total = space.combination_count();
        prop_assume!(total > 1);
        let other_id = (id + offset) % total;
        prop_assume!(other_id != id);
        let a = KeySet::from_set_id(space, id).unwrap();
        let b = KeySet::from_set_id(space, other_id).unwrap();
        prop_assert!(a.overlap(&b) < space.k());
    }

    #[test]
    fn stamp_send_monotonically_increases((space, id) in space_and_id(), sends in 1usize..20) {
        let keys = KeySet::from_set_id(space, id).unwrap();
        let mut clock = ProbClock::new(space);
        let mut prev = Timestamp::zero(space.r());
        for _ in 0..sends {
            let ts = clock.stamp_send(&keys);
            prop_assert!(ts.dominates(&prev));
            prop_assert!(ts != prev, "send must strictly advance the stamp");
            prev = ts;
        }
        prop_assert_eq!(prev.total() as usize, sends * space.k());
    }

    #[test]
    fn own_messages_deliver_in_fifo_order((space, id) in space_and_id(), sends in 2usize..10) {
        let keys = KeySet::from_set_id(space, id).unwrap();
        let mut sender = ProbClock::new(space);
        let stamps: Vec<_> = (0..sends).map(|_| sender.stamp_send(&keys)).collect();
        let mut rx = ProbClock::new(space);
        for (i, ts) in stamps.iter().enumerate() {
            // All later messages blocked, this one ready.
            for later in &stamps[i + 1..] {
                prop_assert!(!rx.is_deliverable(later, &keys));
            }
            prop_assert!(rx.is_deliverable(ts, &keys));
            rx.record_delivery(&keys);
        }
    }

    #[test]
    fn causally_ready_never_delayed_chain(
        space in space_strategy(),
        seed in 0u64..1000,
        chain_len in 1usize..12,
    ) {
        // Corollary 1 along an arbitrary relay chain: each process delivers
        // everything so far, then sends; a fresh observer delivering in
        // chain order is never blocked.
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, seed);
        let keys: Vec<KeySet> = (0..chain_len).map(|_| assigner.next_set().unwrap()).collect();
        let mut stamps = Vec::new();
        let mut relay_clocks: Vec<ProbClock> =
            (0..chain_len).map(|_| ProbClock::new(space)).collect();
        for i in 0..chain_len {
            // Process i first delivers all prior messages (causal past).
            for j in 0..i {
                let _ = &stamps[j];
                relay_clocks[i].record_delivery(&keys[j]);
            }
            stamps.push(relay_clocks[i].stamp_send(&keys[i]));
        }
        let mut observer = ProbClock::new(space);
        for (ts, k) in stamps.iter().zip(&keys) {
            prop_assert!(observer.is_deliverable(ts, k), "chain delivery must not block");
            observer.record_delivery(k);
        }
    }

    #[test]
    fn vector_clock_compare_is_antisymmetric(
        a in proptest::collection::vec(0u64..5, 1..8),
    ) {
        let n = a.len();
        let va = VectorClock::from_counters(a.clone());
        let mut b = a;
        b[0] += 1;
        let vb = VectorClock::from_counters(b);
        use pcb_clock::CausalRelation::*;
        prop_assert_eq!(va.compare(&vb), Before);
        prop_assert_eq!(vb.compare(&va), After);
        let _ = n;
    }

    #[test]
    fn vector_baseline_never_violates_causality(
        seed in 0u64..500,
        n in 2usize..6,
        rounds in 1usize..12,
    ) {
        // Randomized schedule: processes send; a receiver buffers arrivals
        // in a scrambled order and delivers under the vector-clock guard.
        // Delivered order must respect happened-before.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
        let mut messages: Vec<(ProcessId, VectorClock)> = Vec::new();
        for _ in 0..rounds {
            let s = rng.random_range(0..n);
            // The sender first (maybe) delivers some existing messages.
            for (pid, ts) in &messages {
                if rng.random_bool(0.5) && clocks[s].is_deliverable(ts, *pid) {
                    let ts = ts.clone();
                    let pid = *pid;
                    clocks[s].record_delivery(&ts, pid);
                }
            }
            let ts = clocks[s].stamp_send(ProcessId::new(s));
            messages.push((ProcessId::new(s), ts));
        }
        // Scrambled receiver: repeatedly pick a random deliverable message.
        let mut rx = VectorClock::new(n);
        let mut pending: Vec<(ProcessId, VectorClock)> = messages.clone();
        let mut delivered: Vec<VectorClock> = Vec::new();
        while !pending.is_empty() {
            let ready: Vec<usize> = (0..pending.len())
                .filter(|&i| rx.is_deliverable(&pending[i].1, pending[i].0))
                .collect();
            prop_assert!(!ready.is_empty(), "liveness: some message must be ready");
            let pick = ready[rng.random_range(0..ready.len())];
            let (pid, ts) = pending.swap_remove(pick);
            rx.record_delivery(&ts, pid);
            delivered.push(ts);
        }
        // Safety: delivery order extends happened-before.
        use pcb_clock::CausalRelation;
        for i in 0..delivered.len() {
            for j in i + 1..delivered.len() {
                prop_assert!(
                    delivered[i].compare(&delivered[j]) != CausalRelation::After,
                    "later-delivered message happened before an earlier one"
                );
            }
        }
    }

    #[test]
    fn judge_is_plausible_on_guarded_histories(
        space in space_strategy(),
        seed in 0u64..2000,
        n in 2usize..6,
        rounds in 2usize..15,
    ) {
        // Random history where deliveries always pass the protocol guard;
        // the plausible judgment must never reverse a true ordering and
        // must order every truly related pair.
        use pcb_clock::CausalRelation;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, seed);
        let keys: Vec<KeySet> = (0..n).map(|_| assigner.next_set().unwrap()).collect();
        let mut prob: Vec<ProbClock> = (0..n).map(|_| ProbClock::new(space)).collect();
        let mut truth: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
        let mut delivered: Vec<Vec<bool>> = vec![Vec::new(); n];
        let mut msgs: Vec<(usize, Timestamp, VectorClock)> = Vec::new();

        for _ in 0..rounds {
            let s = rng.random_range(0..n);
            for idx in 0..msgs.len() {
                let (origin, ref ts, ref tvc) = msgs[idx];
                if delivered[s].len() <= idx {
                    delivered[s].push(false);
                }
                if origin != s
                    && !delivered[s][idx]
                    && rng.random_bool(0.5)
                    && prob[s].is_deliverable(ts, &keys[origin])
                {
                    prob[s].record_delivery(&keys[origin]);
                    truth[s].record_delivery(&tvc.clone(), ProcessId::new(origin));
                    delivered[s][idx] = true;
                }
            }
            let ts = prob[s].stamp_send(&keys[s]);
            let tvc = truth[s].stamp_send(ProcessId::new(s));
            msgs.push((s, ts, tvc));
            for d in &mut delivered {
                d.resize(msgs.len(), false);
            }
            let last = msgs.len() - 1;
            delivered[s][last] = true;
        }

        for i in 0..msgs.len() {
            for j in i + 1..msgs.len() {
                let (ai, ref ts_i, ref tvc_i) = msgs[i];
                let (aj, ref ts_j, ref tvc_j) = msgs[j];
                let truth_rel = tvc_i.compare(tvc_j);
                let judged = judge(ts_i, &keys[ai], ts_j, &keys[aj]);
                match truth_rel {
                    CausalRelation::Before => prop_assert_eq!(
                        judged, CausalRelation::Before,
                        "true order i->j must be judged Before"
                    ),
                    CausalRelation::After => prop_assert_eq!(
                        judged, CausalRelation::After,
                        "true order j->i must be judged After"
                    ),
                    // Concurrent pairs may be judged anything except... any
                    // verdict is plausible; nothing to assert.
                    CausalRelation::Concurrent | CausalRelation::Equal => {}
                }
            }
        }
    }

    #[test]
    fn covered_by_union_is_monotone((space, id) in space_and_id(), seed in 0u64..100) {
        // Adding more sets to the union never un-covers a key set.
        let mut assigner = KeyAssigner::new(space, AssignmentPolicy::UniformRandom, seed);
        let target = KeySet::from_set_id(space, id).unwrap();
        let others: Vec<KeySet> = (0..4).map(|_| assigner.next_set().unwrap()).collect();
        for cut in 0..others.len() {
            if target.covered_by(others.iter().take(cut)) {
                prop_assert!(target.covered_by(others.iter().take(cut + 1)));
            }
        }
    }
}
