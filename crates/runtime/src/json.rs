//! Minimal JSON reader/writer for the daemon's line-delimited RPC.
//!
//! The workspace builds offline against a stub `serde`, so the daemon
//! cannot derive serializers; its RPC surface is small enough (flat
//! objects of numbers, strings, booleans) that a ~200-line hand-rolled
//! codec is the honest cost. Parsing is total: malformed input yields a
//! [`JsonError`], never a panic, and depth is bounded so hostile nesting
//! cannot blow the stack.
//!
//! Numbers are kept as `f64`. Every value the daemon transports
//! (payloads, counters, sequence numbers in practice far below 2^53) is
//! exactly representable; [`Value::as_u64`] round-trips integers in that
//! range losslessly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting the parser accepts.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Sorted keys — deterministic output for tests and logs.
    Object(BTreeMap<String, Value>),
}

/// Parse failures. The payload is a human-readable position hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `self["key"]` for objects, `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace, sorted object keys).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => {
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Number(x as f64)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Value {
        Value::Number(f64::from(x))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] on any malformed input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    map.insert(key, self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if x.is_finite() {
            Ok(Value::Number(x))
        } else {
            Err(self.err("non-finite number"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates map to the replacement character;
                            // the daemon's RPC never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_rpc_shapes() {
        let v = Value::object([
            ("op", Value::from("publish")),
            ("payload", Value::from(123u64)),
            ("flag", Value::from(true)),
            ("note", Value::from("a \"quoted\"\nline")),
            ("items", Value::Array(vec![Value::from(1u64), Value::Null])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_survive_exactly() {
        for x in [0u64, 1, 999, 1 << 40, (1 << 53)] {
            let text = Value::from(x).to_json();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(x), "{x}");
        }
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "nul",
            "\u{1}",
            "\"\\q\"",
            "\"\\u12\"",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Value::String("tab\there ünïcode \u{1F600} \\ end".to_string());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::String("A".to_string()));
    }
}
