//! Deterministic socket-level fault shim.
//!
//! The simulator injects link faults at its virtual router; the live
//! runtime injects them at its in-memory transport. Real UDP has no such
//! seam — short of iptables rules (root, global, flaky to clean up) there
//! is no way to ask the kernel to drop 10% of one flow. So the transport
//! offers its own seam: every outbound datagram passes through a
//! [`SocketShim`] that returns a deterministic *verdict* — deliver now,
//! drop, duplicate, or delay — computed from a seeded generator.
//!
//! Determinism matters more than realism here. The chaos certification
//! harness replays a recorded fault plan against real daemon processes
//! and diffs delivery streams bit-for-bit against the simulator; a shim
//! that consulted `/dev/urandom` would make every run unique and every
//! failure unreproducible. With a seeded shim, `--seed 7` tortures the
//! cluster the same way every time.
//!
//! The shim judges *datagrams*, not frames: a fragmented frame whose
//! middle datagram is dropped exercises the reassembly timeout path,
//! which frame-level drops never would. Verdicts are drawn from the same
//! [`LinkFaults`] rates the simulator uses, so a fault plan's burst
//! windows translate directly.

use pcb_sim::LinkFaults;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// What the shim decided to do with one outbound datagram.
///
/// Returned as a list of send offsets in microseconds: an empty list
/// drops the datagram, `[0]` delivers it immediately, `[delay]` holds it
/// back, and two entries duplicate it (each copy at its own offset). The
/// transport owns the delay queue; the shim only rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Relative send times, µs from now, for each copy to transmit.
    pub offsets_us: Vec<u64>,
    /// Flip one payload byte of the first copy before sending. The
    /// datagram checksum turns this into a detected discard at the
    /// receiver, exercising the decode-hardening path.
    pub corrupt: bool,
}

impl Verdict {
    /// The pass-through verdict: one copy, sent now, intact.
    pub fn deliver() -> Self {
        Verdict { offsets_us: vec![0], corrupt: false }
    }

    /// True if the datagram is dropped outright.
    pub fn dropped(&self) -> bool {
        self.offsets_us.is_empty()
    }
}

/// Deterministic per-datagram fault injector.
///
/// Holds a seeded [`StdRng`] and the currently active fault rates.
/// Rates default to `None` (pass everything); the chaos driver installs
/// and clears [`LinkFaults`] windows as the recorded plan dictates.
#[derive(Debug)]
pub struct SocketShim {
    rng: StdRng,
    faults: Option<LinkFaults>,
    judged: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    corrupted: u64,
}

impl SocketShim {
    /// A shim drawing verdicts from `seed`. Until [`Self::set_faults`]
    /// installs rates, every datagram passes untouched (and consumes no
    /// randomness, so fault-free runs are unaffected by the seed).
    pub fn new(seed: u64) -> Self {
        SocketShim {
            rng: StdRng::seed_from_u64(seed),
            faults: None,
            judged: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            corrupted: 0,
        }
    }

    /// Installs (or with `None` clears) the active fault rates.
    pub fn set_faults(&mut self, faults: Option<LinkFaults>) {
        self.faults = faults;
    }

    /// The currently active rates, if any.
    pub fn faults(&self) -> Option<&LinkFaults> {
        self.faults.as_ref()
    }

    /// Judges one outbound datagram.
    pub fn judge(&mut self) -> Verdict {
        self.judged += 1;
        let Some(f) = self.faults else {
            return Verdict::deliver();
        };
        if self.rng.random_bool(f.drop.clamp(0.0, 1.0)) {
            self.dropped += 1;
            return Verdict { offsets_us: Vec::new(), corrupt: false };
        }
        let extra_us = (f.reorder_extra_ms.max(0.0) * 1000.0) as u64;
        let first = if self.rng.random_bool(f.reorder.clamp(0.0, 1.0)) {
            self.delayed += 1;
            extra_us.max(1)
        } else {
            0
        };
        let mut offsets_us = vec![first];
        if self.rng.random_bool(f.dup.clamp(0.0, 1.0)) {
            self.duplicated += 1;
            // The copy trails the original so the receiver sees a true
            // duplicate, not a reorder.
            offsets_us.push(first + extra_us.max(1));
        }
        let corrupt = self.rng.random_bool(f.corrupt.clamp(0.0, 1.0));
        if corrupt {
            self.corrupted += 1;
        }
        Verdict { offsets_us, corrupt }
    }

    /// `(judged, dropped, duplicated, delayed, corrupted)` totals since
    /// construction — surfaced by the daemon's metrics endpoint.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (self.judged, self.dropped, self.duplicated, self.delayed, self.corrupted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy() -> LinkFaults {
        LinkFaults { drop: 0.3, dup: 0.3, reorder: 0.3, reorder_extra_ms: 5.0, corrupt: 0.1 }
    }

    #[test]
    fn no_faults_means_pass_through() {
        let mut shim = SocketShim::new(1);
        for _ in 0..100 {
            assert_eq!(shim.judge(), Verdict::deliver());
        }
        assert_eq!(shim.stats(), (100, 0, 0, 0, 0));
    }

    #[test]
    fn same_seed_same_verdicts() {
        let mut a = SocketShim::new(42);
        let mut b = SocketShim::new(42);
        a.set_faults(Some(heavy()));
        b.set_faults(Some(heavy()));
        for _ in 0..500 {
            assert_eq!(a.judge(), b.judge());
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut shim = SocketShim::new(7);
        shim.set_faults(Some(heavy()));
        for _ in 0..2000 {
            shim.judge();
        }
        let (judged, dropped, duplicated, delayed, _) = shim.stats();
        assert_eq!(judged, 2000);
        // 30% nominal; allow generous slack, this is a sanity bound not
        // a statistical test.
        assert!((400..=800).contains(&dropped), "dropped = {dropped}");
        assert!((250..=650).contains(&duplicated), "duplicated = {duplicated}");
        assert!((250..=650).contains(&delayed), "delayed = {delayed}");
    }

    #[test]
    fn clearing_faults_restores_pass_through() {
        let mut shim = SocketShim::new(3);
        shim.set_faults(Some(heavy()));
        let _ = shim.judge();
        shim.set_faults(None);
        assert_eq!(shim.judge(), Verdict::deliver());
    }

    #[test]
    fn delayed_copies_trail_the_original() {
        let mut shim = SocketShim::new(11);
        shim.set_faults(Some(LinkFaults {
            drop: 0.0,
            dup: 1.0,
            reorder: 0.5,
            reorder_extra_ms: 2.0,
            corrupt: 0.0,
        }));
        for _ in 0..200 {
            let v = shim.judge();
            assert_eq!(v.offsets_us.len(), 2);
            assert!(v.offsets_us[1] > v.offsets_us[0]);
        }
    }
}
